"""The indexed fast path is observationally identical to the naive scan.

The per-stream routing index, the epoch-versioned decision cache and the
batched ``publish_many`` are pure optimisations: across any interleaving
of advertise / subscribe / unsubscribe / publish operations, a network
built with ``fast_path=True`` must produce exactly the deliveries (same
subscribers, payloads and order), the same per-link ``data_stats`` and
the same ``routing_state_size()`` as the pre-index reference path.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cql.predicates import Comparison, Conjunction
from repro.overlay.tree import DisseminationTree

ATTRS = ["a", "b", "c", "d"]
STREAMS = ["S", "T"]


@st.composite
def random_trees(draw):
    """A random tree on 4..10 nodes (node i attaches to a prior node)."""
    n = draw(st.integers(min_value=4, max_value=10))
    edges = []
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.append((parent, node))
    return DisseminationTree(edges, {tuple(sorted(e)): 1.0 for e in edges})


def draw_profile(data, stream, label):
    projection = data.draw(
        st.one_of(
            st.just(ALL_ATTRIBUTES),
            st.sets(st.sampled_from(ATTRS), min_size=1, max_size=4).map(frozenset),
        ),
        label=f"{label}-projection",
    )
    atoms = []
    for attr in data.draw(
        st.lists(st.sampled_from(ATTRS), max_size=2, unique=True),
        label=f"{label}-filter-attrs",
    ):
        op = data.draw(st.sampled_from(["<=", ">="]), label=f"{label}-op")
        value = data.draw(st.integers(-5, 5), label=f"{label}-value")
        atoms.append(Comparison(attr, op, value))
    filters = [Filter(stream, Conjunction.from_atoms(atoms))] if atoms else []
    return Profile({stream: projection}, filters)


def snapshot(deliveries):
    return [(d.subscription_id, d.node, d.datagram) for d in deliveries]


class TestFastPathEquivalence:
    @given(random_trees(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_operations_identical(self, tree, data):
        """Fast and naive networks agree after every publish of any
        random advertise/subscribe/unsubscribe/publish interleaving."""
        nodes = tree.nodes
        fast = ContentBasedNetwork(tree, fast_path=True)
        naive = ContentBasedNetwork(tree, fast_path=False)
        advertisers = {}
        live = []
        counter = itertools.count()
        n_ops = data.draw(st.integers(min_value=4, max_value=16), label="n_ops")
        for index in range(n_ops):
            choices = ["advertise", "subscribe"]
            if live:
                choices.append("unsubscribe")
            if advertisers:
                choices.append("publish")
            op = data.draw(st.sampled_from(choices), label=f"op{index}")
            if op == "advertise":
                stream = data.draw(st.sampled_from(STREAMS), label=f"ad{index}")
                node = data.draw(st.sampled_from(nodes), label=f"ad-node{index}")
                fast.advertise(stream, node)
                naive.advertise(stream, node)
                advertisers.setdefault(stream, []).append(node)
            elif op == "subscribe":
                stream = data.draw(st.sampled_from(STREAMS), label=f"sub{index}")
                profile = draw_profile(data, stream, f"sub{index}")
                node = data.draw(st.sampled_from(nodes), label=f"sub-node{index}")
                sid = f"u{next(counter)}"
                fast.subscribe(profile, node, sid)
                naive.subscribe(profile, node, sid)
                live.append(sid)
            elif op == "unsubscribe":
                sid = data.draw(st.sampled_from(live), label=f"unsub{index}")
                live.remove(sid)
                fast.unsubscribe(sid)
                naive.unsubscribe(sid)
            else:
                stream = data.draw(
                    st.sampled_from(sorted(advertisers)), label=f"pub{index}"
                )
                origin = data.draw(
                    st.sampled_from(advertisers[stream]), label=f"pub-node{index}"
                )
                payload = {
                    attr: data.draw(st.integers(-10, 10), label=f"pay{index}-{attr}")
                    for attr in ATTRS
                }
                datagram = Datagram(stream, payload, float(index))
                assert snapshot(fast.publish(datagram, origin)) == snapshot(
                    naive.publish(datagram, origin)
                )
        assert fast.data_stats.as_dict() == naive.data_stats.as_dict()
        assert fast.routing_state_size() == naive.routing_state_size()

    @given(
        random_trees(),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_publish_many_matches_publish_loop(
        self, tree, n_profiles, n_datagrams, data
    ):
        """Batched publication equals datagram-at-a-time publication."""
        nodes = tree.nodes
        fast = ContentBasedNetwork(tree, fast_path=True)
        naive = ContentBasedNetwork(tree, fast_path=False)
        publisher = data.draw(st.sampled_from(nodes), label="publisher")
        fast.advertise("S", publisher)
        naive.advertise("S", publisher)
        for index in range(n_profiles):
            profile = draw_profile(data, "S", f"p{index}")
            node = data.draw(st.sampled_from(nodes), label=f"node{index}")
            fast.subscribe(profile, node, f"u{index}")
            naive.subscribe(profile, node, f"u{index}")
        feed = []
        for index in range(n_datagrams):
            payload = {
                attr: data.draw(st.integers(-10, 10), label=f"d{index}-{attr}")
                for attr in ATTRS
            }
            feed.append(Datagram("S", payload, float(index)))
        batched = fast.publish_many(feed, publisher)
        looped = [naive.publish(datagram, publisher) for datagram in feed]
        assert [snapshot(per) for per in batched] == [snapshot(per) for per in looped]
        assert fast.data_stats.as_dict() == naive.data_stats.as_dict()
