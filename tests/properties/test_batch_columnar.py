"""The columnar batch data plane is observationally identical.

``publish_many`` routes each consecutive same-stream run through the
compiled bucket plans *once per batch* — per-term columns, vectorized
predicate masks, projection shared across a bucket's subscriptions.
These properties pin the whole batch path to the naive per-datagram
reference: for any random workload, any batch partitioning (size 1, 2,
odd, large), any interleaving of subscribes/unsubscribes between
batches, and broker failures landing mid-feed, the deliveries are
byte-identical (same subscribers, payloads and order) and the per-link
traffic accounting agrees.

Extends the fast==naive oracle of ``test_fastpath_properties.py`` to
the batched entry points (:meth:`ContentBasedNetwork.publish_many`,
:meth:`CosmosSystem.publish_batch`).
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbn.columns import ColumnBatch
from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cql.predicates import Comparison, Conjunction
from repro.cql.schema import Attribute, StreamSchema
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.system.fault import FaultError, fail_broker

from tests.properties.test_fastpath_properties import (
    ATTRS,
    STREAMS,
    draw_profile,
    random_trees,
    snapshot,
)


def draw_payload(data, label):
    return {
        attr: data.draw(st.integers(-10, 10), label=f"{label}-{attr}")
        for attr in ATTRS
    }


class TestColumnarBatchEquivalence:
    @given(random_trees(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_batch_partitionings_identical(self, tree, data):
        """Any chunking of a feed — singletons, pairs, odd sizes, one
        big batch — delivers exactly what the naive loop delivers."""
        nodes = tree.nodes
        fast = ContentBasedNetwork(tree, fast_path=True)
        naive = ContentBasedNetwork(tree, fast_path=False)
        publisher = data.draw(st.sampled_from(nodes), label="publisher")
        fast.advertise("S", publisher)
        naive.advertise("S", publisher)
        n_profiles = data.draw(st.integers(1, 5), label="n_profiles")
        for index in range(n_profiles):
            profile = draw_profile(data, "S", f"p{index}")
            node = data.draw(st.sampled_from(nodes), label=f"node{index}")
            fast.subscribe(profile, node, f"u{index}")
            naive.subscribe(profile, node, f"u{index}")
        n_datagrams = data.draw(st.integers(1, 12), label="n_datagrams")
        feed = [
            Datagram("S", draw_payload(data, f"d{index}"), float(index))
            for index in range(n_datagrams)
        ]
        batched = []
        cursor = 0
        while cursor < len(feed):
            size = data.draw(
                st.sampled_from([1, 2, 3, 7, len(feed)]), label=f"chunk{cursor}"
            )
            batch = feed[cursor:cursor + size]
            cursor += size
            batched.extend(fast.publish_many(batch, publisher))
        looped = [naive.publish(datagram, publisher) for datagram in feed]
        assert [snapshot(per) for per in batched] == [snapshot(per) for per in looped]
        assert fast.data_stats.as_dict() == naive.data_stats.as_dict()

    @given(random_trees(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_mutations_and_batches(self, tree, data):
        """Subscribes/unsubscribes/advertises interleaved with batched
        publishes: the columnar plans revalidate against the mutated
        routing state and still match the naive loop exactly."""
        nodes = tree.nodes
        fast = ContentBasedNetwork(tree, fast_path=True)
        naive = ContentBasedNetwork(tree, fast_path=False)
        advertisers = {}
        live = []
        counter = itertools.count()
        clock = itertools.count()
        n_ops = data.draw(st.integers(4, 14), label="n_ops")
        for index in range(n_ops):
            choices = ["advertise", "subscribe"]
            if live:
                choices.append("unsubscribe")
            if advertisers:
                choices.append("publish_batch")
            op = data.draw(st.sampled_from(choices), label=f"op{index}")
            if op == "advertise":
                stream = data.draw(st.sampled_from(STREAMS), label=f"ad{index}")
                node = data.draw(st.sampled_from(nodes), label=f"ad-node{index}")
                fast.advertise(stream, node)
                naive.advertise(stream, node)
                advertisers.setdefault(stream, []).append(node)
            elif op == "subscribe":
                stream = data.draw(st.sampled_from(STREAMS), label=f"sub{index}")
                profile = draw_profile(data, stream, f"sub{index}")
                node = data.draw(st.sampled_from(nodes), label=f"sub-node{index}")
                sid = f"u{next(counter)}"
                fast.subscribe(profile, node, sid)
                naive.subscribe(profile, node, sid)
                live.append(sid)
            elif op == "unsubscribe":
                sid = data.draw(st.sampled_from(live), label=f"unsub{index}")
                live.remove(sid)
                fast.unsubscribe(sid)
                naive.unsubscribe(sid)
            else:
                stream = data.draw(
                    st.sampled_from(sorted(advertisers)), label=f"pub{index}"
                )
                origin = data.draw(
                    st.sampled_from(advertisers[stream]), label=f"pub-node{index}"
                )
                batch = [
                    Datagram(stream, draw_payload(data, f"d{index}-{i}"),
                             float(next(clock)))
                    for i in range(data.draw(st.integers(1, 6),
                                             label=f"batch{index}"))
                ]
                batched = fast.publish_many(batch, origin)
                looped = [naive.publish(d, origin) for d in batch]
                assert [snapshot(per) for per in batched] == [
                    snapshot(per) for per in looped
                ]
        assert fast.data_stats.as_dict() == naive.data_stats.as_dict()
        assert fast.routing_state_size() == naive.routing_state_size()


SCHEMA = StreamSchema(
    "Temp",
    [Attribute("station", "int", 0, 9), Attribute("celsius", "float", -20, 40)],
    rate=1.0,
)

#: Nodes with attached roles (processor, source, users) — never failed.
PROTECTED = {0, 1, 2, 3}


def _build_system(seed):
    topo = barabasi_albert(25, 2, random.Random(seed))
    tree = DisseminationTree.minimum_spanning(topo)
    system = CosmosSystem(tree, processor_nodes=[0], topology=topo)
    system.add_source(SCHEMA, 1)
    handles = [
        system.submit(
            "SELECT T.celsius FROM Temp [Range 1 Hour] T WHERE T.celsius > 0",
            user_node=2,
            name="qa",
        ),
        system.submit(
            "SELECT T.station FROM Temp [Range 1 Hour] T",
            user_node=3,
            name="qb",
        ),
    ]
    return system, handles


class TestBatchUnderFailures:
    @given(st.integers(0, 30), st.data())
    @settings(max_examples=25, deadline=None)
    def test_mid_feed_broker_failure_identical(self, seed, data):
        """A broker failure landing mid-feed: the batched system and
        the tuple-at-a-time system repair identically and every query
        handle accumulates identical results."""
        batched_sys, batched_handles = _build_system(seed)
        looped_sys, looped_handles = _build_system(seed)
        clock = itertools.count(1)
        rounds = data.draw(st.integers(1, 3), label="rounds")
        for round_index in range(rounds):
            tuples = [
                (
                    {
                        "station": data.draw(st.integers(0, 9),
                                             label=f"st{round_index}-{i}"),
                        "celsius": float(data.draw(st.integers(-5, 30),
                                                   label=f"c{round_index}-{i}")),
                    },
                    float(next(clock)),
                )
                for i in range(data.draw(st.integers(1, 5),
                                         label=f"batch{round_index}"))
            ]
            batched_sys.publish_batch("Temp", tuples)
            for payload, timestamp in tuples:
                looped_sys.publish("Temp", payload, timestamp)
            assert [h.result_count for h in batched_handles] == [
                h.result_count for h in looped_handles
            ]
            assert [h.results for h in batched_handles] == [
                h.results for h in looped_handles
            ]
            candidates = sorted(
                n for n in batched_sys.tree.nodes if n not in PROTECTED
            )
            if not candidates:
                continue
            victim = data.draw(
                st.sampled_from(candidates), label=f"victim{round_index}"
            )
            try:
                fail_broker(batched_sys, victim)
            except FaultError:
                continue  # survivors physically partitioned: skip in both
            fail_broker(looped_sys, victim)
            assert sorted(batched_sys.tree.edges) == sorted(looped_sys.tree.edges)


class TestCoverageMask:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_coverage_mask_matches_covers(self, data):
        """``Profile.coverage_mask`` equals per-datagram ``covers``."""
        profile = draw_profile(data, "S", "mask")
        n = data.draw(st.integers(1, 8), label="n")
        datagrams = [
            Datagram("S", draw_payload(data, f"d{index}"), float(index))
            for index in range(n)
        ]
        batch = ColumnBatch(datagrams, "S")
        expected = [profile.covers(d) for d in datagrams]
        assert profile.coverage_mask(batch) == expected
        # Second call exercises the per-profile evaluator cache.
        assert profile.coverage_mask(batch) == expected
        foreign = ColumnBatch([Datagram("T", {}, 0.0)], "T")
        assert profile.coverage_mask(foreign) == [False]
