"""Property-based checks of CBN routing.

The network-level invariant: for any tree, any subscriber placement and
any datagram, the set of (subscriber, delivered payload) pairs equals
what evaluating each profile directly against the datagram would give —
routing, early projection and subsumption aggregation never lose or
corrupt a delivery.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cql.predicates import Comparison, Conjunction
from repro.overlay.tree import DisseminationTree

ATTRS = ["a", "b", "c", "d"]


@st.composite
def random_trees(draw):
    """A random tree on 4..10 nodes (node i attaches to a prior node)."""
    n = draw(st.integers(min_value=4, max_value=10))
    edges = []
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.append((parent, node))
    return DisseminationTree(edges, {tuple(sorted(e)): 1.0 for e in edges})


@st.composite
def random_profiles(draw):
    size = draw(st.integers(min_value=1, max_value=4))
    projection = draw(
        st.one_of(
            st.just(ALL_ATTRIBUTES),
            st.sets(st.sampled_from(ATTRS), min_size=1, max_size=4),
        )
    )
    atoms = []
    for attr in draw(st.lists(st.sampled_from(ATTRS), max_size=2, unique=True)):
        op = draw(st.sampled_from(["<=", ">="]))
        atoms.append(Comparison(attr, op, draw(st.integers(-5, 5))))
    filters = [Filter("S", Conjunction.from_atoms(atoms))] if atoms else []
    return Profile({"S": projection}, filters)


@st.composite
def datagrams(draw):
    payload = {attr: draw(st.integers(-10, 10)) for attr in ATTRS}
    return Datagram("S", payload, 0.0)


class TestRoutingEquivalence:
    @given(
        random_trees(),
        st.lists(random_profiles(), min_size=1, max_size=5),
        datagrams(),
        st.booleans(),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_delivery_equals_direct_profile_application(
        self, tree, profiles, datagram, use_subsumption, data
    ):
        nodes = tree.nodes
        network = ContentBasedNetwork(tree, use_subsumption=use_subsumption)
        publisher = data.draw(st.sampled_from(nodes), label="publisher")
        network.advertise("S", publisher)
        expected = {}
        for index, profile in enumerate(profiles):
            node = data.draw(st.sampled_from(nodes), label=f"sub{index}")
            sid = f"u{index}"
            network.subscribe(profile, node, sid)
            delivered = profile.apply(datagram)
            if delivered is not None:
                expected[sid] = dict(delivered.payload)
        actual = {
            d.subscription_id: dict(d.datagram.payload)
            for d in network.publish(datagram, publisher)
        }
        assert actual == expected

    @given(
        random_trees(),
        st.lists(random_profiles(), min_size=1, max_size=4),
        datagrams(),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_subsumption_never_changes_deliveries(
        self, tree, profiles, datagram, data
    ):
        placements = [
            data.draw(st.sampled_from(tree.nodes), label=f"sub{i}")
            for i in range(len(profiles))
        ]
        publisher = data.draw(st.sampled_from(tree.nodes), label="pub")

        def run(use_subsumption):
            network = ContentBasedNetwork(tree, use_subsumption=use_subsumption)
            network.advertise("S", publisher)
            for index, (profile, node) in enumerate(zip(profiles, placements)):
                network.subscribe(profile, node, f"u{index}")
            return {
                d.subscription_id: dict(d.datagram.payload)
                for d in network.publish(datagram, publisher)
            }

        assert run(True) == run(False)


class TestCodecProperties:
    @given(random_profiles())
    @settings(max_examples=60, deadline=None)
    def test_profile_roundtrip(self, profile):
        from repro.cbn.codec import decode_profile, encode_profile

        assert decode_profile(encode_profile(profile)) == profile

    @given(datagrams())
    @settings(max_examples=60, deadline=None)
    def test_datagram_roundtrip(self, datagram):
        from repro.cbn.codec import decode_datagram, encode_datagram

        assert decode_datagram(encode_datagram(datagram)) == datagram

    @given(random_profiles(), datagrams())
    @settings(max_examples=60, deadline=None)
    def test_coverage_invariant_under_codec(self, profile, datagram):
        from repro.cbn.codec import decode_profile, encode_profile

        decoded = decode_profile(encode_profile(profile))
        assert decoded.covers(datagram) == profile.covers(datagram)
        assert decoded.apply(datagram) == profile.apply(datagram)
