"""Property-based checks of window buffers and Lemma 1 join semantics.

The symmetric window join is compared against a brute-force oracle that
enumerates all cross pairs and applies Lemma 1's condition
``-T1 <= t1.ts - t2.ts <= T2`` directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbn.datagram import Datagram
from repro.spe.operators import JoinInput, SymmetricWindowJoin
from repro.spe.windows import WindowBuffer

timestamps = st.lists(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    min_size=0,
    max_size=12,
).map(sorted)

window_sizes = st.sampled_from([0.0, 1.0, 5.0, 20.0, 1000.0])


class TestWindowBufferInvariant:
    @given(timestamps, window_sizes)
    def test_contents_always_inside_window(self, times, size):
        buf = WindowBuffer(size)
        for ts in times:
            buf.insert(Datagram("S", {"v": 1}, ts))
            for item in buf.contents(now=ts):
                assert ts - size <= item.timestamp <= ts

    @given(timestamps, window_sizes)
    def test_every_tuple_expired_exactly_once(self, times, size):
        buf = WindowBuffer(size)
        expired_total = []
        for ts in times:
            expired_total.extend(buf.expire(ts))
            buf.insert(Datagram("S", {"v": 1}, ts))
        survivors = list(buf)
        assert len(expired_total) + len(survivors) == len(times)


@st.composite
def interleaved_feed(draw):
    """Two streams' timestamps interleaved into one ordered feed."""
    a_times = draw(timestamps)
    b_times = draw(timestamps)
    feed = [("A", ts) for ts in a_times] + [("B", ts) for ts in b_times]
    feed.sort(key=lambda item: item[1])
    return feed


class TestLemma1Oracle:
    @given(interleaved_feed(), window_sizes, window_sizes)
    @settings(max_examples=80, deadline=None)
    def test_join_matches_brute_force(self, feed, t_a, t_b):
        join = SymmetricWindowJoin([JoinInput("A", t_a), JoinInput("B", t_b)])
        produced = set()
        counter = {"A": 0, "B": 0}
        for stream, ts in feed:
            ident = counter[stream]
            counter[stream] += 1
            out = join.process(stream, Datagram(stream, {"id": ident}, ts))
            for binding in out:
                produced.add((binding["A.id"], binding["B.id"]))

        a_items = [(i, ts) for i, (s, ts) in enumerate(
            item for item in feed if item[0] == "A"
        )]
        # Rebuild ids per stream in arrival order.
        a_list = [ts for s, ts in feed if s == "A"]
        b_list = [ts for s, ts in feed if s == "B"]
        expected = set()
        for ia, ta in enumerate(a_list):
            for ib, tb in enumerate(b_list):
                if -t_a <= ta - tb <= t_b:
                    expected.add((ia, ib))
        assert produced == expected


class TestIndexedJoinDifferential:
    @given(interleaved_feed(), window_sizes, window_sizes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_indexed_join_matches_nested(self, feed, t_a, t_b, data):
        """The hash-indexed engine is semantically identical to the
        nested-loop engine on arbitrary equijoin feeds."""
        from repro.cql.predicates import Conjunction, JoinPredicate
        from repro.spe.indexed import IndexedSymmetricJoin
        from repro.spe.operators import JoinInput, SymmetricWindowJoin

        nested = SymmetricWindowJoin([JoinInput("A", t_a), JoinInput("B", t_b)])
        indexed = IndexedSymmetricJoin(
            JoinInput("A", t_a), JoinInput("B", t_b), [("k", "k")]
        )
        link = Conjunction.from_atoms([JoinPredicate("A.k", "B.k")])
        counters = {"A": 0, "B": 0}
        for stream, ts in feed:
            key = data.draw(st.integers(0, 2), label="key")
            ident = counters[stream]
            counters[stream] += 1
            datagram = Datagram(stream, {"k": key, "id": ident}, ts)
            nested_out = sorted(
                tuple(sorted(b.items()))
                for b in nested.process(stream, datagram)
                if link.evaluate(b)
            )
            indexed_out = sorted(
                tuple(sorted(b.items()))
                for b in indexed.process(stream, datagram)
            )
            assert nested_out == indexed_out
