"""Property-based CQL text round-tripping on random query ASTs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cql.ast import Aggregate, ContinuousQuery, StreamRef, Window
from repro.cql.parser import parse_query
from repro.cql.predicates import AttrRef, Comparison, Conjunction, JoinPredicate
from repro.cql.text import to_cql

STREAMS = ["Alpha", "Beta"]
ATTRS = ["x", "y", "z"]
WINDOWS = [0.0, 60.0, 3600.0, float("inf")]


@st.composite
def random_queries(draw):
    n_streams = draw(st.integers(min_value=1, max_value=2))
    streams = tuple(
        StreamRef(STREAMS[i], Window(draw(st.sampled_from(WINDOWS))))
        for i in range(n_streams)
    )
    qualifiers = [ref.name for ref in streams]
    atoms = []
    for __ in range(draw(st.integers(min_value=0, max_value=3))):
        qualifier = draw(st.sampled_from(qualifiers))
        attr = draw(st.sampled_from(ATTRS))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        atoms.append(Comparison(f"{qualifier}.{attr}", op, draw(st.integers(-99, 99))))
    if n_streams == 2 and draw(st.booleans()):
        attr = draw(st.sampled_from(ATTRS))
        atoms.append(JoinPredicate(f"{qualifiers[0]}.{attr}", f"{qualifiers[1]}.{attr}"))
    if draw(st.booleans()):
        select = tuple(
            AttrRef(draw(st.sampled_from(qualifiers)), draw(st.sampled_from(ATTRS)))
            for __ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        group_by = ()
    else:
        qualifier = qualifiers[0]
        select = (
            Aggregate(
                draw(st.sampled_from(["count", "sum", "avg", "min", "max"])),
                AttrRef(qualifier, draw(st.sampled_from(ATTRS))),
                "out",
            ),
        )
        group_by = (AttrRef(qualifier, draw(st.sampled_from(ATTRS))),)
        atoms = [a for a in atoms if isinstance(a, Comparison)]
    return ContinuousQuery(
        select_items=select,
        streams=streams,
        predicate=Conjunction.from_atoms(atoms),
        group_by=group_by,
    )


class TestRoundTrip:
    @given(random_queries())
    @settings(max_examples=150, deadline=None)
    def test_text_is_fixed_point(self, query):
        once = to_cql(query)
        assert to_cql(parse_query(once)) == once

    @given(random_queries())
    @settings(max_examples=150, deadline=None)
    def test_semantics_preserved(self, query):
        reparsed = parse_query(to_cql(query))
        assert reparsed.predicate == query.predicate
        assert [r.stream for r in reparsed.streams] == [r.stream for r in query.streams]
        assert [r.window for r in reparsed.streams] == [r.window for r in query.streams]
        assert reparsed.group_by == query.group_by
        assert reparsed.is_aggregate == query.is_aggregate
