"""Model soundness: dynamic walks stay inside the static machines.

The COS905 coverage gate counts chaos-walk transitions against the
product model.  That accounting is only meaningful if the conformance
walker never fabricates a transition the extracted machines do not
contain — otherwise "coverage" could include steps the model cannot
even represent.  Property: for any seeded schedule, in any mode
(lossy / recovery / recovery+migrate), every transition key the walker
collects names an actual edge of its machine, and every walked machine
is one the product composes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conformance import conformance_violations, transition_key
from repro.analysis.lifecycle import extract_lifecycle
from repro.analysis.model import build_product
from repro.analysis.selfcheck import default_package_dir
from repro.analysis.source import load_package
from repro.sim import ChaosConfig, run_chaos

_MODULES = load_package(default_package_dir())
_MACHINES = extract_lifecycle(_MODULES)
_MODEL = build_product(_MACHINES, _MODULES)
_EDGE_KEYS = {
    machine.name: {
        transition_key(t.label, t.source, t.target)
        for t in machine.transitions
    }
    for machine in _MACHINES
}
_COMPOSED = {component.machine.name for component in _MODEL.components}


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    mode=st.sampled_from(["lossy", "recovery", "migrate"]),
)
@settings(max_examples=20, deadline=None)
def test_walked_transitions_exist_in_the_static_model(seed, mode):
    recovery = mode != "lossy"
    config = ChaosConfig(
        seed=seed,
        n_faults=2,
        recovery=recovery,
        migrate=mode == "migrate",
    )
    report = run_chaos(config)
    transitions: dict = {}
    violations = conformance_violations(
        report.trace.lines,
        _MACHINES,
        report.reliability,
        recovery,
        load=report.health,
        transitions=transitions,
    )
    assert violations == [], f"seed {seed} ({mode}): {violations}"
    assert report.ok
    if recovery:
        # Recovery traces always register/deregister supervision: the
        # property must not pass vacuously on an empty collection.
        assert transitions, f"seed {seed} ({mode}): walker collected nothing"
    for machine_name, bucket in transitions.items():
        assert machine_name in _COMPOSED, (
            f"walker visited {machine_name}, which the product does "
            "not compose"
        )
        phantom = set(bucket) - _EDGE_KEYS[machine_name]
        assert not phantom, (
            f"seed {seed} ({mode}): walker counted transitions absent "
            f"from the {machine_name} machine: {sorted(phantom)}"
        )
        assert all(count >= 1 for count in bucket.values())
