"""Semantic soundness of the containment test, checked by execution.

Definition 1 grounds containment in actual result sets; here random
query pairs judged contained by Theorem 1 are *executed* on random
feeds, and every result tuple of the contained query must appear
(modulo projection) among the containing query's results.  This ties
the symbolic decision procedure to the engine's operational semantics
— including the window conditions of Lemma 1 for joins.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cbn.datagram import Datagram
from repro.core.containment import contains
from repro.cql.ast import ContinuousQuery, StreamRef, Window
from repro.cql.predicates import AttrRef, Comparison, Conjunction, JoinPredicate
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.spe.engine import StreamProcessingEngine

CATALOG = Catalog(
    [
        StreamSchema(
            "L",
            [Attribute("k", "int", 0, 3), Attribute("x", "int", -10, 10)],
            rate=1.0,
        ),
        StreamSchema(
            "R",
            [Attribute("k", "int", 0, 3), Attribute("y", "int", -10, 10)],
            rate=1.0,
        ),
    ]
)

WINDOWS = [0.0, 2.0, 5.0, 100.0]


@st.composite
def join_queries(draw, name):
    atoms = [JoinPredicate("L.k", "R.k")]
    if draw(st.booleans()):
        atoms.append(Comparison("L.x", ">=", draw(st.integers(-10, 5))))
    select = (AttrRef("L", "k"), AttrRef("L", "x"), AttrRef("R", "y"))
    return ContinuousQuery(
        select_items=select,
        streams=(
            StreamRef("L", Window(draw(st.sampled_from(WINDOWS)))),
            StreamRef("R", Window(draw(st.sampled_from(WINDOWS)))),
        ),
        predicate=Conjunction.from_atoms(atoms),
        name=name,
    )


@st.composite
def feeds(draw):
    events = []
    t = 0.0
    for __ in range(draw(st.integers(min_value=4, max_value=20))):
        t += draw(st.sampled_from([0.0, 1.0, 2.0, 4.0]))
        if draw(st.booleans()):
            events.append(
                Datagram(
                    "L",
                    {"k": draw(st.integers(0, 3)), "x": draw(st.integers(-10, 10))},
                    t,
                )
            )
        else:
            events.append(
                Datagram(
                    "R",
                    {"k": draw(st.integers(0, 3)), "y": draw(st.integers(-10, 10))},
                    t,
                )
            )
    return events


def _run(query, feed):
    spe = StreamProcessingEngine(CATALOG)
    spe.register(query, query.name)
    out = []
    for datagram in feed:
        out.extend(r.datagram for r in spe.push(datagram))
    return out


class TestContainmentIsSemanticallySound:
    @given(join_queries("q1"), join_queries("q2"), feeds())
    @settings(max_examples=80, deadline=None)
    def test_contained_results_are_subset(self, q1, q2, feed):
        assume(contains(q1, q2, CATALOG))
        small = _run(q1, feed)
        big = _run(q2, feed)
        big_keys = {
            (d.timestamp, tuple(sorted(d.payload.items()))) for d in big
        }
        for d in small:
            key = (d.timestamp, tuple(sorted(d.payload.items())))
            assert key in big_keys, (
                f"result {key} of contained query missing from container"
            )

    @given(join_queries("q"), feeds())
    @settings(max_examples=40, deadline=None)
    def test_self_containment_execution(self, q, feed):
        assert contains(q, q, CATALOG)
        a = _run(
            q, feed
        )
        b = _run(
            ContinuousQuery(q.select_items, q.streams, q.predicate, q.group_by, "q2"),
            feed,
        )
        assert len(a) == len(b)
