"""Lint properties: planted hazards are always flagged, safe modules never.

Two directions pin the analyzer's contract:

* **Completeness on the hazard grammar** — take a random module built
  from safe statements, plant one known-hazard snippet at a random
  position, and the pass must report exactly that snippet's code.
* **Soundness on the safe grammar** — modules built only from
  deterministic constructs (seeded RNGs, sorted iteration, set algebra
  consumed order-insensitively) must come back clean, whatever the
  combination.  This is the "never flag safe code" direction the
  conservative type inference promises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.selfcheck import check_source_module
from repro.analysis.source import module_from_text

_HEADER = (
    "from __future__ import annotations\n"
    "import os\n"
    "import random\n"
    "import time\n"
    "import uuid\n"
)

# -- the safe grammar --------------------------------------------------------
# Each entry is a statement template indexed by a counter so planted
# snippets never collide with scaffolding names.

_SAFE_TEMPLATES = (
    "v{i} = {n}\n",
    "rng{i} = random.Random({n})\n",
    "s{i} = set(range({n}))\n",
    "def f{i}(a, b):\n    return a + b + {n}\n",
    "def g{i}(items):\n"
    "    out = []\n"
    "    for x in sorted(set(items)):\n"
    "        out.append(x)\n"
    "    return out\n",
    "def h{i}(items, probe):\n"
    "    seen = set(items)\n"
    "    return probe in seen, len(seen)\n",
    "def j{i}(now):\n    return now + {n}\n",
    "def k{i}(a, b):\n"
    "    both = set(a) & set(b)\n"
    "    return sorted(both)\n",
)


@st.composite
def safe_statements(draw, max_size=6):
    count = draw(st.integers(min_value=0, max_value=max_size))
    parts = []
    for i in range(count):
        template = draw(st.sampled_from(_SAFE_TEMPLATES))
        n = draw(st.integers(min_value=0, max_value=99))
        parts.append(template.format(i=i, n=n))
    return parts


# -- the hazard grammar ------------------------------------------------------

_HAZARDS = (
    ("COS501", "hz = random.random()\n"),
    ("COS501", "hz = random.Random()\n"),
    ("COS501", "hz = uuid.uuid4()\n"),
    ("COS501", "hz = os.urandom(8)\n"),
    ("COS502", "hz = time.time()\n"),
    ("COS502", "hz = time.perf_counter()\n"),
    ("COS502", "hz = time.monotonic()\n"),
    (
        "COS503",
        "def hz_f(items):\n"
        "    out = []\n"
        "    for x in set(items):\n"
        "        out.append(x)\n"
        "    return out\n",
    ),
    (
        "COS503",
        "def hz_g(items):\n"
        "    return [x for x in set(items)]\n",
    ),
)


def _check(text, rel="repro/sim/generated.py"):
    return check_source_module(module_from_text(text, rel))


class TestPlantedHazards:
    @given(
        statements=safe_statements(),
        hazard=st.sampled_from(_HAZARDS),
        position=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_planted_hazard_always_flagged(self, statements, hazard, position):
        code, snippet = hazard
        body = list(statements)
        body.insert(min(position, len(body)), snippet)
        report = _check(_HEADER + "".join(body))
        assert report.codes() == [code], report.render()

    @given(
        statements=safe_statements(max_size=3),
        hazards=st.lists(st.sampled_from(_HAZARDS), min_size=2, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_planted_hazard_reported(self, statements, hazards):
        body = list(statements)
        expected = []
        for index, (code, snippet) in enumerate(hazards):
            # Rename the hazard symbols so snippets don't shadow each
            # other; the hazard expressions themselves are untouched.
            body.append(snippet.replace("hz", f"hz{index}"))
            expected.append(code)
        report = _check(_HEADER + "".join(body))
        assert sorted(report.codes()) == sorted(expected), report.render()


class TestSafeGrammar:
    @given(statements=safe_statements(max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_safe_modules_never_flagged(self, statements):
        report = _check(_HEADER + "".join(statements))
        assert report.is_clean, report.render()

    @given(statements=safe_statements(max_size=4), seed=st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_pragma_suppression_is_total(self, statements, seed):
        # Any hazard plus a same-line pragma comes back clean.
        body = list(statements)
        body.append(f"rng = random.Random({seed})\n")
        body.append("hz = time.time()  # cos: disable=COS502 (planted)\n")
        report = _check(_HEADER + "".join(body))
        assert report.is_clean, report.render()
