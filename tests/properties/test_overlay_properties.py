"""Property-based checks of the overlay substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.topology import barabasi_albert, edge_key
from repro.overlay.tree import DisseminationTree

seeds = st.integers(min_value=0, max_value=10_000)


class TestTreeProperties:
    @given(seeds, st.integers(min_value=5, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_mst_is_minimal_under_single_swaps(self, seed, n):
        """No single edge swap can improve an MST (cut property)."""
        topo = barabasi_albert(n, 2, random.Random(seed))
        tree = DisseminationTree.minimum_spanning(topo)
        total = tree.total_weight()
        for edge in tree.edges:
            u, v = edge
            side = tree.component_via(u, v)
            for cand in topo.edges:
                a, b = cand
                if cand == edge:
                    continue
                if (a in side) != (b in side):
                    # Swapping in cand must not beat the MST edge.
                    assert topo.weights[cand] >= tree.weight(u, v) - 1e-9

    @given(seeds, st.integers(min_value=5, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_paths_are_symmetric(self, seed, n):
        topo = barabasi_albert(n, 2, random.Random(seed))
        tree = DisseminationTree.minimum_spanning(topo)
        rng = random.Random(seed + 1)
        for __ in range(5):
            a, b = rng.randrange(n), rng.randrange(n)
            assert tree.path(a, b) == list(reversed(tree.path(b, a)))

    @given(seeds, st.integers(min_value=5, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_path_weight_triangle_inequality_on_trees(self, seed, n):
        """On a tree, w(a->c) <= w(a->b) + w(b->c) with equality when b
        lies on the a->c path."""
        topo = barabasi_albert(n, 2, random.Random(seed))
        tree = DisseminationTree.minimum_spanning(topo)
        rng = random.Random(seed + 2)
        a, b, c = (rng.randrange(n) for __ in range(3))
        assert (
            tree.path_weight(a, c)
            <= tree.path_weight(a, b) + tree.path_weight(b, c) + 1e-9
        )

    @given(seeds, st.integers(min_value=5, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_components_partition_the_tree(self, seed, n):
        topo = barabasi_albert(n, 2, random.Random(seed))
        tree = DisseminationTree.minimum_spanning(topo)
        rng = random.Random(seed + 3)
        node = rng.randrange(n)
        neighbors = sorted(tree.neighbors(node))
        sides = [tree.component_via(node, nb) for nb in neighbors]
        union = set()
        for side in sides:
            assert union.isdisjoint(side)
            union |= side
        assert union == set(tree.nodes) - {node}
