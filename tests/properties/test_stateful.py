"""Stateful property tests: random operation sequences.

Two rule-based machines drive the stateful components through random
interleavings of their operations and check the global invariants after
every step:

* the CBN: subscribe / unsubscribe / publish — every publication must
  deliver exactly what direct profile evaluation predicts, at any point
  in any operation sequence;
* the grouping optimizer: add / remove / reoptimize — bookkeeping stays
  consistent and every member stays contained in its representative.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.core.containment import contains
from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.cql.ast import ContinuousQuery, StreamRef, Window
from repro.cql.predicates import AttrRef, Comparison, Conjunction
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.overlay.tree import DisseminationTree

ATTRS = ["a", "b"]


def _line_tree(n=6):
    edges = [(i, i + 1) for i in range(n - 1)]
    return DisseminationTree(edges, {e: 1.0 for e in edges})


class CBNMachine(RuleBasedStateMachine):
    """Random subscribe/unsubscribe/publish sequences on one tree."""

    subscriptions = Bundle("subscriptions")

    def __init__(self):
        super().__init__()
        self.tree = _line_tree()
        self.network = ContentBasedNetwork(self.tree, use_subsumption=True)
        self.network.advertise("S", 0)
        self.live = {}
        self.counter = 0

    @rule(
        target=subscriptions,
        node=st.integers(min_value=0, max_value=5),
        threshold=st.integers(min_value=-3, max_value=3),
        narrow=st.booleans(),
        unconditional=st.booleans(),
    )
    def subscribe(self, node, threshold, narrow, unconditional):
        projection = frozenset({"a"}) if narrow else ALL_ATTRIBUTES
        filters = []
        if not unconditional:
            filters = [
                Filter(
                    "S",
                    Conjunction.from_atoms([Comparison("a", ">=", threshold)]),
                )
            ]
        profile = Profile({"S": projection}, filters)
        sid = f"u{self.counter}"
        self.counter += 1
        self.network.subscribe(profile, node, sid)
        self.live[sid] = profile
        return sid

    @rule(sid=subscriptions)
    def unsubscribe(self, sid):
        if sid in self.live:
            self.network.unsubscribe(sid)
            del self.live[sid]

    @rule(
        a=st.integers(min_value=-5, max_value=5),
        b=st.integers(min_value=-5, max_value=5),
        publisher=st.integers(min_value=0, max_value=5),
    )
    def publish(self, a, b, publisher):
        # Note: scoped propagation targets the advertised publisher at
        # node 0; publishing elsewhere is legal but may deliver less, so
        # correctness is asserted for the advertised origin.
        datagram = Datagram("S", {"a": a, "b": b}, 0.0)
        actual = {
            d.subscription_id: dict(d.datagram.payload)
            for d in self.network.publish(datagram, 0)
        }
        expected = {}
        for sid, profile in self.live.items():
            out = profile.apply(datagram)
            if out is not None:
                expected[sid] = dict(out.payload)
        assert actual == expected

    @invariant()
    def routing_state_bounded(self):
        # Entries never exceed (subscriptions x streams x nodes).
        assert self.network.routing_state_size() <= len(self.live) * 2 * 6


class GroupingMachine(RuleBasedStateMachine):
    """Random add/remove/reoptimize sequences on the optimizer."""

    queries = Bundle("queries")

    CATALOG = Catalog(
        [
            StreamSchema(
                "S",
                [Attribute("a", "int", -10, 10), Attribute("b", "int", -10, 10)],
                rate=1.0,
            ),
            StreamSchema("T", [Attribute("a", "int", -10, 10)], rate=1.0),
        ]
    )

    def __init__(self):
        super().__init__()
        self.optimizer = GroupingOptimizer(self.CATALOG, CostModel())
        self.added = set()
        self.counter = 0

    @rule(
        target=queries,
        stream=st.sampled_from(["S", "T"]),
        lo=st.integers(min_value=-10, max_value=5),
        span=st.integers(min_value=0, max_value=10),
        window=st.sampled_from([60.0, 300.0]),
    )
    def add_query(self, stream, lo, span, window):
        name = f"q{self.counter}"
        self.counter += 1
        query = ContinuousQuery(
            select_items=(AttrRef(stream, "a"),),
            streams=(StreamRef(stream, Window(window)),),
            predicate=Conjunction.from_atoms(
                [
                    Comparison(f"{stream}.a", ">=", lo),
                    Comparison(f"{stream}.a", "<=", lo + span),
                ]
            ),
            name=name,
        )
        self.optimizer.add(query)
        self.added.add(name)
        return name

    @rule(name=queries)
    def remove_query(self, name):
        if name in self.added:
            self.optimizer.remove(name)
            self.added.discard(name)

    @rule()
    def reoptimize(self):
        self.optimizer.reoptimize()

    @invariant()
    def bookkeeping_consistent(self):
        assert self.optimizer.query_count == len(self.added)
        members = {
            member.name
            for group in self.optimizer.groups
            for member in group.members
        }
        assert members == self.added
        for name in self.added:
            group = self.optimizer.group_of(name)
            assert group is not None
            assert any(m.name == name for m in group.members)

    @invariant()
    def members_contained(self):
        for group in self.optimizer.groups:
            for member in group.members:
                assert contains(member, group.representative, self.CATALOG)


TestCBNStateful = CBNMachine.TestCase
TestCBNStateful.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)

TestGroupingStateful = GroupingMachine.TestCase
TestGroupingStateful.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
