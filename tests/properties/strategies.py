"""Shared hypothesis strategies for the property-based tests."""

from hypothesis import strategies as st

from repro.cql.predicates import (
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
)

TERMS = ["S.a", "S.b", "S.c", "S.d"]

values = st.integers(min_value=-20, max_value=20)


@st.composite
def intervals(draw):
    lo = draw(st.one_of(st.none(), values))
    hi = draw(st.one_of(st.none(), values))
    lo_strict = draw(st.booleans()) if lo is not None else False
    hi_strict = draw(st.booleans()) if hi is not None else False
    return Interval(lo, hi, lo_strict, hi_strict)


@st.composite
def comparisons(draw):
    term = draw(st.sampled_from(TERMS))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    return Comparison(term, op, draw(values))


@st.composite
def join_predicates(draw):
    left = draw(st.sampled_from(TERMS))
    right = draw(st.sampled_from([t for t in TERMS if t != left]))
    return JoinPredicate(left, right)


@st.composite
def difference_constraints(draw):
    left = draw(st.sampled_from(TERMS))
    right = draw(st.sampled_from([t for t in TERMS if t != left]))
    interval = draw(intervals())
    return DifferenceConstraint(left, right, interval)


atoms = st.one_of(comparisons(), join_predicates(), difference_constraints())


@st.composite
def conjunctions(draw, max_atoms=5):
    atom_list = draw(st.lists(atoms, max_size=max_atoms))
    return Conjunction.from_atoms(atom_list)


@st.composite
def bindings(draw):
    """A full assignment of small integers to every term."""
    return {term: draw(values) for term in TERMS}
