"""Chaos properties: every seeded schedule satisfies the delivery oracles.

The harness under test is :mod:`repro.sim`: a seed deterministically
becomes a chaos schedule (lossy source links + broker/processor
crash-and-repair), which runs against fast-path/naive twin systems
under four oracle invariants — exact ground-truth delivery, no orphan
queries/subscriptions after repair, per-query result chronology, and
fast-path == naive equivalence.  The canary tests then break the repair
path on purpose and demand the oracles notice: a chaos suite that
cannot fail is not testing anything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.system.rebuild as rebuild_module
from repro.sim import (
    ChaosConfig,
    generate_schedule,
    run_chaos,
    run_schedule,
    shrink_failing_schedule,
)
from repro.sim.schedule import FaultEvent


class TestChaosInvariants:
    """>= 25 random seeds, each checked against all four invariants."""

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        drop_p=st.sampled_from([0.0, 0.15, 0.4]),
        n_faults=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_schedule_satisfies_all_oracles(self, seed, drop_p, n_faults):
        config = ChaosConfig(seed=seed, drop_p=drop_p, n_faults=n_faults)
        report = run_chaos(config)
        assert report.ok, (
            f"seed {seed} violated the oracles "
            f"(replay: repro chaos --seed {seed}):\n"
            + "\n".join(report.violations)
        )

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_faults_actually_fire(self, seed):
        # The suite must not pass vacuously: every planned crash either
        # applies or is an explicitly recorded partition refusal.
        report = run_chaos(ChaosConfig(seed=seed, n_faults=2))
        counters = report.counters
        assert counters.faults_applied + counters.faults_refused == 2
        assert counters.injects > 0


class TestReplayDeterminism:
    """The same seed replays to a byte-identical trace — the property
    ``repro chaos --seed N`` relies on to reproduce CI failures."""

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_trace(self, seed):
        config = ChaosConfig(seed=seed)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.trace == second.trace
        assert first.trace.digest() == second.trace.digest()
        assert first.counters.as_dict() == second.counters.as_dict()
        assert first.violations == second.violations

    def test_schedule_generation_is_pure(self):
        config = ChaosConfig(seed=424242)
        assert (
            generate_schedule(config).events == generate_schedule(config).events
        )

    def test_known_seed_trace_is_stable(self):
        # Pin one digest so an accidental determinism regression (or an
        # unintended semantic change to schedule generation) is loud.
        report = run_chaos(ChaosConfig(seed=0))
        assert report.ok
        assert report.trace.digest() == "ce3e9e088b39"


def _breaking_rebuild(original):
    """A 'repaired' network that silently drops one user subscription —
    the classic repair bug the no-orphan/ground-truth oracles exist for."""

    def broken(system, tree):
        original(system, tree)
        for query_id, sub_id in sorted(system._user_subscriptions.items()):
            system.network.unsubscribe(sub_id)
            del system._user_subscriptions[query_id]
            break

    return broken


def _seed_with_applied_broker_fault(max_seed=50):
    """A seed whose schedule contains a broker crash that really applies."""
    for seed in range(max_seed):
        config = ChaosConfig(seed=seed)
        schedule = generate_schedule(config)
        has_broker = any(
            isinstance(e, FaultEvent) and e.kind == "broker"
            for e in schedule.events
        )
        if not has_broker:
            continue
        report = run_chaos(config)
        if report.ok and report.counters.faults_applied > 0:
            return config, schedule
    raise AssertionError("no suitable canary seed found")


class TestMutationCanary:
    """A deliberately broken repair must be caught by the oracles."""

    def test_broken_rebuild_is_caught(self, monkeypatch):
        config, schedule = _seed_with_applied_broker_fault()
        monkeypatch.setattr(
            rebuild_module,
            "rebuild_network",
            _breaking_rebuild(rebuild_module.rebuild_network),
        )
        report = run_schedule(config, schedule.events)
        assert not report.ok
        # Both the structural and the behavioural oracle should fire.
        assert any(v.startswith("orphan:") for v in report.violations)
        assert any(v.startswith("ground-truth:") for v in report.violations)

    def test_broken_rebuild_shrinks_to_minimal_schedule(self, monkeypatch):
        config, schedule = _seed_with_applied_broker_fault()
        monkeypatch.setattr(
            rebuild_module,
            "rebuild_network",
            _breaking_rebuild(rebuild_module.rebuild_network),
        )
        minimal = shrink_failing_schedule(config, schedule.events)
        # The orphan oracle fires on the crash alone, so ddmin should
        # strip every injection and leave a single fault event.
        assert len(minimal) == 1
        assert isinstance(minimal[0], FaultEvent)
        assert not run_schedule(config, minimal).ok
