"""Failure injection: delivery survives random broker failures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cql.schema import Attribute, StreamSchema
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.system.fault import FaultError, fail_broker, repair_tree
from tests.conftest import build_mst

SCHEMA = StreamSchema(
    "Temp",
    [Attribute("station", "int", 0, 9), Attribute("celsius", "float", -20, 40)],
    rate=1.0,
)

#: Nodes with attached roles that must never be failed.
PROTECTED = {0, 1, 2, 3}


def _assert_spanning_tree(tree, expected_nodes):
    """``tree`` is connected, acyclic, and spans exactly ``expected_nodes``.

    A tree on n nodes has exactly n-1 edges; with connectivity that
    also rules out cycles.  Connectivity is checked constructively:
    every node is reachable from the first one along tree paths.
    """
    nodes = sorted(tree.nodes)
    assert nodes == sorted(expected_nodes)
    assert len(tree.edges) == len(nodes) - 1
    root = nodes[0]
    for node in nodes[1:]:
        path = tree.path(root, node)
        assert path[0] == root and path[-1] == node


class TestRepairTreeProperties:
    """Random topology x random single/double broker failure: the
    repaired tree is connected, acyclic, and spans all survivors."""

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=10, max_value=40),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_repair_spans_survivors(self, seed, n_nodes, data):
        topo, tree = build_mst(n_nodes, seed)
        survivors = set(tree.nodes)
        failures = data.draw(st.integers(min_value=1, max_value=2), label="failures")
        for round_index in range(failures):
            victim = data.draw(
                st.sampled_from(sorted(survivors)), label=f"victim{round_index}"
            )
            try:
                repaired = repair_tree(tree, topo, victim)
            except FaultError:
                # Survivors physically partitioned (or last node): the
                # refusal must leave the input tree untouched.
                _assert_spanning_tree(tree, survivors)
                continue
            survivors.discard(victim)
            _assert_spanning_tree(repaired, survivors)
            # The failed node's physical links are never reused.
            assert all(victim not in edge for edge in repaired.edges)
            # Every repair edge is a real physical link of the topology.
            assert all(edge in topo.weights for edge in repaired.edges)
            tree = repaired


def _build(seed):
    topo = barabasi_albert(25, 2, random.Random(seed))
    tree = DisseminationTree.minimum_spanning(topo)
    system = CosmosSystem(tree, processor_nodes=[0], topology=topo)
    system.add_source(SCHEMA, 1)
    handles = [
        system.submit(
            "SELECT T.celsius FROM Temp [Range 1 Hour] T WHERE T.celsius > 0",
            user_node=2,
            name="qa",
        ),
        system.submit(
            "SELECT T.station FROM Temp [Range 1 Hour] T",
            user_node=3,
            name="qb",
        ),
    ]
    return system, handles


class TestRandomBrokerFailures:
    @given(st.integers(min_value=0, max_value=30), st.data())
    @settings(max_examples=25, deadline=None)
    def test_delivery_after_each_failure(self, seed, data):
        system, handles = _build(seed)
        tick = [0.0]

        def publish_and_check(expected_counts):
            tick[0] += 1.0
            system.publish(
                "Temp", {"station": 1, "celsius": 20.0}, tick[0]
            )
            assert [h.result_count for h in handles] == expected_counts

        publish_and_check([1, 1])
        failures = data.draw(st.integers(min_value=1, max_value=3), label="failures")
        done = 0
        for round_index in range(failures):
            candidates = [
                n for n in system.tree.nodes if n not in PROTECTED
            ]
            if not candidates:
                break
            victim = data.draw(
                st.sampled_from(sorted(candidates)), label=f"victim{round_index}"
            )
            try:
                fail_broker(system, victim)
            except FaultError:
                # Physically partitioned survivors: a legitimate refusal.
                continue
            done += 1
            publish_and_check([1 + done, 1 + done])
