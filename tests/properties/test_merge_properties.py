"""Property-based checks of query merging and profile re-tightening.

The central invariant of section 4, checked on random query pairs: a
synthetic result row belongs to the member's result iff it satisfies
the member's predicate — and a row of the *representative's* result
stream is routed to the member by its re-tightening profile iff the
member would have produced it.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cbn.datagram import Datagram
from repro.core.containment import contains
from repro.core.merging import MergeError, merge_queries
from repro.core.profiles import result_profile
from repro.cql.ast import ContinuousQuery, StreamRef, Window
from repro.cql.predicates import AttrRef, Comparison, Conjunction
from repro.cql.schema import Attribute, Catalog, StreamSchema

CATALOG = Catalog(
    [
        StreamSchema(
            "S",
            [
                Attribute("a", "int", -20, 20),
                Attribute("b", "int", -20, 20),
                Attribute("c", "int", -20, 20),
            ],
            rate=1.0,
        )
    ]
)

ATTRS = ["a", "b", "c"]


@st.composite
def single_stream_queries(draw, name):
    """A random select-project query over S with interval filters."""
    proj_size = draw(st.integers(min_value=1, max_value=3))
    projection = ATTRS[:proj_size]
    atoms = []
    for attr in draw(st.lists(st.sampled_from(ATTRS), max_size=2, unique=True)):
        lo = draw(st.integers(min_value=-15, max_value=10))
        hi = lo + draw(st.integers(min_value=0, max_value=10))
        atoms.append(Comparison(f"S.{attr}", ">=", lo))
        atoms.append(Comparison(f"S.{attr}", "<=", hi))
    window = draw(st.sampled_from([60.0, 300.0, 3600.0]))
    return ContinuousQuery(
        select_items=tuple(AttrRef("S", attr) for attr in projection),
        streams=(StreamRef("S", Window(window)),),
        predicate=Conjunction.from_atoms(atoms),
        name=name,
    )


@st.composite
def rows(draw):
    return {f"S.{attr}": draw(st.integers(-20, 20)) for attr in ATTRS}


class TestMergeInvariants:
    @given(single_stream_queries("m1"), single_stream_queries("m2"))
    @settings(max_examples=60, deadline=None)
    def test_representative_contains_members(self, m1, m2):
        rep = merge_queries(m1, m2, CATALOG, name="rep")
        assert contains(m1, rep, CATALOG)
        assert contains(m2, rep, CATALOG)

    @given(single_stream_queries("m1"), single_stream_queries("m2"), rows())
    @settings(max_examples=60, deadline=None)
    def test_rep_predicate_weaker_than_members(self, m1, m2, row):
        rep = merge_queries(m1, m2, CATALOG, name="rep")
        if m1.predicate.evaluate(row) or m2.predicate.evaluate(row):
            assert rep.predicate.evaluate(row)

    @given(single_stream_queries("m1"), single_stream_queries("m2"), rows())
    @settings(max_examples=60, deadline=None)
    def test_split_profile_reconstructs_member_exactly(self, m1, m2, row):
        """The paper's split correctness, on arbitrary rows.

        A row of the representative's result stream must reach the
        member's user iff the member's own predicate accepts the row,
        and then carry exactly the member's output attributes.
        """
        rep = merge_queries(m1, m2, CATALOG, name="rep")
        assume(rep.predicate.evaluate(row))  # rows the rep actually emits
        rep_outputs = rep.output_attribute_names(CATALOG)
        datagram = Datagram("out", {k: row[k] for k in rep_outputs}, 0.0)
        for member in (m1, m2):
            profile = result_profile(member, rep, CATALOG, "out")
            delivered = profile.apply(datagram)
            expected = member.predicate.evaluate(row)
            assert (delivered is not None) == expected
            if delivered is not None:
                assert set(delivered.payload) == set(
                    member.output_attribute_names(CATALOG)
                )
                for key, value in delivered.payload.items():
                    assert value == row[key]

    @given(single_stream_queries("m1"), single_stream_queries("m2"))
    @settings(max_examples=60, deadline=None)
    def test_windows_take_member_maximum(self, m1, m2):
        rep = merge_queries(m1, m2, CATALOG, name="rep")
        assert rep.window_of("S").size == max(
            m1.window_of("S").size, m2.window_of("S").size
        )

    @given(single_stream_queries("m1"), single_stream_queries("m2"))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative_semantically(self, m1, m2):
        ab = merge_queries(m1, m2, CATALOG, name="ab")
        ba = merge_queries(m2, m1, CATALOG, name="ba")
        assert ab.predicate.equivalent(ba.predicate)
        assert set(ab.output_attribute_names(CATALOG)) == set(
            ba.output_attribute_names(CATALOG)
        )
