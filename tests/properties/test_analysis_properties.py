"""Property-based checks of the static analyzer's solver.

The solver must be *sound* (an "unsatisfiable" verdict means no binding
exists, an implication verdict means no counterexample binding exists)
and *at least as complete* as the legacy pairwise checks it
cross-validates — the COS205 diagnostic assumes legacy-unsat implies
solver-unsat and legacy-implies implies solver-implies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intervals import implies as solver_implies
from repro.analysis.intervals import is_unsatisfiable
from repro.analysis.satisfiability import solver_subsumes
from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.predicates import Comparison, Conjunction

from tests.properties.strategies import bindings, conjunctions, values

FLAT_TERMS = ["a", "b", "c", "d"]


@st.composite
def flat_comparisons(draw):
    term = draw(st.sampled_from(FLAT_TERMS))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    return Comparison(term, op, draw(values))


@st.composite
def profiles(draw):
    """A single-stream profile with 0-2 comparison-only filters."""
    n_filters = draw(st.integers(min_value=0, max_value=2))
    filters = tuple(
        Filter(
            "S",
            Conjunction.from_atoms(
                draw(st.lists(flat_comparisons(), min_size=0, max_size=3))
            ),
        )
        for _ in range(n_filters)
    )
    return Profile({"S": ALL_ATTRIBUTES}, filters)


@st.composite
def datagrams(draw):
    payload = {term: draw(values) for term in FLAT_TERMS}
    return Datagram("S", payload, float(draw(values)))


class TestSolverSoundness:
    @given(conjunctions(), bindings())
    def test_unsat_means_no_binding_matches(self, conj, binding):
        if is_unsatisfiable(conj):
            assert not conj.evaluate(binding)

    @given(conjunctions(), conjunctions(), bindings())
    def test_implication_has_no_counterexample(self, premise, conclusion, binding):
        if solver_implies(premise, conclusion) and premise.evaluate(binding):
            assert conclusion.evaluate(binding)


class TestSolverCompleteness:
    @given(conjunctions())
    def test_solver_at_least_as_complete_as_legacy(self, conj):
        # The COS205 contract: whenever the legacy check proves the
        # predicate empty, the solver must agree.
        if not conj.is_satisfiable():
            assert is_unsatisfiable(conj)

    @given(conjunctions(), conjunctions())
    def test_solver_implication_covers_legacy(self, premise, conclusion):
        if premise.implies(conclusion):
            assert solver_implies(premise, conclusion)


class TestSubsumptionAgreement:
    @given(profiles(), profiles(), datagrams())
    @settings(max_examples=200)
    def test_solver_subsumption_is_sound_for_covering(self, mine, theirs, datagram):
        # If the solver says `mine` subsumes `theirs`, every datagram
        # `theirs` would request is already covered by `mine`.
        if solver_subsumes(mine, theirs) and theirs.covers(datagram):
            assert mine.covers(datagram)

    @given(profiles(), profiles())
    @settings(max_examples=200)
    def test_solver_confirms_legacy_subsumption(self, mine, theirs):
        # The COS205 contract at the profile level.
        if mine.subsumes(theirs):
            assert solver_subsumes(mine, theirs)
