"""Property-based checks of the predicate algebra.

The implication test is allowed to be incomplete but must be *sound*:
whenever it answers True, no binding may witness a counterexample.
Same for hull (weaker than both), and_ (conjunction semantics),
satisfiability (never False for a satisfied conjunction), and the
atom round-trip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cql.predicates import Conjunction, Interval

from tests.properties.strategies import (
    bindings,
    conjunctions,
    intervals,
    values,
)


class TestIntervalLattice:
    @given(intervals(), intervals(), values)
    def test_intersection_is_conjunction(self, a, b, v):
        meet = a.intersect(b)
        assert meet.contains_value(v) == (a.contains_value(v) and b.contains_value(v))

    @given(intervals(), intervals(), values)
    def test_hull_is_weaker(self, a, b, v):
        join = a.hull(b)
        if a.contains_value(v) or b.contains_value(v):
            assert join.contains_value(v)

    @given(intervals(), intervals())
    def test_containment_consistent_with_membership(self, a, b):
        if a.contains_interval(b):
            for probe in range(-25, 26):
                if b.contains_value(probe):
                    assert a.contains_value(probe)

    @given(intervals())
    def test_empty_interval_has_no_members(self, a):
        if a.is_empty:
            assert not any(a.contains_value(v) for v in range(-25, 26))

    @given(intervals(), values)
    def test_negate_membership(self, a, v):
        assert a.negate().contains_value(-v) == a.contains_value(v)

    @given(intervals(), values, st.integers(min_value=-5, max_value=5))
    def test_shift_membership(self, a, v, d):
        assert a.shift(d).contains_value(v + d) == a.contains_value(v)


class TestConjunctionSemantics:
    @given(conjunctions(), conjunctions(), bindings())
    def test_and_is_logical_conjunction(self, a, b, binding):
        both = a.and_(b)
        assert both.evaluate(binding) == (a.evaluate(binding) and b.evaluate(binding))

    @given(conjunctions(), conjunctions(), bindings())
    def test_implication_sound(self, a, b, binding):
        if a.implies(b) and a.evaluate(binding):
            assert b.evaluate(binding)

    @given(conjunctions(), conjunctions(), bindings())
    def test_hull_implied_by_both(self, a, b, binding):
        h = a.hull(b)
        if a.evaluate(binding) or b.evaluate(binding):
            assert h.evaluate(binding)

    @given(conjunctions(), bindings())
    def test_satisfiability_sound(self, c, binding):
        # A conjunction some binding satisfies must be reported satisfiable.
        if c.evaluate(binding):
            assert c.is_satisfiable()

    @given(conjunctions(), bindings())
    def test_closure_preserves_semantics(self, c, binding):
        assert c.closure().evaluate(binding) == c.evaluate(binding)

    @given(conjunctions(), bindings())
    def test_atom_roundtrip_preserves_semantics(self, c, binding):
        rebuilt = Conjunction.from_atoms(c.atoms())
        assert rebuilt.evaluate(binding) == c.evaluate(binding)

    @given(conjunctions())
    def test_implication_reflexive(self, c):
        assert c.implies(c)

    @given(conjunctions(), conjunctions(), conjunctions())
    def test_implication_transitive(self, a, b, c):
        if a.implies(b) and b.implies(c):
            assert a.implies(c)

    @given(conjunctions(), conjunctions())
    def test_unimplied_atoms_matches_single_atom_implication(self, a, b):
        residual = a.unimplied_atoms(b.atoms())
        residual_strs = {str(atom) for atom in residual}
        for atom in b.atoms():
            single = Conjunction.from_atoms([atom])
            assert (str(atom) not in residual_strs) == a.implies(single)

    @given(conjunctions(), bindings())
    def test_restrict_to_is_weaker(self, c, binding):
        restricted = c.restrict_to({"S.a", "S.b"})
        if c.evaluate(binding):
            assert restricted.evaluate(binding)
