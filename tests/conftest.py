"""Shared fixtures: catalogs, small overlays, the Table 1 queries.

Besides pytest fixtures this module hosts the plain builder functions
(:func:`build_mst`, :func:`build_auction_system`) that used to be
duplicated across ``tests/system/``, the property suites and the
benchmarks.  Property tests (Hypothesis cannot use function-scoped
fixtures) and ``benchmarks/conftest.py`` import them directly as
``from tests.conftest import build_mst``.
"""

import random

import pytest

from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.overlay.topology import Topology, barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
    TABLE1_Q3,
)


# -- shared builders ----------------------------------------------------------


def build_mst(n_nodes, seed, m=2):
    """A seeded Barabási–Albert topology and its MST dissemination tree."""
    topology = barabasi_albert(n_nodes, m, random.Random(seed))
    return topology, DisseminationTree.minimum_spanning(topology)


def build_auction_system(
    n_nodes=20,
    seed=9,
    processor_nodes=(0, 1),
    source_node=2,
    user_nodes=(3, 4),
):
    """A running auction system: two sources, the Table 1 q1/q2 pair.

    Returns ``(system, h1, h2)``.  Nodes ``processor_nodes + source_node
    + user_nodes`` are the protected set a fault schedule must not
    target with broker failures.
    """
    topology, tree = build_mst(n_nodes, seed)
    system = CosmosSystem(
        tree, processor_nodes=list(processor_nodes), topology=topology
    )
    system.add_source(OPEN_AUCTION_SCHEMA, source_node)
    system.add_source(CLOSED_AUCTION_SCHEMA, source_node)
    h1 = system.submit(TABLE1_Q1, user_node=user_nodes[0], name="q1")
    h2 = system.submit(TABLE1_Q2, user_node=user_nodes[1], name="q2")
    return system, h1, h2


@pytest.fixture
def mst_builder():
    """Factory fixture: ``mst_builder(n, seed) -> (topology, tree)``."""
    return build_mst


@pytest.fixture
def auction_system_builder():
    """Factory fixture for :func:`build_auction_system`."""
    return build_auction_system


@pytest.fixture
def auction_catalog():
    return Catalog([OPEN_AUCTION_SCHEMA, CLOSED_AUCTION_SCHEMA])


@pytest.fixture
def sensor_catalog():
    """A small sensor catalog with known domains for cost tests."""
    return Catalog(
        [
            StreamSchema(
                "Temp",
                [
                    Attribute("station", "int", 0, 9),
                    Attribute("temperature", "float", -20.0, 40.0),
                    Attribute("humidity", "float", 0.0, 100.0),
                    Attribute("timestamp", "timestamp"),
                ],
                rate=2.0,
            ),
            StreamSchema(
                "Wind",
                [
                    Attribute("station", "int", 0, 9),
                    Attribute("speed", "float", 0.0, 50.0),
                    Attribute("timestamp", "timestamp"),
                ],
                rate=1.0,
            ),
        ]
    )


@pytest.fixture
def q1(auction_catalog):
    return parse_query(TABLE1_Q1, name="q1")


@pytest.fixture
def q2(auction_catalog):
    return parse_query(TABLE1_Q2, name="q2")


@pytest.fixture
def q3(auction_catalog):
    return parse_query(TABLE1_Q3, name="q3")


@pytest.fixture
def small_topology():
    return barabasi_albert(30, 2, random.Random(42))


@pytest.fixture
def small_tree(small_topology):
    return DisseminationTree.minimum_spanning(small_topology)


@pytest.fixture
def line_tree():
    """0 - 1 - 2 - 3 - 4, unit weights."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return DisseminationTree(edges, {e: 1.0 for e in edges})


@pytest.fixture
def star_tree():
    """Node 0 in the middle of 1..4."""
    edges = [(0, 1), (0, 2), (0, 3), (0, 4)]
    return DisseminationTree(edges, {e: 1.0 for e in edges})
