"""AST -> CQL text -> AST round-tripping."""

import pytest

from repro.cql.parser import parse_query
from repro.cql.text import render_condition, to_cql
from repro.workload.auction import TABLE1_Q1, TABLE1_Q2, TABLE1_Q3

EXAMPLES = [
    "SELECT S.a FROM S",
    "SELECT S.a, S.b FROM S [Range 5 Minute]",
    "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID",
    "SELECT S.a FROM S WHERE S.a >= 1 AND S.a <= 5 AND S.b != 3",
    "SELECT S.a FROM S WHERE S.name = 'alice'",
    "SELECT AVG(S.t) AS m FROM S [Range 1 Hour] GROUP BY S.station",
    "SELECT COUNT(*) FROM S [Now]",
    "SELECT O.a FROM O, C WHERE O.ts - C.ts <= 0 AND O.ts - C.ts >= -10800",
    TABLE1_Q1,
    TABLE1_Q2,
    TABLE1_Q3,
]


@pytest.mark.parametrize("text", EXAMPLES)
def test_roundtrip_is_fixed_point(text):
    """to_cql(parse(text)) parses back to the same rendering."""
    once = to_cql(parse_query(text))
    twice = to_cql(parse_query(once))
    assert once == twice


@pytest.mark.parametrize("text", EXAMPLES)
def test_roundtrip_preserves_semantics(text):
    original = parse_query(text)
    reparsed = parse_query(to_cql(original))
    # Canonical alias names differ (aliases are inlined), so compare the
    # alias-free structure.
    assert len(original.streams) == len(reparsed.streams)
    assert [r.window for r in original.streams] == [
        r.window for r in reparsed.streams
    ]
    assert original.is_aggregate == reparsed.is_aggregate


def test_roundtrip_preserves_predicate(q1, auction_catalog):
    reparsed = parse_query(to_cql(q1.canonical(auction_catalog)))
    assert reparsed.predicate == q1.canonical(auction_catalog).predicate


def test_render_condition_true_is_empty():
    from repro.cql.predicates import Conjunction

    assert render_condition(Conjunction.true()) == ""


def test_render_string_values_quoted():
    q = parse_query("SELECT S.a FROM S WHERE S.name = 'bob'")
    assert "'bob'" in to_cql(q)


def test_render_difference_constraint():
    # The renderer may flip orientation (O.ts - C.ts >= -5 becomes
    # C.ts - O.ts <= 5); the reparsed predicate must be identical.
    q = parse_query("SELECT O.a FROM O, C WHERE O.ts - C.ts >= -5")
    text = to_cql(q)
    assert " - " in text
    assert parse_query(text).predicate == q.predicate
