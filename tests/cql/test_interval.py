"""Interval lattice: membership, containment, intersection, hull."""

import pytest

from repro.cql.predicates import Interval, PredicateError


class TestClassification:
    def test_universal(self):
        assert Interval().is_universal
        assert not Interval(lo=1).is_universal

    def test_empty_when_bounds_cross(self):
        assert Interval(5, 3).is_empty

    def test_empty_point_with_strict_end(self):
        assert Interval(5, 5, lo_strict=True).is_empty
        assert Interval(5, 5, hi_strict=True).is_empty

    def test_point(self):
        assert Interval.point(7).is_point
        assert not Interval(7, 8).is_point

    def test_unbounded_not_empty(self):
        assert not Interval(lo=3).is_empty
        assert not Interval(hi=3).is_empty

    def test_mixed_types_rejected(self):
        with pytest.raises(PredicateError):
            Interval(1, "b")


class TestMembership:
    def test_closed_bounds_inclusive(self):
        iv = Interval(1, 5)
        assert iv.contains_value(1)
        assert iv.contains_value(5)

    def test_strict_bounds_exclusive(self):
        iv = Interval(1, 5, lo_strict=True, hi_strict=True)
        assert not iv.contains_value(1)
        assert not iv.contains_value(5)
        assert iv.contains_value(3)

    def test_unbounded_sides(self):
        assert Interval(lo=0).contains_value(1e12)
        assert Interval(hi=0).contains_value(-1e12)

    def test_string_interval(self):
        iv = Interval("a", "m")
        assert iv.contains_value("hello")
        assert not iv.contains_value("zebra")

    def test_type_mismatch_is_not_member(self):
        assert not Interval(1, 5).contains_value("three")
        assert not Interval("a", "b").contains_value(3)


class TestContainment:
    def test_wider_contains_narrower(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))

    def test_narrower_does_not_contain_wider(self):
        assert not Interval(2, 8).contains_interval(Interval(0, 10))

    def test_equal_contains(self):
        assert Interval(0, 10).contains_interval(Interval(0, 10))

    def test_strict_boundary_excludes_closed(self):
        strict = Interval(0, 10, lo_strict=True)
        closed = Interval(0, 10)
        assert not strict.contains_interval(closed)
        assert closed.contains_interval(strict)

    def test_everything_contains_empty(self):
        assert Interval(5, 6).contains_interval(Interval(9, 1))

    def test_universal_contains_all(self):
        assert Interval().contains_interval(Interval(lo=3))
        assert Interval().contains_interval(Interval())


class TestLattice:
    def test_intersect_overlapping(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_intersect_keeps_strictness(self):
        result = Interval(0, 10, hi_strict=True).intersect(Interval(0, 10))
        assert result.hi_strict

    def test_hull_covers_gap(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)

    def test_hull_with_empty_is_identity(self):
        iv = Interval(2, 4)
        assert iv.hull(Interval(9, 1)) == iv
        assert Interval(9, 1).hull(iv) == iv

    def test_hull_unbounded_absorbs(self):
        assert Interval(0, 1).hull(Interval(lo=5)) == Interval(lo=0)

    def test_hull_strictness_weakens(self):
        # Hull of an open and a closed endpoint at the same value is closed.
        result = Interval(0, 5, hi_strict=True).hull(Interval(0, 5))
        assert not result.hi_strict

    def test_intersect_then_contains(self):
        a, b = Interval(0, 10), Interval(5, 20)
        meet = a.intersect(b)
        assert a.contains_interval(meet)
        assert b.contains_interval(meet)

    def test_hull_contains_both(self):
        a, b = Interval(0, 3), Interval(8, 9, hi_strict=True)
        join = a.hull(b)
        assert join.contains_interval(a)
        assert join.contains_interval(b)


class TestArithmetic:
    def test_shift(self):
        assert Interval(1, 2).shift(3) == Interval(4, 5)

    def test_shift_unbounded(self):
        assert Interval(lo=1).shift(-1) == Interval(lo=0)

    def test_negate(self):
        assert Interval(1, 2).negate() == Interval(-2, -1)

    def test_negate_preserves_strictness_swapped(self):
        iv = Interval(1, 2, lo_strict=True)
        neg = iv.negate()
        assert neg == Interval(-2, -1, hi_strict=True)

    def test_negate_involution(self):
        iv = Interval(-3, 7, lo_strict=True, hi_strict=False)
        assert iv.negate().negate() == iv

    def test_str(self):
        assert str(Interval(1, 2, lo_strict=True)) == "(1, 2]"
        assert str(Interval()) == "[-inf, +inf]"
