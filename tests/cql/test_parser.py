"""Lexer and parser behaviour on the CQL-like surface syntax."""

import math

import pytest

from repro.cql.ast import Aggregate, NOW, Star, UNBOUNDED, Window
from repro.cql.lexer import LexError, Token, tokenize
from repro.cql.parser import ParseError, parse_query
from repro.cql.predicates import (
    AttrRef,
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:-1]] == ["keyword"] * 3

    def test_numbers(self):
        tokens = tokenize("3 4.5")
        assert tokens[0].value == 3
        assert tokens[1].value == 4.5

    def test_string_literals(self):
        assert tokenize("'hello'")[0].value == "hello"
        assert tokenize('"x y"')[0].value == "x y"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_two_char_operators(self):
        kinds = [t.text for t in tokenize("<= >= != <>")[:-1]]
        assert kinds == ["<=", ">=", "!=", "!="]

    def test_qualified_name_punct(self):
        texts = [t.text for t in tokenize("O.itemID")[:-1]]
        assert texts == ["O", ".", "itemID"]

    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a ; b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParserBasics:
    def test_minimal_query(self):
        q = parse_query("SELECT S.a FROM S")
        assert q.stream_names == ("S",)
        assert q.streams[0].window == UNBOUNDED
        assert q.select_items == (AttrRef("S", "a"),)

    def test_star_projection(self):
        q = parse_query("SELECT O.* FROM OpenAuction O")
        assert q.select_items == (Star("O"),)

    def test_alias(self):
        q = parse_query("SELECT O.a FROM OpenAuction O")
        assert q.streams[0].alias == "O"
        assert q.streams[0].name == "O"

    def test_multiple_streams(self):
        q = parse_query("SELECT R.a FROM R [Now], S [Now]")
        assert q.stream_names == ("R", "S")

    def test_missing_from_is_error(self):
        with pytest.raises(ParseError):
            parse_query("SELECT S.a")

    def test_trailing_garbage_is_error(self):
        with pytest.raises(ParseError):
            parse_query("SELECT S.a FROM S extra ,")


class TestWindows:
    def test_now(self):
        q = parse_query("SELECT S.a FROM S [Now]")
        assert q.streams[0].window == NOW

    def test_unbounded_explicit(self):
        q = parse_query("SELECT S.a FROM S [Unbounded]")
        assert q.streams[0].window.is_unbounded

    def test_range_hours(self):
        q = parse_query("SELECT S.a FROM S [Range 3 Hour]")
        assert q.streams[0].window.size == 3 * 3600

    def test_range_minutes_plural(self):
        q = parse_query("SELECT S.a FROM S [Range 5 Minutes]")
        assert q.streams[0].window.size == 300

    def test_range_bare_seconds(self):
        q = parse_query("SELECT S.a FROM S [Range 42]")
        assert q.streams[0].window.size == 42

    def test_negative_window_rejected(self):
        with pytest.raises(Exception):
            Window(-1)


class TestWhereClause:
    def test_constant_comparison(self):
        q = parse_query("SELECT S.a FROM S WHERE S.a > 10")
        assert q.predicate.intervals["S.a"] == Interval(10, None, True, False)

    def test_flipped_constant(self):
        q = parse_query("SELECT S.a FROM S WHERE 10 < S.a")
        assert q.predicate.intervals["S.a"] == Interval(10, None, True, False)

    def test_equijoin(self):
        q = parse_query("SELECT R.a FROM R, S WHERE R.a = S.b")
        assert ("R.a", "S.b") in q.predicate.links

    def test_between(self):
        q = parse_query("SELECT S.a FROM S WHERE S.a BETWEEN 1 AND 5")
        assert q.predicate.intervals["S.a"] == Interval(1, 5)

    def test_negative_constant(self):
        q = parse_query("SELECT S.a FROM S WHERE S.a >= -3")
        assert q.predicate.intervals["S.a"] == Interval(-3, None)

    def test_string_constant(self):
        q = parse_query("SELECT S.a FROM S WHERE S.name = 'alice'")
        assert q.predicate.intervals["S.name"].is_point

    def test_timestamp_difference(self):
        q = parse_query(
            "SELECT O.a FROM O, C WHERE O.timestamp - C.timestamp <= 0"
        )
        assert ("C.timestamp", "O.timestamp") in q.predicate.diffs

    def test_two_sided_difference(self):
        q = parse_query(
            "SELECT O.a FROM O, C "
            "WHERE O.ts - C.ts <= 0 AND O.ts - C.ts >= -10800"
        )
        diff = q.predicate.diffs[("C.ts", "O.ts")]
        assert diff == Interval(0, 10800)

    def test_nonequality_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a FROM R, S WHERE R.a < S.b")

    def test_constant_vs_constant_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT S.a FROM S WHERE 1 = 1")

    def test_conjunction_chains(self):
        q = parse_query("SELECT S.a FROM S WHERE S.a > 1 AND S.a < 5 AND S.b = 2")
        assert len(q.predicate.intervals) == 2


class TestAggregates:
    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) FROM S [Range 60]")
        agg = q.select_items[0]
        assert isinstance(agg, Aggregate)
        assert agg.func == "count" and agg.arg is None

    def test_avg_with_alias(self):
        q = parse_query("SELECT AVG(S.temp) AS avg_temp FROM S")
        agg = q.select_items[0]
        assert agg.func == "avg"
        assert agg.name == "avg_temp"

    def test_group_by(self):
        q = parse_query("SELECT MAX(S.t) FROM S GROUP BY S.station")
        assert q.group_by == (AttrRef("S", "station"),)
        assert q.is_aggregate

    def test_default_output_name(self):
        q = parse_query("SELECT SUM(S.x) FROM S")
        assert q.select_items[0].name == "sum_S_x"

    def test_mixed_star_and_aggregate_rejected(self):
        with pytest.raises(Exception):
            parse_query("SELECT S.*, COUNT(*) FROM S")


class TestTable1Queries:
    def test_q1_parses(self):
        q = parse_query(
            "SELECT O.* FROM OpenAuction [Range 3 Hour] O, "
            "ClosedAuction [Now] C WHERE O.itemID = C.itemID"
        )
        assert q.window_of("O").size == 10800
        assert q.window_of("C") == NOW
        assert ("C.itemID", "O.itemID") in q.predicate.links

    def test_paper_section4_example(self):
        q = parse_query(
            "SELECT R.A, S.C FROM R [Now], S [Now] "
            "WHERE R.B = S.B AND R.A > 10"
        )
        assert q.select_items == (AttrRef("R", "A"), AttrRef("S", "C"))
        assert ("R.B", "S.B") in q.predicate.links
        assert q.predicate.intervals["R.A"] == Interval(10, None, True, False)


class TestParserErrors:
    def test_error_reports_position(self):
        with pytest.raises(ParseError) as exc:
            parse_query("SELECT S.a FROM S WHERE S.a >")
        assert "position" in str(exc.value)

    def test_between_requires_constants(self):
        with pytest.raises(ParseError):
            parse_query("SELECT S.a FROM S WHERE S.a BETWEEN S.b AND 5")

    def test_diff_must_compare_to_constant(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a FROM R, S WHERE R.x - R.y = S.z")

    def test_diff_not_equal_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a FROM R, S WHERE R.x - S.y != 0")

    def test_missing_closing_bracket(self):
        with pytest.raises(ParseError):
            parse_query("SELECT S.a FROM S [Range 5")

    def test_bad_window_keyword(self):
        with pytest.raises(ParseError):
            parse_query("SELECT S.a FROM S [Sliding 5]")

    def test_empty_select(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FROM S")

    def test_whitespace_insensitive(self):
        a = parse_query("SELECT   S.a\n FROM\tS [ Range 5 ]  WHERE  S.a>1")
        b = parse_query("SELECT S.a FROM S [Range 5] WHERE S.a > 1")
        assert a.predicate == b.predicate
        assert a.streams == b.streams
