"""Conjunction algebra: construction, implication, hull, evaluation."""

import pytest

from repro.cql.predicates import (
    AttrRef,
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
    PredicateError,
)


def conj(*atoms):
    return Conjunction.from_atoms(atoms)


class TestConstruction:
    def test_true_is_empty(self):
        assert Conjunction.true().is_true

    def test_comparisons_fold_into_intervals(self):
        c = conj(Comparison("a", ">", 1), Comparison("a", "<=", 5))
        assert c.intervals["a"] == Interval(1, 5, lo_strict=True)

    def test_equality_is_point_interval(self):
        c = conj(Comparison("a", "=", 3))
        assert c.intervals["a"].is_point

    def test_not_equal_collects(self):
        c = conj(Comparison("a", "!=", 1), Comparison("a", "!=", 2))
        assert c.excluded["a"] == frozenset({1, 2})

    def test_links_normalized(self):
        c = conj(JoinPredicate("z", "a"))
        assert ("a", "z") in c.links

    def test_diffs_normalized_orientation(self):
        c = conj(DifferenceConstraint("z", "a", Interval(0, 5)))
        assert ("a", "z") in c.diffs
        assert c.diffs[("a", "z")] == Interval(-5, 0)

    def test_bad_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("a", "~", 1)

    def test_atoms_roundtrip(self):
        original = conj(
            Comparison("a", ">=", 1),
            Comparison("a", "<=", 9),
            Comparison("b", "!=", 0),
            JoinPredicate("a", "c"),
            DifferenceConstraint("a", "c", Interval(hi=10)),
        )
        rebuilt = Conjunction.from_atoms(original.atoms())
        assert rebuilt == original

    def test_referenced_terms(self):
        c = conj(
            Comparison("a", ">", 1),
            JoinPredicate("b", "c"),
            DifferenceConstraint("d", "e", Interval(hi=1)),
        )
        assert c.referenced_terms() == {"a", "b", "c", "d", "e"}


class TestImplication:
    def test_tighter_implies_looser(self):
        assert conj(Comparison("a", ">", 10)).implies(conj(Comparison("a", ">", 5)))

    def test_looser_does_not_imply_tighter(self):
        assert not conj(Comparison("a", ">", 5)).implies(
            conj(Comparison("a", ">", 10))
        )

    def test_anything_implies_true(self):
        assert conj(Comparison("a", "=", 1)).implies(Conjunction.true())

    def test_true_implies_only_true(self):
        assert not Conjunction.true().implies(conj(Comparison("a", ">", 0)))

    def test_equality_implies_range(self):
        assert conj(Comparison("a", "=", 7)).implies(
            conj(Comparison("a", ">=", 0), Comparison("a", "<=", 10))
        )

    def test_range_implies_not_equal_outside(self):
        assert conj(Comparison("a", "<", 5)).implies(conj(Comparison("a", "!=", 9)))

    def test_range_does_not_imply_not_equal_inside(self):
        assert not conj(Comparison("a", "<", 5)).implies(
            conj(Comparison("a", "!=", 3))
        )

    def test_join_predicate_needs_link(self):
        assert conj(JoinPredicate("a", "b")).implies(conj(JoinPredicate("b", "a")))
        assert not Conjunction.true().implies(conj(JoinPredicate("a", "b")))

    def test_link_transitivity(self):
        c = conj(JoinPredicate("a", "b"), JoinPredicate("b", "c"))
        assert c.implies(conj(JoinPredicate("a", "c")))

    def test_closure_propagates_constants_through_links(self):
        c = conj(JoinPredicate("R.A", "S.B"), Comparison("R.A", ">", 10))
        assert c.implies(conj(Comparison("S.B", ">", 10)))

    def test_diff_constraint_implication(self):
        tight = conj(DifferenceConstraint("x", "y", Interval(-1, 1)))
        loose = conj(DifferenceConstraint("x", "y", Interval(-5, 5)))
        assert tight.implies(loose)
        assert not loose.implies(tight)

    def test_diff_reversed_orientation(self):
        c = conj(DifferenceConstraint("x", "y", Interval(0, 2)))
        assert c.implies(conj(DifferenceConstraint("y", "x", Interval(-2, 0))))

    def test_equal_terms_imply_zero_diff(self):
        c = conj(JoinPredicate("x", "y"))
        assert c.implies(conj(DifferenceConstraint("x", "y", Interval(-1, 1))))

    def test_value_intervals_bound_difference(self):
        c = conj(
            Comparison("x", ">=", 10),
            Comparison("x", "<=", 12),
            Comparison("y", ">=", 0),
            Comparison("y", "<=", 1),
        )
        assert c.implies(conj(DifferenceConstraint("x", "y", Interval(9, 12))))
        assert not c.implies(conj(DifferenceConstraint("x", "y", Interval(10, 11))))

    def test_unsatisfiable_implies_anything(self):
        bottom = conj(Comparison("a", ">", 5), Comparison("a", "<", 1))
        assert bottom.implies(conj(Comparison("z", "=", 42)))

    def test_implication_reflexive(self):
        c = conj(Comparison("a", ">", 1), JoinPredicate("a", "b"))
        assert c.implies(c)

    def test_equivalent(self):
        a = conj(Comparison("a", ">=", 1), Comparison("a", "<=", 1))
        b = conj(Comparison("a", "=", 1))
        assert a.equivalent(b)


class TestSatisfiability:
    def test_true_satisfiable(self):
        assert Conjunction.true().is_satisfiable()

    def test_crossed_bounds_unsat(self):
        assert not conj(Comparison("a", ">", 5), Comparison("a", "<", 5)).is_satisfiable()

    def test_point_excluded_unsat(self):
        assert not conj(
            Comparison("a", "=", 3), Comparison("a", "!=", 3)
        ).is_satisfiable()

    def test_link_forces_conflicting_constants_unsat(self):
        c = conj(
            JoinPredicate("a", "b"),
            Comparison("a", "=", 1),
            Comparison("b", "=", 2),
        )
        assert not c.is_satisfiable()

    def test_diff_conflicts_with_value_ranges_unsat(self):
        c = conj(
            Comparison("x", ">=", 100),
            Comparison("y", "<=", 0),
            DifferenceConstraint("x", "y", Interval(-5, 5)),
        )
        assert not c.is_satisfiable()

    def test_linked_terms_with_nonzero_diff_unsat(self):
        c = conj(
            JoinPredicate("x", "y"),
            DifferenceConstraint("x", "y", Interval(1, 2)),
        )
        assert not c.is_satisfiable()


class TestCombination:
    def test_and_tightens(self):
        a = conj(Comparison("a", ">", 0))
        b = conj(Comparison("a", "<", 10))
        both = a.and_(b)
        assert both.intervals["a"] == Interval(0, 10, True, True)

    def test_and_implies_both(self):
        a = conj(Comparison("a", ">", 0))
        b = conj(JoinPredicate("a", "b"))
        both = a.and_(b)
        assert both.implies(a)
        assert both.implies(b)

    def test_hull_implied_by_both(self):
        a = conj(Comparison("a", ">=", 0), Comparison("a", "<=", 5))
        b = conj(Comparison("a", ">=", 3), Comparison("a", "<=", 9))
        h = a.hull(b)
        assert a.implies(h)
        assert b.implies(h)
        assert h.intervals["a"] == Interval(0, 9)

    def test_hull_drops_one_sided_terms(self):
        a = conj(Comparison("a", ">", 0), Comparison("b", "=", 1))
        b = conj(Comparison("a", ">", 2))
        h = a.hull(b)
        assert "b" not in h.intervals
        assert "a" in h.intervals

    def test_hull_keeps_common_links_only(self):
        a = conj(JoinPredicate("x", "y"), JoinPredicate("y", "z"))
        b = conj(JoinPredicate("x", "y"))
        h = a.hull(b)
        assert h.links == frozenset({("x", "y")})

    def test_hull_with_true_is_true(self):
        a = conj(Comparison("a", ">", 0))
        assert a.hull(Conjunction.true()).is_true

    def test_hull_uses_closure(self):
        # a = b AND a > 10 also constrains b; hull with (b > 5) keeps b > 5.
        a = conj(JoinPredicate("a", "b"), Comparison("a", ">", 10))
        b = conj(Comparison("b", ">", 5))
        h = a.hull(b)
        assert h.intervals["b"] == Interval(5, None, True, False)

    def test_rename(self):
        c = conj(Comparison("O.a", ">", 1), JoinPredicate("O.a", "C.b"))
        renamed = c.rename({"O.a": "x", "C.b": "y"})
        assert renamed == conj(Comparison("x", ">", 1), JoinPredicate("x", "y"))

    def test_restrict_to(self):
        c = conj(
            Comparison("a", ">", 1),
            Comparison("b", "<", 2),
            JoinPredicate("a", "b"),
            JoinPredicate("a", "c"),
        )
        r = c.restrict_to({"a", "b"})
        assert "b" in r.intervals and "a" in r.intervals
        assert r.links == frozenset({("a", "b")})


class TestEvaluation:
    def test_interval_match(self):
        c = conj(Comparison("a", ">", 1))
        assert c.evaluate({"a": 2})
        assert not c.evaluate({"a": 1})

    def test_missing_term_fails(self):
        assert not conj(Comparison("a", ">", 1)).evaluate({"b": 5})

    def test_excluded_value_fails(self):
        c = conj(Comparison("a", "!=", 3))
        assert not c.evaluate({"a": 3})
        assert c.evaluate({"a": 4})

    def test_link_equality(self):
        c = conj(JoinPredicate("a", "b"))
        assert c.evaluate({"a": 1, "b": 1})
        assert not c.evaluate({"a": 1, "b": 2})

    def test_diff_evaluation(self):
        c = conj(DifferenceConstraint("a", "b", Interval(-3, 0)))
        assert c.evaluate({"a": 1.0, "b": 2.0})
        assert not c.evaluate({"a": 5.0, "b": 2.0})

    def test_diff_on_strings_fails(self):
        c = conj(DifferenceConstraint("a", "b", Interval(-3, 0)))
        assert not c.evaluate({"a": "x", "b": "y"})

    def test_true_always_matches(self):
        assert Conjunction.true().evaluate({})

    def test_string_equality(self):
        c = conj(Comparison("name", "=", "alice"))
        assert c.evaluate({"name": "alice"})
        assert not c.evaluate({"name": "bob"})


class TestUnimpliedAtoms:
    def test_matches_per_atom_implication(self):
        rep = conj(Comparison("a", ">=", 0), Comparison("a", "<=", 10))
        atoms = [
            Comparison("a", ">=", 2),   # not implied
            Comparison("a", "<=", 20),  # implied
            JoinPredicate("a", "b"),    # not implied
        ]
        residual = rep.unimplied_atoms(atoms)
        assert Comparison("a", ">=", 2) in residual
        assert Comparison("a", "<=", 20) not in residual
        assert JoinPredicate("a", "b") in residual

    def test_agrees_with_full_implication(self):
        rep = conj(
            JoinPredicate("x", "y"),
            Comparison("x", ">", 5),
            DifferenceConstraint("x", "z", Interval(-2, 2)),
        )
        atoms = [
            Comparison("y", ">", 5),
            Comparison("y", ">", 6),
            DifferenceConstraint("z", "x", Interval(-3, 3)),
            JoinPredicate("y", "x"),
            Comparison("x", "!=", 4),
        ]
        residual = set(map(str, rep.unimplied_atoms(atoms)))
        for atom in atoms:
            single = Conjunction.from_atoms([atom])
            expected_implied = rep.implies(single)
            assert (str(atom) not in residual) == expected_implied


class TestAttrRef:
    def test_parse_qualified(self):
        ref = AttrRef.parse("O.timestamp")
        assert ref.qualifier == "O" and ref.name == "timestamp"
        assert ref.key == "O.timestamp"

    def test_parse_bare(self):
        ref = AttrRef.parse("temperature")
        assert ref.qualifier is None
        assert ref.key == "temperature"
