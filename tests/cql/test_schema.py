"""Schemas and catalog behaviour."""

import pytest

from repro.cql.schema import Attribute, Catalog, SchemaError, StreamSchema


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("temperature")
        assert attr.type == "float"
        assert attr.byte_width == 8

    def test_width_by_type(self):
        assert Attribute("a", "int").byte_width == 4
        assert Attribute("a", "str").byte_width == 16
        assert Attribute("a", "timestamp").byte_width == 8

    def test_explicit_width_wins(self):
        assert Attribute("a", "str", width=64).byte_width == 64

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("a", "blob")

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("a", "int", lo=5, hi=1)

    def test_is_numeric(self):
        assert Attribute("a", "int").is_numeric
        assert Attribute("a", "timestamp").is_numeric
        assert not Attribute("a", "str").is_numeric


class TestStreamSchema:
    def test_attribute_lookup(self):
        schema = StreamSchema("S", [Attribute("a", "int")])
        assert schema.attribute("a").type == "int"
        assert schema.has_attribute("a")
        assert not schema.has_attribute("b")

    def test_unknown_attribute_raises(self):
        schema = StreamSchema("S", [Attribute("a")])
        with pytest.raises(SchemaError):
            schema.attribute("zzz")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("S", [Attribute("a"), Attribute("a")])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("S", [Attribute("a")], rate=0)

    def test_tuple_width(self):
        schema = StreamSchema("S", [Attribute("a", "int"), Attribute("b", "float")])
        assert schema.tuple_width == 12

    def test_width_of_projection(self):
        schema = StreamSchema(
            "S", [Attribute("a", "int"), Attribute("b", "float"), Attribute("c", "str")]
        )
        assert schema.width_of(["a", "c"]) == 20

    def test_attribute_names_ordered(self):
        schema = StreamSchema("S", [Attribute("z"), Attribute("a")])
        assert schema.attribute_names == ("z", "a")


class TestCatalog:
    def test_register_and_get(self):
        catalog = Catalog()
        catalog.register(StreamSchema("S", [Attribute("a")]))
        assert "S" in catalog
        assert catalog.get("S").name == "S"

    def test_unknown_stream_raises(self):
        with pytest.raises(SchemaError):
            Catalog().get("nope")

    def test_replace_schema(self):
        catalog = Catalog()
        catalog.register(StreamSchema("S", [Attribute("a")], rate=1.0))
        catalog.register(StreamSchema("S", [Attribute("a")], rate=9.0))
        assert catalog.get("S").rate == 9.0
        assert len(catalog) == 1

    def test_unregister(self):
        catalog = Catalog([StreamSchema("S", [Attribute("a")])])
        catalog.unregister("S")
        assert "S" not in catalog
        catalog.unregister("S")  # idempotent

    def test_stream_names_sorted(self):
        catalog = Catalog(
            [StreamSchema("Z", [Attribute("a")]), StreamSchema("A", [Attribute("a")])]
        )
        assert catalog.stream_names == ["A", "Z"]

    def test_copy_is_independent(self):
        catalog = Catalog([StreamSchema("S", [Attribute("a")])])
        clone = catalog.copy()
        clone.unregister("S")
        assert "S" in catalog
