"""Query AST: validation, canonicalisation, windows, projections."""

import math

import pytest

from repro.cql.ast import (
    Aggregate,
    ContinuousQuery,
    NOW,
    QueryError,
    Star,
    StreamRef,
    UNBOUNDED,
    Window,
)
from repro.cql.parser import parse_query
from repro.cql.predicates import AttrRef, Comparison, Conjunction


class TestWindow:
    def test_now_and_unbounded(self):
        assert NOW.is_now
        assert UNBOUNDED.is_unbounded
        assert not Window(10).is_now

    def test_containment(self):
        assert Window(10).contains(Window(5))
        assert not Window(5).contains(Window(10))
        assert UNBOUNDED.contains(Window(1e9))

    def test_rendering(self):
        assert str(NOW) == "[Now]"
        assert str(UNBOUNDED) == "[Unbounded]"
        assert str(Window(3 * 3600)) == "[Range 3 Hour]"
        assert str(Window(90)) == "[Range 90 Second]"

    def test_ordering(self):
        assert Window(1) < Window(2)


class TestConstruction:
    def test_needs_streams(self):
        with pytest.raises(QueryError):
            ContinuousQuery(select_items=(AttrRef("S", "a"),), streams=())

    def test_needs_select_items(self):
        with pytest.raises(QueryError):
            ContinuousQuery(select_items=(), streams=(StreamRef("S"),))

    def test_duplicate_reference_names_rejected(self):
        with pytest.raises(QueryError):
            ContinuousQuery(
                select_items=(AttrRef("S", "a"),),
                streams=(StreamRef("S"), StreamRef("S")),
            )

    def test_self_join_with_aliases_allowed(self):
        q = ContinuousQuery(
            select_items=(AttrRef("a1", "x"),),
            streams=(StreamRef("S", alias="a1"), StreamRef("S", alias="a2")),
        )
        assert q.has_self_join


class TestValidation:
    def test_unknown_stream(self, auction_catalog):
        q = parse_query("SELECT X.a FROM X")
        with pytest.raises(QueryError):
            q.validate(auction_catalog)

    def test_unknown_attribute(self, auction_catalog):
        q = parse_query("SELECT O.nope FROM OpenAuction O")
        with pytest.raises(QueryError):
            q.validate(auction_catalog)

    def test_where_attribute_checked(self, auction_catalog):
        q = parse_query("SELECT O.itemID FROM OpenAuction O WHERE O.bogus > 1")
        with pytest.raises(QueryError):
            q.validate(auction_catalog)

    def test_valid_query_passes(self, q1, auction_catalog):
        q1.validate(auction_catalog)


class TestProjection:
    def test_star_expansion(self, q1, auction_catalog):
        attrs = q1.projected_attributes(auction_catalog)
        assert [a.key for a in attrs] == [
            "O.itemID",
            "O.sellerID",
            "O.start_price",
            "O.timestamp",
        ]

    def test_output_names(self, q2, auction_catalog):
        assert q2.output_attribute_names(auction_catalog) == [
            "O.itemID",
            "O.timestamp",
            "C.buyerID",
            "C.timestamp",
        ]

    def test_aggregate_output_names(self):
        q = parse_query("SELECT AVG(S.t) AS m FROM S GROUP BY S.station")
        from repro.cql.schema import Attribute, Catalog, StreamSchema

        catalog = Catalog(
            [StreamSchema("S", [Attribute("t"), Attribute("station", "int")])]
        )
        assert q.output_attribute_names(catalog) == ["S.station", "m"]


class TestCanonical:
    def test_aliases_replaced(self, q1, auction_catalog):
        c = q1.canonical(auction_catalog)
        assert c.reference_names == ("OpenAuction", "ClosedAuction")
        assert ("ClosedAuction.itemID", "OpenAuction.itemID") in c.predicate.links

    def test_already_canonical_fast_path(self, auction_catalog):
        q = parse_query("SELECT OpenAuction.itemID FROM OpenAuction")
        assert q.canonical(auction_catalog) is q

    def test_self_join_rejected(self, auction_catalog):
        q = parse_query(
            "SELECT a.itemID FROM OpenAuction a, OpenAuction b "
            "WHERE a.itemID = b.itemID"
        )
        with pytest.raises(QueryError):
            q.canonical(auction_catalog)

    def test_canonical_preserves_windows(self, q1, auction_catalog):
        c = q1.canonical(auction_catalog)
        assert c.window_of("OpenAuction").size == 3 * 3600
        assert c.window_of("ClosedAuction") == NOW

    def test_canonical_star(self, q1, auction_catalog):
        c = q1.canonical(auction_catalog)
        assert Star("OpenAuction") in c.select_items


class TestWindowManipulation:
    def test_unbounded_query(self, q1):
        inf = q1.unbounded()
        assert all(ref.window.is_unbounded for ref in inf.streams)

    def test_with_windows(self, q1):
        replaced = q1.with_windows({"O": Window(60)})
        assert replaced.window_of("O").size == 60
        assert replaced.window_of("C") == NOW

    def test_window_of_unknown_reference(self, q1):
        with pytest.raises(QueryError):
            q1.window_of("Z")


class TestAggregateItem:
    def test_bad_function(self):
        with pytest.raises(QueryError):
            Aggregate("median", AttrRef("S", "x"))

    def test_star_only_for_count(self):
        with pytest.raises(QueryError):
            Aggregate("sum", None)

    def test_default_name_includes_arg(self):
        assert Aggregate("max", AttrRef("S", "temp")).name == "max_S_temp"
        assert Aggregate("count", None).name == "count_star"
