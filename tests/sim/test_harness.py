"""VirtualNetwork execution and the seed-to-report runner."""

import pytest

from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, StreamSchema
from repro.overlay.topology import Topology
from repro.overlay.tree import DisseminationTree
from repro.sim.network import VirtualNetwork
from repro.sim.runner import (
    ChaosConfig,
    build_system,
    generate_schedule,
    protected_nodes,
    query_ids,
    run_chaos,
    run_schedule,
)
from repro.sim.schedule import FaultEvent, InjectEvent
from repro.system.cosmos import CosmosSystem

CONFIG = ChaosConfig(seed=11)


class TestBuildSystem:
    def test_twins_are_structurally_identical(self):
        fast = build_system(CONFIG, fast_path=True)
        naive = build_system(CONFIG, fast_path=False)
        assert sorted(fast.tree.edges) == sorted(naive.tree.edges)
        assert sorted(fast.network.subscriptions()) == sorted(
            naive.network.subscriptions()
        )
        assert [h.query_id for h in fast.queries] == [
            h.query_id for h in naive.queries
        ]

    def test_queries_are_single_stream(self):
        system = build_system(CONFIG)
        for handle in system.queries:
            assert len(handle.query.streams) == 1

    def test_protected_nodes_cover_all_roles(self):
        system = build_system(CONFIG)
        protected = set(protected_nodes(CONFIG))
        assert set(system.processors) <= protected
        assert set(system._sources.values()) <= protected
        assert {h.user_node for h in system.queries} <= protected

    def test_too_small_layout_rejected(self):
        with pytest.raises(ValueError):
            build_system(ChaosConfig(seed=1, n_nodes=6))


class TestGenerateSchedule:
    def test_time_ordered_and_windowed(self):
        schedule = generate_schedule(CONFIG)
        times = [e.time for e in schedule.events]
        assert times == sorted(times)
        for fault in schedule.faults:
            assert 0.2 * CONFIG.duration <= fault.time <= 0.6 * CONFIG.duration

    def test_fault_victims_respect_roles(self):
        protected = set(protected_nodes(CONFIG))
        for seed in range(20):
            schedule = generate_schedule(ChaosConfig(seed=seed))
            for fault in schedule.faults:
                if fault.kind == "broker":
                    assert fault.node not in protected
                else:
                    assert fault.node in range(CONFIG.n_processors)

    def test_epilogue_is_pristine_and_late(self):
        schedule = generate_schedule(CONFIG)
        epilogue = [
            e for e in schedule.events if e.time >= CONFIG.epilogue_start
        ]
        assert epilogue
        assert all(isinstance(e, InjectEvent) for e in epilogue)
        assert all(not e.duplicate for e in epilogue)


class TestVirtualNetwork:
    def test_inject_reaches_both_twins(self):
        vnet = VirtualNetwork(
            build=lambda fast_path: build_system(CONFIG, fast_path=fast_path)
        )
        event = InjectEvent(1.0, "Temp", (("celsius", 35.0), ("station", 0)))
        vnet.execute([event])
        assert vnet.counters.injects == 1
        assert len(vnet.effective_feed) == 1
        fast = [h.result_count for h in vnet.primary.queries]
        naive = [h.result_count for h in vnet.shadow.queries]
        assert fast == naive

    def test_partitioned_repair_is_recorded_as_refused(self):
        def build_line(fast_path=True):
            topo = Topology()
            for u, v in [(0, 1), (1, 2), (2, 3)]:
                topo.add_edge(u, v, 1.0)
            tree = DisseminationTree(
                [(0, 1), (1, 2), (2, 3)],
                {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0},
            )
            system = CosmosSystem(
                tree, processor_nodes=[0], topology=topo, fast_path=fast_path
            )
            system.add_source(
                StreamSchema(
                    "Temp", [Attribute("station", "int", 0, 9)], rate=1.0
                ),
                3,
            )
            system.submit(
                parse_query("SELECT T.station FROM Temp [Now] T"),
                user_node=3,
                name="q",
            )
            return system

        vnet = VirtualNetwork(build=build_line)
        # Node 1 is a physical cut vertex: the repair must refuse.
        vnet.execute([FaultEvent(1.0, "broker", 1)])
        assert vnet.counters.faults_refused == 1
        assert vnet.counters.faults_applied == 0
        assert any("refused" in line for line in vnet.trace.lines)
        # The system keeps working after the refusal.
        vnet.execute(
            [InjectEvent(2.0, "Temp", (("station", 1),))]
        )
        assert vnet.primary.query("q").result_count == 1

    def test_fast_path_check_can_be_disabled(self):
        vnet = VirtualNetwork(
            build=lambda fast_path: build_system(CONFIG, fast_path=fast_path),
            check_fast_path=False,
        )
        assert vnet.shadow is None
        assert vnet.systems == [vnet.primary]


class TestRunner:
    def test_empty_schedule_is_ok(self):
        report = run_schedule(CONFIG, [])
        assert report.ok
        assert report.counters.injects == 0

    def test_report_render_names_seed_and_status(self):
        report = run_chaos(CONFIG)
        rendered = report.render()
        assert f"seed={CONFIG.seed}" in rendered
        assert ("OK" in rendered) == report.ok

    def test_counters_account_for_every_event(self):
        schedule = generate_schedule(CONFIG)
        report = run_schedule(CONFIG, schedule.events)
        c = report.counters
        assert c.injects + c.drops + c.faults_applied + c.faults_refused == len(
            schedule.events
        )

    def test_query_ids_match_built_system(self):
        system = build_system(CONFIG)
        assert query_ids(CONFIG) == [h.query_id for h in system.queries]
