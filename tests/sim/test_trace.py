"""Trace recording and ddmin schedule shrinking."""

import pytest

from repro.sim.trace import ChaosTrace, shrink_schedule


class TestChaosTrace:
    def test_records_in_order(self):
        trace = ChaosTrace()
        trace.record("a")
        trace.record("b")
        assert trace.lines == ["a", "b"]
        assert trace.render() == "a\nb"
        assert len(trace) == 2

    def test_equality_and_digest(self):
        one, two = ChaosTrace(), ChaosTrace()
        for line in ("x", "y"):
            one.record(line)
            two.record(line)
        assert one == two
        assert one.digest() == two.digest()
        two.record("z")
        assert one != two
        assert one.digest() != two.digest()

    def test_lines_returns_a_copy(self):
        trace = ChaosTrace()
        trace.record("a")
        trace.lines.append("tampered")
        assert trace.lines == ["a"]


class TestShrinkSchedule:
    def test_shrinks_to_single_culprit(self):
        events = list(range(32))
        minimal = shrink_schedule(events, fails=lambda c: 13 in c)
        assert minimal == [13]

    def test_shrinks_to_interacting_pair(self):
        events = list(range(20))
        minimal = shrink_schedule(events, fails=lambda c: 3 in c and 17 in c)
        assert minimal == [3, 17]

    def test_preserves_relative_order(self):
        events = ["d", "c", "b", "a"]
        minimal = shrink_schedule(
            events, fails=lambda c: "c" in c and "a" in c
        )
        assert minimal == ["c", "a"]

    def test_rejects_passing_input(self):
        with pytest.raises(ValueError):
            shrink_schedule([1, 2, 3], fails=lambda c: False)

    def test_respects_run_budget(self):
        calls = []

        def fails(candidate):
            calls.append(1)
            return 5 in candidate

        shrink_schedule(list(range(100)), fails, max_runs=10)
        # One initial sanity check plus at most max_runs candidates.
        assert len(calls) <= 11

    def test_everything_needed_stays(self):
        events = [0, 1, 2]
        minimal = shrink_schedule(events, fails=lambda c: c == [0, 1, 2])
        assert minimal == [0, 1, 2]
