"""The delivery oracle against hand-computed ground truth."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.sim.oracle import (
    check_chronology,
    check_ground_truth,
    check_no_orphans,
    compare_systems,
    expected_results,
)
from repro.sim.runner import ChaosConfig, build_system, query_ids

TEMP = StreamSchema(
    "Temp",
    [Attribute("station", "int", 0, 9), Attribute("celsius", "float", -20, 40)],
    rate=1.0,
)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(TEMP)
    return cat


def _feed(*rows):
    return [
        Datagram("Temp", {"station": s, "celsius": c}, t) for t, s, c in rows
    ]


class TestExpectedResults:
    def test_selection_and_projection(self, catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Range 1 Hour] T WHERE T.celsius > 20"
        )
        feed = _feed((1.0, 1, 25.0), (2.0, 2, 15.0), (3.0, 3, 30.5))
        assert expected_results(query, catalog, feed) == [
            ({"Temp.station": 1}, 1.0),
            ({"Temp.station": 3}, 3.0),
        ]

    def test_duplicates_delivered_twice(self, catalog):
        query = parse_query("SELECT T.station FROM Temp [Now] T")
        feed = _feed((1.0, 4, 25.0), (1.5, 4, 25.0))
        assert len(expected_results(query, catalog, feed)) == 2

    def test_other_streams_ignored(self, catalog):
        query = parse_query("SELECT T.station FROM Temp [Now] T")
        feed = [Datagram("Other", {"x": 1}, 1.0)] + _feed((2.0, 1, 5.0))
        assert expected_results(query, catalog, feed) == [
            ({"Temp.station": 1}, 2.0)
        ]

    def test_multi_stream_query_rejected(self, catalog):
        catalog.register(
            StreamSchema("Humid", [Attribute("station", "int", 0, 9)], rate=1.0)
        )
        join = parse_query(
            "SELECT T.station FROM Temp [Now] T, Humid [Now] H "
            "WHERE T.station = H.station"
        )
        with pytest.raises(ValueError):
            expected_results(join, catalog, [])


class TestSystemChecks:
    """The checkers against a real (healthy, then doctored) system."""

    @pytest.fixture
    def system(self):
        return build_system(ChaosConfig(seed=1))

    def test_healthy_system_is_clean(self, system):
        system.publish("Temp", {"station": 0, "celsius": 30.0}, 1.0)
        feed = _feed((1.0, 0, 30.0))
        ids = query_ids(ChaosConfig(seed=1))
        assert check_ground_truth(system, feed, ids) == []
        assert check_no_orphans(system) == []
        assert check_chronology(system) == []

    def test_missing_delivery_flagged(self, system):
        # The system never saw the tuple the oracle expects.
        feed = _feed((1.0, 0, 30.0))
        ids = query_ids(ChaosConfig(seed=1))
        violations = check_ground_truth(system, feed, ids)
        assert violations
        assert all(v.startswith("ground-truth:") for v in violations)

    def test_dropped_subscription_is_an_orphan(self, system):
        query_id = query_ids(ChaosConfig(seed=1))[0]
        system.network.unsubscribe(system._user_subscriptions.pop(query_id))
        violations = check_no_orphans(system)
        assert any(query_id in v and "no user subscription" in v for v in violations)

    def test_leaked_subscription_is_an_orphan(self, system):
        query_id = query_ids(ChaosConfig(seed=1))[0]
        del system._queries[query_id]
        del system._user_subscriptions[query_id]
        violations = check_no_orphans(system)
        assert any("outlived its query" in v for v in violations)

    def test_chronology_violation_flagged(self, system):
        system.publish("Temp", {"station": 0, "celsius": 30.0}, 5.0)
        handle = next(h for h in system.queries if h.results)
        handle.results.insert(
            0, Datagram(handle.result_stream, dict(handle.results[0].payload), 9.0)
        )
        assert check_chronology(system)

    def test_twin_comparison(self):
        fast = build_system(ChaosConfig(seed=1), fast_path=True)
        naive = build_system(ChaosConfig(seed=1), fast_path=False)
        assert compare_systems(fast, naive) == []
        fast.publish("Temp", {"station": 0, "celsius": 30.0}, 1.0)
        assert compare_systems(fast, naive)
