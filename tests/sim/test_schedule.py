"""Schedule generation: perturbation, fault planning, merging."""

import random

from repro.sim.schedule import (
    ChaosSchedule,
    DropEvent,
    FaultEvent,
    InjectEvent,
    LinkModel,
    merge_events,
    perturb_feed,
    plan_faults,
)

FEED = [
    (float(i), "Temp", {"station": i % 3, "celsius": 10.0 + i})
    for i in range(40)
]


class TestPerturbFeed:
    def test_lossless_link_is_identity(self):
        events = perturb_feed(FEED, {"Temp": LinkModel(0.0, 0.0, 0.0)}, random.Random(1))
        assert len(events) == len(FEED)
        assert all(isinstance(e, InjectEvent) for e in events)
        assert [e.time for e in events] == [t for t, __, __ in FEED]
        # Payloads are canonicalised to sorted items.
        assert events[0].payload == (("celsius", 10.0), ("station", 0))

    def test_drops_become_drop_events(self):
        events = perturb_feed(FEED, {"Temp": LinkModel(0.0, 1.0, 0.0)}, random.Random(1))
        assert all(isinstance(e, DropEvent) for e in events)
        assert len(events) == len(FEED)

    def test_duplicates_flagged_and_later(self):
        events = perturb_feed(FEED, {"Temp": LinkModel(5.0, 0.0, 1.0)}, random.Random(1))
        injects = [e for e in events if isinstance(e, InjectEvent)]
        assert len(injects) == 2 * len(FEED)
        dups = [e for e in injects if e.duplicate]
        assert len(dups) == len(FEED)
        for dup in dups:
            twin = next(
                e for e in injects
                if not e.duplicate and e.payload == dup.payload
            )
            assert dup.time >= twin.time

    def test_delay_bounded_and_resorted(self):
        link = LinkModel(max_delay=30.0, drop_p=0.0, dup_p=0.0)
        events = perturb_feed(FEED, {"Temp": link}, random.Random(7))
        times = [e.time for e in events]
        assert times == sorted(times)
        for event, (original, __, __) in zip(
            sorted(events, key=lambda e: e.payload), sorted(FEED, key=lambda f: tuple(sorted(f[2].items())))
        ):
            assert original <= event.time <= original + 30.0

    def test_same_rng_seed_same_perturbation(self):
        link = {"Temp": LinkModel(10.0, 0.3, 0.2)}
        first = perturb_feed(FEED, link, random.Random(9))
        second = perturb_feed(FEED, link, random.Random(9))
        assert first == second

    def test_unknown_stream_passes_through(self):
        events = perturb_feed(
            [(1.0, "Other", {"x": 1})], {"Temp": LinkModel(5.0, 1.0, 0.0)},
            random.Random(1),
        )
        assert events == [InjectEvent(1.0, "Other", (("x", 1),))]


class TestPlanFaults:
    def test_faults_inside_window_sorted(self):
        faults = plan_faults(
            random.Random(3), 4, (100.0, 200.0),
            broker_candidates=[5, 6, 7, 8, 9], processor_candidates=[0, 1],
        )
        assert len(faults) == 4
        assert all(100.0 <= f.time <= 200.0 for f in faults)
        assert [f.time for f in faults] == sorted(f.time for f in faults)

    def test_victims_drawn_without_replacement(self):
        faults = plan_faults(
            random.Random(3), 5, (0.0, 1.0),
            broker_candidates=[5, 6, 7], processor_candidates=[0, 1],
        )
        victims = [(f.kind, f.node) for f in faults]
        assert len(set(victims)) == len(victims)

    def test_at_least_one_processor_survives(self):
        for seed in range(30):
            faults = plan_faults(
                random.Random(seed), 6, (0.0, 1.0),
                broker_candidates=[5, 6], processor_candidates=[0, 1, 2],
                processor_fault_p=1.0,
            )
            downed = [f for f in faults if f.kind == "processor"]
            assert len(downed) <= 2  # of 3 processors

    def test_exhausted_candidates_truncate_plan(self):
        faults = plan_faults(
            random.Random(1), 10, (0.0, 1.0),
            broker_candidates=[5], processor_candidates=[0],
        )
        assert len(faults) <= 1


class TestMergeAndRender:
    def test_merge_sorts_by_time(self):
        a = [InjectEvent(5.0, "Temp", (("x", 1),))]
        b = [FaultEvent(2.0, "broker", 9), DropEvent(7.0, "Temp")]
        merged = merge_events(a, b)
        assert [e.time for e in merged] == [2.0, 5.0, 7.0]

    def test_render_is_deterministic_text(self):
        schedule = ChaosSchedule(
            seed=7,
            events=[
                FaultEvent(2.0, "broker", 9),
                InjectEvent(5.0, "Temp", (("celsius", 1.5), ("station", 2))),
            ],
        )
        assert schedule.render() == (
            "schedule seed=7 events=2\n"
            "  fail_broker t=2 node=9\n"
            "  inject t=5 Temp[celsius=1.5,station=2]"
        )
