"""Migration-mode chaos: zero-loss live group moves under the oracle."""

import pytest

from repro.analysis.conformance import conformance_violations
from repro.analysis.lifecycle import extract_lifecycle
from repro.analysis.selfcheck import default_package_dir
from repro.analysis.source import load_package
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, StreamSchema
from repro.overlay.topology import Topology
from repro.overlay.tree import DisseminationTree
from repro.sim import (
    ChaosConfig,
    ChaosExecutionError,
    FaultEvent,
    InjectEvent,
    MigrationEvent,
    VirtualNetwork,
    generate_schedule,
    run_chaos,
)
from repro.sim.network import LoadParams
from repro.system.cosmos import CosmosSystem, QueryStatus

MIGRATE = ChaosConfig(seed=0, recovery=True, migrate=True)


def build_pair(fast_path=True):
    """0(src+user) - 1(proc) - 2 - 3(proc) - 4.

    The source and the user both sit on node 0, so the query lands on
    processor 1 (cost 8 vs 24) and the only migration target is 3 —
    every protocol timeline below is deterministic.
    """
    topo = Topology()
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    for u, v in edges:
        topo.add_edge(u, v, 1.0)
    tree = DisseminationTree(edges, {e: 1.0 for e in edges})
    system = CosmosSystem(
        tree, processor_nodes=[1, 3], topology=topo, fast_path=fast_path
    )
    system.add_source(
        StreamSchema("Temp", [Attribute("station", "int", 0, 9)], rate=1.0), 0
    )
    system.submit(
        parse_query("SELECT T.station FROM Temp [Now] T"),
        user_node=0,
        name="q",
    )
    return system


def inject(time, seq, station=3):
    return InjectEvent(
        time, "Temp", (("station", station),), seq=seq, sent=time
    )


def trace_kinds(vnet):
    return [line.split(" ", 1)[0] for line in vnet.trace.lines]


class TestModeValidation:
    def test_config_requires_recovery(self):
        with pytest.raises(ValueError):
            ChaosConfig(seed=0, migrate=True)

    def test_network_requires_recovery(self):
        with pytest.raises(ChaosExecutionError):
            VirtualNetwork(build=build_pair, migrate=True)


class TestInertness:
    def test_non_migrate_schedules_carry_no_probes(self):
        for config in (ChaosConfig(seed=0), ChaosConfig(seed=0, recovery=True)):
            events = generate_schedule(config).events
            assert not any(isinstance(e, MigrationEvent) for e in events)

    def test_migrate_schedules_carry_a_forced_rebalance(self):
        events = generate_schedule(MIGRATE).events
        probes = [e for e in events if isinstance(e, MigrationEvent)]
        assert probes and any(p.kind == "rebalance" for p in probes)
        assert any(p.kind == "scan" for p in probes)

    def test_non_migrate_digests_are_unchanged(self):
        # The pinned pre-migration digests: the load-management layer
        # must be byte-inert unless switched on.
        assert run_chaos(ChaosConfig(seed=0)).trace.digest() == "ce3e9e088b39"
        assert (
            run_chaos(ChaosConfig(seed=0, recovery=True)).trace.digest()
            == "259e9fa81b34"
        )

    def test_probe_without_load_state_is_inert(self):
        vnet = VirtualNetwork(build=build_pair, recovery=True)
        assert vnet.load is None
        vnet.execute([MigrationEvent(1.0, "scan")])
        assert vnet.trace.lines == ["migrate t=1 scan -> inert"]


class TestHappyPath:
    def test_rebalance_moves_the_group_with_zero_loss(self):
        vnet = VirtualNetwork(build=build_pair, recovery=True, migrate=True)
        vnet.execute(
            [
                inject(0.5, seq=0),
                MigrationEvent(1.0, "rebalance"),
                inject(2.0, seq=1),  # lands mid-quarantine
                inject(7.0, seq=2),  # lands after cutover
            ]
        )
        # t=1 start, t=3 drain (prepare_delay=2), t=6 cutover (+3).
        assert "migrate_start t=1 group=g0 n1->n3 quarantined [q]" in (
            vnet.trace.lines
        )
        assert "drain t=3 group=g0 n1->n3 chunks=2" in vnet.trace.lines
        assert "cutover t=6 group=g0 n1->n3 moved [q]" in vnet.trace.lines
        assert vnet.load.counters.migrations_started == 1
        assert vnet.load.counters.migrations_completed == 1
        assert vnet.load.counters.migrations_aborted == 0
        assert vnet.load.counters.state_chunks_sent == 2
        assert vnet.load.active == {}
        for system in vnet.systems:
            handle = system.query("q")
            assert handle.status is QueryStatus.ACTIVE
            assert handle.processor_node == 3
            # Zero loss: the mid-quarantine tuple was deferred by the
            # ordering stage and delivered after the resume.
            assert handle.result_count == 3

    def test_migration_counts_as_recovery_activity(self):
        vnet = VirtualNetwork(build=build_pair, recovery=True, migrate=True)
        vnet.execute([MigrationEvent(1.0, "rebalance")])
        assert vnet.last_recovery_time == 6.0


class TestTargetFailure:
    def test_retries_then_aborts_home_with_zero_loss(self):
        vnet = VirtualNetwork(build=build_pair, recovery=True, migrate=True)
        vnet.execute(
            [
                inject(0.5, seq=0),
                MigrationEvent(1.0, "rebalance"),
                inject(2.0, seq=1),
                FaultEvent(4.0, "processor", 3),  # target dies mid-drain
                inject(12.0, seq=2),
            ]
        )
        # Cutover attempt 1 at t=6 finds the target dead; capped
        # backoff retries at t=10 (+4) and t=18 (+8) exhaust
        # max_migrate_attempts=3 and the group aborts home.
        assert "migrate_retry t=6 group=g0 target=n3 attempt=2" in (
            vnet.trace.lines
        )
        assert "migrate_retry t=10 group=g0 target=n3 attempt=3" in (
            vnet.trace.lines
        )
        assert (
            "migrate_abort t=18 group=g0 n1->n3 target-lost resumed [q]"
            in vnet.trace.lines
        )
        assert vnet.load.counters.migrations_retried == 2
        assert vnet.load.counters.migrations_aborted == 1
        assert vnet.load.counters.migrations_completed == 0
        assert vnet.load.active == {}
        for system in vnet.systems:
            handle = system.query("q")
            assert handle.status is QueryStatus.ACTIVE
            assert handle.processor_node == 1  # back at the source
            assert handle.result_count == 3  # nothing lost in the abort


class TestSourceFailure:
    def test_drain_on_a_crashed_source_aborts(self):
        vnet = VirtualNetwork(build=build_pair, recovery=True, migrate=True)
        vnet.execute(
            [
                MigrationEvent(1.0, "rebalance"),
                FaultEvent(2.0, "processor", 1),  # source dies pre-drain
            ]
        )
        abort = next(
            line for line in vnet.trace.lines if line.startswith("migrate_abort")
        )
        assert "source-lost" in abort
        assert vnet.load.counters.migrations_aborted == 1
        assert vnet.load.counters.migrations_completed == 0
        # The detector-driven repair then re-homes the query off the
        # dead processor; the run ends healthy on the survivor.
        handle = vnet.primary.query("q")
        assert handle.status is QueryStatus.ACTIVE
        assert handle.processor_node == 3

    def test_repair_first_supersedes_the_migration(self):
        # Stretch the prepare window past the failure detector's
        # repair: by drain time the crash repair already re-homed the
        # group, so the move aborts as superseded (nothing to resume).
        vnet = VirtualNetwork(
            build=build_pair,
            recovery=True,
            migrate=True,
            load_params=LoadParams(prepare_delay=30.0),
        )
        vnet.execute(
            [
                MigrationEvent(1.0, "rebalance"),
                FaultEvent(2.0, "processor", 1),
            ]
        )
        abort = next(
            line for line in vnet.trace.lines if line.startswith("migrate_abort")
        )
        assert abort.endswith("superseded resumed [-]")
        assert vnet.load.counters.migrations_aborted == 1
        handle = vnet.primary.query("q")
        assert handle.status is QueryStatus.ACTIVE
        assert handle.processor_node == 3


class TestDoubleMigration:
    def test_second_probe_skips_the_in_flight_group(self):
        vnet = VirtualNetwork(build=build_pair, recovery=True, migrate=True)
        vnet.execute(
            [
                MigrationEvent(1.0, "rebalance"),
                MigrationEvent(1.5, "rebalance"),  # same group, still moving
            ]
        )
        assert "migrate_skip t=1.5 node=1 reason=in-flight" in vnet.trace.lines
        assert vnet.load.counters.migrations_started == 1
        assert vnet.load.counters.migrations_completed == 1


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_seeded_sweep_is_exact_and_migrates(self, seed):
        report = run_chaos(
            ChaosConfig(seed=seed, recovery=True, migrate=True)
        )
        assert report.ok, report.violations
        assert report.health["migrations_completed"] >= 1
        assert report.health["migrations_in_flight"] == 0

    def test_seed0_trace_conforms_to_the_extracted_machines(self):
        machines = extract_lifecycle(load_package(default_package_dir()))
        report = run_chaos(MIGRATE)
        assert report.ok, report.violations
        assert (
            conformance_violations(
                report.trace.render().splitlines(),
                machines,
                report.reliability,
                recovery=True,
                load=report.health,
            )
            == []
        )
