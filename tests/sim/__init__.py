"""Unit tests for the chaos simulation harness (:mod:`repro.sim`)."""
