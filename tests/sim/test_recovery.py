"""Recovery-mode chaos: self-healing runs under the exact delivery oracle."""

import pytest

from repro.overlay.topology import Topology
from repro.overlay.tree import DisseminationTree
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, StreamSchema
from repro.sim import (
    ChaosConfig,
    FaultEvent,
    InjectEvent,
    PunctuationEvent,
    VirtualNetwork,
    generate_schedule,
    run_chaos,
    run_schedule,
    shrink_failing_schedule,
)
from repro.system.cosmos import CosmosSystem, QueryStatus
from repro.system.reliability import heal_partition

RECOVERY = ChaosConfig(seed=0, recovery=True)


class TestScheduleAnnotations:
    def test_lossy_schedule_carries_no_transport_metadata(self):
        for event in generate_schedule(ChaosConfig(seed=0)).events:
            assert not isinstance(event, PunctuationEvent)
            if isinstance(event, InjectEvent):
                assert event.seq is None and event.sent is None

    def test_recovery_flag_does_not_perturb_the_lossy_draws(self):
        # Same seed, same times/streams/payloads — the recovery flag
        # only annotates; it must never shift the perturbation RNG.
        lossy = [
            (e.time, e.stream, e.payload, e.duplicate)
            for e in generate_schedule(ChaosConfig(seed=3)).events
            if isinstance(e, InjectEvent)
        ]
        recovery = [
            (e.time, e.stream, e.payload, e.duplicate)
            for e in generate_schedule(ChaosConfig(seed=3, recovery=True)).events
            if isinstance(e, InjectEvent)
        ]
        assert lossy == recovery

    def test_sequence_numbers_are_per_stream_and_gapless(self):
        from repro.sim import DropEvent

        events = generate_schedule(RECOVERY).events
        seen = {}
        for event in sorted(
            (
                e
                for e in events
                if isinstance(e, (InjectEvent, DropEvent))
                and getattr(e, "seq", None) is not None
                and not getattr(e, "duplicate", False)
            ),
            key=lambda e: e.sent,
        ):
            seen.setdefault(event.stream, []).append(event.seq)
        for stream, seqs in seen.items():
            assert seqs == list(range(len(seqs))), stream

    def test_punctuation_announces_each_streams_top_main_seq(self):
        events = generate_schedule(RECOVERY).events
        punct = [e for e in events if isinstance(e, PunctuationEvent)]
        assert {p.stream for p in punct} == {"Temp", "Humid"}
        for p in punct:
            assert p.time < RECOVERY.epilogue_start
            main_seqs = [
                e.seq
                for e in events
                if getattr(e, "seq", None) is not None
                and e.stream == p.stream
                and e.time < RECOVERY.epilogue_start
                and not isinstance(e, PunctuationEvent)
            ]
            assert p.top == max(main_seqs)


class TestRecoveryRuns:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_delivery_under_chaos(self, seed):
        report = run_chaos(ChaosConfig(seed=seed, recovery=True))
        assert report.ok, "\n".join(report.violations)
        assert report.reliability is not None
        # Every drop in the schedule was healed by a retransmission.
        assert report.reliability["retransmits"] >= report.counters.drops
        assert report.reliability["gaps_abandoned"] == 0

    def test_replay_is_byte_identical(self):
        a = run_chaos(RECOVERY)
        b = run_chaos(RECOVERY)
        assert a.trace.render() == b.trace.render()
        assert a.trace.digest() == b.trace.digest()

    def test_known_seed_digest_pinned(self):
        # Cross-process determinism canary (string-seeded RNGs, ordered
        # timers): a digest change means recovery replays broke.
        assert run_chaos(RECOVERY).trace.digest() == "259e9fa81b34"

    def test_crashes_are_detector_driven(self):
        report = run_chaos(RECOVERY)
        lines = report.trace.lines
        assert any("-> crashed" in line for line in lines)
        assert any(line.startswith("suspect ") for line in lines)
        assert any(
            line.startswith("repair ") and "-> applied" in line
            for line in lines
        )
        assert report.counters.faults_applied == RECOVERY.n_faults
        assert report.reliability["nodes_suspected"] == RECOVERY.n_faults

    def test_duplicates_are_suppressed_not_delivered(self):
        report = run_chaos(RECOVERY)
        assert (
            report.reliability["duplicates_suppressed"]
            == report.counters.duplicates
        )

    def test_convergence_time_precedes_the_epilogue(self):
        for seed in range(5):
            config = ChaosConfig(seed=seed, recovery=True)
            report = run_chaos(config)
            assert report.convergence_time is not None
            assert report.convergence_time < config.epilogue_start + 10.0

    def test_punctuation_heals_trailing_drops(self):
        # Seed 7's Temp stream loses its last two tuples; only the
        # punctuation NACK round can expose those gaps.
        report = run_chaos(ChaosConfig(seed=7, recovery=True))
        assert report.ok, "\n".join(report.violations)
        assert any(
            line.startswith("punct ") and "-> 2 gaps" in line
            for line in report.trace.lines
        )

    def test_report_render_names_recovery(self):
        rendered = run_chaos(RECOVERY).render()
        assert "recovery" in rendered
        assert "converged t=" in rendered


class TestRecoveryShrinking:
    def test_post_quiescence_fault_shrinks_to_itself(self):
        # A processor crash after quiescence violates the convergence
        # invariant (detector-driven repair moves the routing epoch);
        # ddmin must isolate exactly that event.
        config = ChaosConfig(seed=0, recovery=True)
        events = list(generate_schedule(config).events)
        rogue = FaultEvent(config.epilogue_start + 5.0, "processor", 0)
        events.append(rogue)
        events.sort(key=lambda e: e.time)
        assert not run_schedule(config, events).ok
        minimal = shrink_failing_schedule(config, events, max_runs=150)
        assert minimal == [rogue]

    def test_shrunken_sub_schedules_stay_consistent(self):
        # Deleting arbitrary events must not wedge the transport: a
        # NACK for a send the shrinker cut is abandoned immediately,
        # and the oracle reconstructs its expectation from the same
        # event list, so sub-schedules remain self-consistent.
        config = ChaosConfig(seed=0, recovery=True)
        events = generate_schedule(config).events
        report = run_schedule(config, events[::2])
        assert isinstance(report.ok, bool)  # terminated, verdict either way


def build_chain(fast_path=True):
    """0(proc) - 1(src) - 2 - 3(user): removing 2 strands the user."""
    topo = Topology()
    edges = [(0, 1), (1, 2), (2, 3)]
    for u, v in edges:
        topo.add_edge(u, v, 1.0)
    tree = DisseminationTree(edges, {e: 1.0 for e in edges})
    system = CosmosSystem(
        tree, processor_nodes=[0], topology=topo, fast_path=fast_path
    )
    system.add_source(
        StreamSchema("Temp", [Attribute("station", "int", 0, 9)], rate=1.0), 1
    )
    system.submit(
        parse_query("SELECT T.station FROM Temp [Now] T"),
        user_node=3,
        name="q",
    )
    return system


class TestDegradedMode:
    def test_partition_degrades_instead_of_refusing(self):
        vnet = VirtualNetwork(build=build_chain, recovery=True)
        # Crash the cut vertex; the sweep suspects it, the repair finds
        # the survivors partitioned and quarantines the stranded query.
        vnet.execute([FaultEvent(1.0, "broker", 2)])
        assert vnet.counters.faults_applied == 1
        assert vnet.counters.faults_refused == 0
        assert any("-> degraded [q]" in line for line in vnet.trace.lines)
        for system in vnet.systems:
            assert system.query("q").status is QueryStatus.DEGRADED
        assert vnet.state.counters.queries_quarantined == 1

    def test_degraded_query_resumes_on_heal(self):
        vnet = VirtualNetwork(build=build_chain, recovery=True)
        vnet.execute([FaultEvent(1.0, "broker", 2)])
        for system in vnet.systems:
            system.topology.add_edge(1, 3, 1.0)
            assert heal_partition(system) == ["q"]
            assert system.query("q").status is QueryStatus.ACTIVE
