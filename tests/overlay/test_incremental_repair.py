"""Incremental spanning-tree repair equals the full MST recompute.

:class:`repro.overlay.optimizer.IncrementalOverlay` repairs the
dissemination tree locally on churn — join attaches through the cut
property plus edge-insertion improvements, leave reconnects the
orphaned fragments through cached neighbour candidates, re-weight
re-audits the affected cut.  The invariant these properties pin down:
after *any* random churn sequence the maintained tree is a spanning
tree of the surviving topology whose total weight equals a from-scratch
:meth:`Topology.minimum_spanning_tree_edges` recompute (MSTs may differ
edge-wise only under weight ties; Euclidean BRITE weights make ties
measure-zero, so we compare total weight).

A leave that would disconnect the *physical* topology is the one
documented non-local case: the optimizer raises ``TopologyError`` (the
reliability layer owns partition recovery), so churn sequences precheck
connectivity, mirroring what the membership layer guarantees.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.optimizer import IncrementalOverlay
from repro.overlay.topology import Topology, barabasi_albert, edge_key

seeds = st.integers(min_value=0, max_value=10_000)


def still_connected(topology: Topology, victim) -> bool:
    """Would the physical topology stay connected without ``victim``?"""
    survivors = [n for n in topology.nodes if n != victim]
    if not survivors:
        return False
    seen = {survivors[0]}
    frontier = [survivors[0]]
    while frontier:
        node = frontier.pop()
        for other in sorted(topology.neighbors(node)):
            if other != victim and other not in seen:
                seen.add(other)
                frontier.append(other)
    return len(seen) == len(survivors)


def assert_matches_recompute(overlay: IncrementalOverlay) -> None:
    """Spanning tree + exact Kruskal weight, checked from scratch."""
    topology = overlay.topology
    edges = overlay.tree_edges
    assert len(edges) == len(topology) - 1
    tree = overlay.tree
    assert sorted(tree.nodes) == topology.nodes
    mst_edges = topology.minimum_spanning_tree_edges()
    full_weight = sum(topology.weights[e] for e in mst_edges)
    assert abs(overlay.total_weight() - full_weight) < 1e-6


class TestIncrementalRepairProperties:
    @given(seeds, st.integers(min_value=6, max_value=25), st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_churn_matches_full_recompute(self, seed, n, data):
        """join/leave/re-weight churn in any order: weight-exact MST."""
        rng = random.Random(seed)
        topology = barabasi_albert(n, 2, rng)
        overlay = IncrementalOverlay(topology)
        next_id = n
        n_events = data.draw(st.integers(min_value=1, max_value=12),
                             label="n_events")
        applied = 0
        for index in range(n_events):
            nodes = topology.nodes
            choices = ["join", "reweight"]
            if len(nodes) > 4:
                choices.append("leave")
            op = data.draw(st.sampled_from(choices), label=f"op{index}")
            if op == "join":
                degree = data.draw(st.integers(min_value=1, max_value=3),
                                   label=f"deg{index}")
                targets = data.draw(
                    st.sets(st.sampled_from(nodes), min_size=degree,
                            max_size=degree),
                    label=f"targets{index}",
                )
                links = {
                    target: float(data.draw(st.integers(1, 1000),
                                            label=f"w{index}-{target}"))
                    for target in sorted(targets)
                }
                overlay.join(next_id, links)
                next_id += 1
                applied += 1
            elif op == "leave":
                victim = data.draw(st.sampled_from(nodes), label=f"leave{index}")
                if not still_connected(topology, victim):
                    continue  # partition recovery is the reliability layer's job
                overlay.leave(victim)
                applied += 1
            else:
                edge = data.draw(st.sampled_from(sorted(topology.weights)),
                                 label=f"edge{index}")
                weight = float(data.draw(st.integers(1, 1000),
                                         label=f"rw{index}"))
                overlay.reweight(*edge, weight)
                applied += 1
            assert_matches_recompute(overlay)
        # Every applied event was serviced by a local repair or a
        # (counted) fallback rebuild — nothing happens silently.
        assert overlay.local_repairs == applied

    @given(seeds, st.integers(min_value=6, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_leave_then_rejoin_roundtrip(self, seed, n):
        """Every connectivity-safe leave followed by rejoining the same
        node with its old links lands back on a weight-exact MST."""
        rng = random.Random(seed)
        topology = barabasi_albert(n, 2, rng)
        overlay = IncrementalOverlay(topology)
        victims = [node for node in topology.nodes][:5]
        for victim in victims:
            if not still_connected(topology, victim):
                continue
            links = {
                other: topology.weight(victim, other)
                for other in sorted(topology.neighbors(victim))
            }
            overlay.leave(victim)
            assert_matches_recompute(overlay)
            # Survivors keep only surviving links.
            overlay.join(victim, links)
            assert_matches_recompute(overlay)

    @given(seeds, st.integers(min_value=6, max_value=20), st.data())
    @settings(max_examples=30, deadline=None)
    def test_reweight_storm_matches_recompute(self, seed, n, data):
        """Repeated re-weights of random links (tree and non-tree, up
        and down) never drift from the from-scratch MST weight."""
        rng = random.Random(seed)
        topology = barabasi_albert(n, 2, rng)
        overlay = IncrementalOverlay(topology)
        for index in range(data.draw(st.integers(1, 10), label="n_storm")):
            edge = data.draw(st.sampled_from(sorted(topology.weights)),
                             label=f"edge{index}")
            weight = float(data.draw(st.integers(1, 2000), label=f"w{index}"))
            overlay.reweight(*edge, weight)
            assert_matches_recompute(overlay)

    @given(seeds, st.integers(min_value=6, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_fallback_full_rebuild_is_exact(self, seed, n):
        """Even when the optimizer falls back to a full rebuild, the
        result is the exact MST (the counter just records the miss)."""
        rng = random.Random(seed)
        topology = barabasi_albert(n, 2, rng)
        overlay = IncrementalOverlay(topology)
        overlay._full_rebuild()
        assert overlay.full_rebuilds == 1
        assert_matches_recompute(overlay)
