"""Dissemination trees: structure checks, paths, subtrees, mutation."""

import random

import pytest

from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree, TreeError


class TestConstruction:
    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            DisseminationTree([(0, 1), (1, 2), (2, 0)])

    def test_disconnected_rejected(self):
        with pytest.raises(TreeError):
            DisseminationTree([(0, 1), (2, 3)], nodes=[0, 1, 2, 3, 4])

    def test_isolated_node_rejected(self):
        with pytest.raises(TreeError):
            DisseminationTree([(0, 1)], nodes=[0, 1, 2])

    def test_minimum_spanning_covers_topology(self, small_topology):
        tree = DisseminationTree.minimum_spanning(small_topology)
        assert sorted(tree.nodes) == sorted(small_topology.nodes)
        assert len(tree.edges) == len(small_topology) - 1

    def test_shortest_path_tree(self, small_topology):
        tree = DisseminationTree.shortest_path(small_topology, 0)
        assert len(tree.edges) == len(small_topology) - 1

    def test_default_weights(self):
        tree = DisseminationTree([(0, 1)])
        assert tree.weight(0, 1) == 1.0


class TestPaths:
    def test_path_endpoints(self, line_tree):
        assert line_tree.path(0, 4) == [0, 1, 2, 3, 4]
        assert line_tree.path(4, 0) == [4, 3, 2, 1, 0]

    def test_path_same_node(self, line_tree):
        assert line_tree.path(2, 2) == [2]

    def test_path_through_branch(self, star_tree):
        assert star_tree.path(1, 3) == [1, 0, 3]

    def test_path_edges(self, line_tree):
        assert line_tree.path_edges(1, 3) == [(1, 2), (2, 3)]

    def test_path_weight(self, line_tree):
        assert line_tree.path_weight(0, 4) == 4.0

    def test_next_hop(self, line_tree):
        assert line_tree.next_hop(0, 4) == 1

    def test_next_hop_same_node_raises(self, line_tree):
        with pytest.raises(TreeError):
            line_tree.next_hop(2, 2)

    def test_unknown_node_raises(self, line_tree):
        with pytest.raises(TreeError):
            line_tree.path(0, 99)

    def test_path_matches_bfs_on_random_tree(self, small_tree):
        # Cross-check the LCA path against edge-by-edge validity.
        rng = random.Random(0)
        nodes = small_tree.nodes
        for __ in range(30):
            a, b = rng.choice(nodes), rng.choice(nodes)
            path = small_tree.path(a, b)
            assert path[0] == a and path[-1] == b
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert v in small_tree.neighbors(u)


class TestComponents:
    def test_component_via(self, line_tree):
        assert line_tree.component_via(2, 3) == {3, 4}
        assert line_tree.component_via(2, 1) == {0, 1}

    def test_component_via_star(self, star_tree):
        assert star_tree.component_via(0, 1) == {1}
        assert star_tree.component_via(1, 0) == {0, 2, 3, 4}

    def test_component_via_non_neighbor(self, line_tree):
        with pytest.raises(TreeError):
            line_tree.component_via(0, 2)


class TestMutation:
    def test_edge_swap_valid(self, star_tree):
        # Move leaf 4 under leaf 1.
        swapped = star_tree.with_edge_swap((0, 4), (1, 4), 2.0)
        assert swapped.path(4, 0) == [4, 1, 0]
        assert swapped.weight(1, 4) == 2.0

    def test_edge_swap_invalid_reconnect(self, line_tree):
        # Removing (1,2) and adding (0,1) does not reconnect the halves.
        with pytest.raises(TreeError):
            line_tree.with_edge_swap((1, 2), (0, 1), 1.0)

    def test_edge_swap_unknown_edge(self, line_tree):
        with pytest.raises(TreeError):
            line_tree.with_edge_swap((0, 4), (1, 4), 1.0)

    def test_swap_leaves_original_untouched(self, star_tree):
        star_tree.with_edge_swap((0, 4), (1, 4), 2.0)
        assert star_tree.path(4, 0) == [4, 0]

    def test_remove_leaf(self, line_tree):
        components, forest = line_tree.remove_node(4)
        assert components == [{0, 1, 2, 3}]

    def test_remove_interior_splits(self, line_tree):
        components, forest = line_tree.remove_node(2)
        assert sorted(map(sorted, components)) == [[0, 1], [3, 4]]

    def test_remove_hub_creates_singletons(self, star_tree):
        components, __ = star_tree.remove_node(0)
        assert sorted(map(sorted, components)) == [[1], [2], [3], [4]]
