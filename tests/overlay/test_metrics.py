"""Link traffic accounting."""

from repro.overlay.metrics import LinkStats


class TestLinkStats:
    def test_record_and_usage(self):
        stats = LinkStats()
        stats.record(0, 1, 100.0)
        stats.record(1, 0, 50.0)  # same undirected link
        usage = stats.usage(0, 1)
        assert usage.messages == 2
        assert usage.bytes == 150.0

    def test_totals(self):
        stats = LinkStats()
        stats.record(0, 1, 10.0)
        stats.record(2, 3, 20.0, count=2)
        assert stats.total_messages() == 3
        assert stats.total_bytes() == 30.0
        assert stats.links_used == 2

    def test_weighted_cost(self):
        stats = LinkStats({(0, 1): 2.0})
        stats.record(0, 1, 10.0)
        stats.record(1, 2, 10.0)  # unknown weight defaults to 1.0
        assert stats.weighted_cost() == 30.0

    def test_unused_link_zero(self):
        stats = LinkStats()
        assert stats.usage(5, 6).messages == 0

    def test_merge(self):
        a = LinkStats({(0, 1): 2.0})
        a.record(0, 1, 10.0)
        b = LinkStats()
        b.record(0, 1, 5.0)
        b.record(1, 2, 1.0)
        a.merge(b)
        assert a.usage(0, 1).bytes == 15.0
        assert a.usage(1, 2).bytes == 1.0

    def test_reset(self):
        stats = LinkStats()
        stats.record(0, 1, 10.0)
        stats.reset()
        assert stats.total_bytes() == 0.0

    def test_as_dict(self):
        stats = LinkStats()
        stats.record(0, 1, 10.0)
        assert stats.as_dict() == {(0, 1): (1, 10.0)}


class TestWeightKeyCanonicalization:
    def test_reversed_init_keys_priced_correctly(self):
        # Weights supplied as (v, u) must still be found by
        # weighted_cost(), which looks up canonical edge keys.
        stats = LinkStats({(1, 0): 2.0})
        stats.record(0, 1, 10.0)
        assert stats.weighted_cost() == 20.0

    def test_merge_canonicalizes_reversed_keys(self):
        a = LinkStats()
        b = LinkStats({(3, 2): 4.0})
        a.merge(b)
        a.record(2, 3, 5.0)
        assert a.weighted_cost() == 20.0

    def test_existing_weight_wins_on_merge(self):
        a = LinkStats({(0, 1): 2.0})
        b = LinkStats({(1, 0): 9.0})
        a.merge(b)
        a.record(0, 1, 1.0)
        assert a.weighted_cost() == 2.0
