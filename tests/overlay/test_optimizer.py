"""Adaptive overlay tree reorganisation."""

import random

import pytest

from repro.overlay.optimizer import (
    OverlayOptimizer,
    hop_count_cost,
    weighted_traffic_cost,
)
from repro.overlay.topology import Topology, barabasi_albert
from repro.overlay.tree import DisseminationTree


def square_topology():
    """A square with a diagonal: 0-1-2-3-0 plus 0-2."""
    t = Topology()
    t.add_edge(0, 1, 1.0)
    t.add_edge(1, 2, 1.0)
    t.add_edge(2, 3, 1.0)
    t.add_edge(0, 3, 1.0)
    t.add_edge(0, 2, 1.5)
    return t


class TestCostEvaluation:
    def test_link_flows_follow_paths(self, line_tree):
        opt = OverlayOptimizer(Topology())
        flows = opt.link_flows(line_tree, [(0, 2, 3.0)])
        assert flows == {(0, 1): 3.0, (1, 2): 3.0}

    def test_flows_accumulate(self, line_tree):
        opt = OverlayOptimizer(Topology())
        flows = opt.link_flows(line_tree, [(0, 2, 1.0), (1, 3, 2.0)])
        assert flows[(1, 2)] == 3.0

    def test_zero_rate_ignored(self, line_tree):
        opt = OverlayOptimizer(Topology())
        assert opt.link_flows(line_tree, [(0, 2, 0.0)]) == {}

    def test_tree_cost_weighted(self, line_tree):
        opt = OverlayOptimizer(Topology(), cost_function=weighted_traffic_cost)
        cost = opt.tree_cost(line_tree, [(0, 4, 2.0)])
        assert cost == 8.0  # 4 unit links x flow 2

    def test_hop_count_cost_function(self, line_tree):
        opt = OverlayOptimizer(Topology(), cost_function=hop_count_cost)
        assert opt.tree_cost(line_tree, [(0, 4, 2.0)]) == 8.0


class TestOptimization:
    def test_improves_bad_tree(self):
        topo = square_topology()
        # A path tree 1-0-3-2 forces 1->2 traffic around three hops.
        tree = DisseminationTree(
            [(0, 1), (0, 3), (2, 3)], {(0, 1): 1.0, (0, 3): 1.0, (2, 3): 1.0}
        )
        demands = [(1, 2, 10.0)]
        optimizer = OverlayOptimizer(topo)
        improved, report = optimizer.optimize(tree, demands)
        assert report.final_cost < report.initial_cost
        assert report.swaps >= 1

    def test_optimal_tree_untouched(self):
        topo = square_topology()
        tree = DisseminationTree(
            [(0, 1), (1, 2), (2, 3)], {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0}
        )
        optimizer = OverlayOptimizer(topo)
        improved, report = optimizer.optimize(tree, [(0, 1, 5.0)])
        assert report.swaps == 0
        assert report.improvement == 0.0

    def test_swaps_only_use_topology_edges(self):
        topo = square_topology()
        tree = DisseminationTree.minimum_spanning(topo)
        optimizer = OverlayOptimizer(topo)
        demands = [(0, 2, 5.0), (1, 3, 5.0)]
        improved, __ = optimizer.optimize(tree, demands)
        for u, v in improved.edges:
            assert topo.has_edge(u, v)

    def test_result_is_valid_tree(self):
        rng = random.Random(11)
        topo = barabasi_albert(40, 2, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        demands = [
            (rng.randrange(40), rng.randrange(40), rng.uniform(1, 5))
            for __ in range(15)
        ]
        optimizer = OverlayOptimizer(topo)
        improved, report = optimizer.optimize(tree, demands, max_rounds=4)
        assert len(improved.edges) == len(tree.edges)
        assert report.final_cost <= report.initial_cost

    def test_max_degree_respected(self):
        rng = random.Random(13)
        topo = barabasi_albert(25, 2, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        cap = max(tree.degree(n) for n in tree.nodes)
        demands = [(rng.randrange(25), rng.randrange(25), 1.0) for __ in range(10)]
        optimizer = OverlayOptimizer(topo, max_degree=cap)
        improved, __ = optimizer.optimize(tree, demands, max_rounds=3)
        assert max(improved.degree(n) for n in improved.nodes) <= cap + 1

    def test_report_improvement_fraction(self):
        topo = square_topology()
        tree = DisseminationTree(
            [(0, 1), (0, 3), (2, 3)], {(0, 1): 1.0, (0, 3): 1.0, (2, 3): 1.0}
        )
        optimizer = OverlayOptimizer(topo)
        __, report = optimizer.optimize(tree, [(1, 2, 10.0)])
        assert 0.0 < report.improvement <= 1.0
