"""Topology construction, generators, shortest paths, MST."""

import math
import random

import pytest

from repro.overlay.topology import (
    Topology,
    TopologyError,
    barabasi_albert,
    edge_key,
    waxman,
)


class TestTopology:
    def test_add_edge_with_explicit_weight(self):
        t = Topology()
        t.add_edge(0, 1, 5.0)
        assert t.weight(0, 1) == 5.0
        assert t.weight(1, 0) == 5.0

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_edge(1, 1)

    def test_distance_from_positions(self):
        t = Topology()
        t.add_node(0, (0.0, 0.0))
        t.add_node(1, (3.0, 4.0))
        assert t.distance(0, 1) == 5.0

    def test_default_weight_is_distance(self):
        t = Topology()
        t.add_node(0, (0.0, 0.0))
        t.add_node(1, (3.0, 4.0))
        t.add_edge(0, 1)
        assert t.weight(0, 1) == 5.0

    def test_unknown_edge_raises(self):
        t = Topology()
        t.add_edge(0, 1)
        with pytest.raises(TopologyError):
            t.weight(0, 2)

    def test_neighbors(self):
        t = Topology()
        t.add_edge(0, 1)
        t.add_edge(0, 2)
        assert t.neighbors(0) == {1, 2}
        assert t.degree(0) == 2

    def test_connectivity(self):
        t = Topology()
        t.add_edge(0, 1)
        t.add_node(2)
        assert not t.is_connected()
        t.add_edge(1, 2)
        assert t.is_connected()

    def test_edge_key_canonical(self):
        assert edge_key(5, 2) == (2, 5)


class TestShortestPaths:
    def _triangle(self):
        t = Topology()
        t.add_edge(0, 1, 1.0)
        t.add_edge(1, 2, 1.0)
        t.add_edge(0, 2, 5.0)
        return t

    def test_dijkstra_prefers_cheap_path(self):
        dist = self._triangle().shortest_paths(0)
        assert dist[2] == 2.0

    def test_shortest_path_tree_parents(self):
        parent = self._triangle().shortest_path_tree(0)
        assert parent[2] == 1
        assert parent[1] == 0

    def test_unknown_source(self):
        with pytest.raises(TopologyError):
            self._triangle().shortest_paths(99)


class TestMST:
    def test_mst_size(self):
        topo = barabasi_albert(50, 2, random.Random(0))
        assert len(topo.minimum_spanning_tree_edges()) == 49

    def test_mst_picks_cheapest(self):
        t = Topology()
        t.add_edge(0, 1, 1.0)
        t.add_edge(1, 2, 1.0)
        t.add_edge(0, 2, 10.0)
        assert sorted(t.minimum_spanning_tree_edges()) == [(0, 1), (1, 2)]

    def test_disconnected_raises(self):
        t = Topology()
        t.add_edge(0, 1)
        t.add_node(5)
        with pytest.raises(TopologyError):
            t.minimum_spanning_tree_edges()


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        topo = barabasi_albert(100, 2, random.Random(1))
        assert len(topo) == 100
        # clique(3) + 2 per newcomer
        assert len(topo.edges) == 3 + 2 * 97

    def test_connected(self):
        assert barabasi_albert(200, 2, random.Random(2)).is_connected()

    def test_seed_reproducible(self):
        a = barabasi_albert(60, 2, random.Random(7))
        b = barabasi_albert(60, 2, random.Random(7))
        assert a.edges == b.edges

    def test_power_law_hubs_exist(self):
        topo = barabasi_albert(300, 2, random.Random(3))
        degrees = sorted((topo.degree(n) for n in topo.nodes), reverse=True)
        # Preferential attachment concentrates degree in a few hubs.
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_too_few_nodes_rejected(self):
        with pytest.raises(TopologyError):
            barabasi_albert(2, 2)

    def test_bad_m_rejected(self):
        with pytest.raises(TopologyError):
            barabasi_albert(10, 0)


class TestWaxman:
    def test_connected_after_patching(self):
        assert waxman(80, rng=random.Random(5)).is_connected()

    def test_seed_reproducible(self):
        a = waxman(50, rng=random.Random(9))
        b = waxman(50, rng=random.Random(9))
        assert a.edges == b.edges

    def test_higher_alpha_denser(self):
        sparse = waxman(60, alpha=0.05, rng=random.Random(4))
        dense = waxman(60, alpha=0.5, rng=random.Random(4))
        assert len(dense.edges) > len(sparse.edges)
