"""Select, project, symmetric window join (Lemma 1) and aggregation."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cql.predicates import Comparison, Conjunction, JoinPredicate
from repro.spe.operators import (
    AggregateSpec,
    GroupedAggregate,
    JoinInput,
    Project,
    Select,
    SymmetricWindowJoin,
    qualify,
)


def cond(*atoms):
    return Conjunction.from_atoms(atoms)


class TestQualify:
    def test_prefixes_attributes(self):
        binding = qualify("O", Datagram("OpenAuction", {"itemID": 1}, 5.0))
        assert binding == {"O.itemID": 1, "O.timestamp": 5.0}

    def test_explicit_timestamp_kept(self):
        binding = qualify("O", Datagram("S", {"timestamp": 3.0}, 5.0))
        assert binding["O.timestamp"] == 3.0


class TestSelectProject:
    def test_select_passes_and_blocks(self):
        sel = Select(cond(Comparison("S.a", ">", 1)))
        assert sel.process({"S.a": 2}) == {"S.a": 2}
        assert sel.process({"S.a": 0}) is None

    def test_project_renames(self):
        proj = Project({"out": "S.a"})
        assert proj.process({"S.a": 7, "S.b": 8}) == {"out": 7}

    def test_project_missing_input_raises(self):
        with pytest.raises(KeyError):
            Project({"x": "S.missing"}).process({"S.a": 1})


class TestSymmetricJoin:
    def _join(self, t1=10.0, t2=0.0):
        return SymmetricWindowJoin(
            [JoinInput("A", t1), JoinInput("B", t2)]
        )

    def test_pair_within_windows(self):
        join = self._join(t1=10, t2=0)
        assert join.process("A", Datagram("SA", {"x": 1}, 0.0)) == []
        results = join.process("B", Datagram("SB", {"y": 2}, 5.0))
        assert len(results) == 1
        assert results[0]["A.x"] == 1 and results[0]["B.y"] == 2

    def test_lemma1_bounds(self):
        # -T1 <= t1 - t2 <= T2 with T1=10, T2=0.
        join = self._join(t1=10, t2=0)
        join.process("A", Datagram("SA", {"x": 1}, 0.0))
        # t1 - t2 = -11 violates the lower bound.
        assert join.process("B", Datagram("SB", {"y": 2}, 11.0)) == []

    def test_lemma1_upper_bound(self):
        # B arrives first; A joining later needs t1 - t2 <= T2 = 4.
        join = self._join(t1=0, t2=4)
        join.process("B", Datagram("SB", {"y": 2}, 0.0))
        assert len(join.process("A", Datagram("SA", {"x": 1}, 4.0))) == 1
        join2 = self._join(t1=0, t2=4)
        join2.process("B", Datagram("SB", {"y": 2}, 0.0))
        assert join2.process("A", Datagram("SA", {"x": 1}, 5.0)) == []

    def test_each_pair_produced_once(self):
        join = self._join(t1=100, t2=100)
        outs = []
        outs += join.process("A", Datagram("SA", {"x": 1}, 0.0))
        outs += join.process("B", Datagram("SB", {"y": 1}, 1.0))
        outs += join.process("A", Datagram("SA", {"x": 2}, 2.0))
        outs += join.process("B", Datagram("SB", {"y": 2}, 3.0))
        assert len(outs) == 1 + 1 + 2  # pairs: (1,1); (2,1); (1,2),(2,2)

    def test_three_way_join(self):
        join = SymmetricWindowJoin(
            [JoinInput("A", 10), JoinInput("B", 10), JoinInput("C", 10)]
        )
        join.process("A", Datagram("SA", {"x": 1}, 0.0))
        join.process("B", Datagram("SB", {"y": 2}, 1.0))
        results = join.process("C", Datagram("SC", {"z": 3}, 2.0))
        assert len(results) == 1
        assert set(results[0]) >= {"A.x", "B.y", "C.z"}

    def test_single_input_passthrough(self):
        join = SymmetricWindowJoin([JoinInput("S", 10)])
        results = join.process("S", Datagram("X", {"a": 1}, 0.0))
        assert results == [{"S.a": 1, "S.timestamp": 0.0}]

    def test_unknown_input_raises(self):
        with pytest.raises(KeyError):
            self._join().process("Z", Datagram("SZ", {}, 0.0))

    def test_now_window_same_instant_only(self):
        join = self._join(t1=0, t2=0)
        join.process("A", Datagram("SA", {"x": 1}, 5.0))
        assert len(join.process("B", Datagram("SB", {"y": 1}, 5.0))) == 1
        assert join.process("B", Datagram("SB", {"y": 2}, 6.0)) == []


class TestGroupedAggregate:
    def _agg(self, window=100.0, pre=None):
        return GroupedAggregate(
            "S",
            window,
            ["S.station"],
            [
                AggregateSpec("avg", "S.temp", "avg_temp"),
                AggregateSpec("count", None, "n"),
            ],
            pre_filter=pre,
        )

    def test_emits_updated_group_row(self):
        agg = self._agg()
        r1 = agg.process(Datagram("S", {"station": 1, "temp": 10.0}, 0.0))
        assert r1 == [{"S.station": 1, "avg_temp": 10.0, "n": 1}]
        r2 = agg.process(Datagram("S", {"station": 1, "temp": 20.0}, 1.0))
        assert r2 == [{"S.station": 1, "avg_temp": 15.0, "n": 2}]

    def test_groups_independent(self):
        agg = self._agg()
        agg.process(Datagram("S", {"station": 1, "temp": 10.0}, 0.0))
        r = agg.process(Datagram("S", {"station": 2, "temp": 30.0}, 1.0))
        assert r == [{"S.station": 2, "avg_temp": 30.0, "n": 1}]

    def test_window_expiry_affects_aggregate(self):
        agg = self._agg(window=5.0)
        agg.process(Datagram("S", {"station": 1, "temp": 10.0}, 0.0))
        r = agg.process(Datagram("S", {"station": 1, "temp": 30.0}, 10.0))
        assert r == [{"S.station": 1, "avg_temp": 30.0, "n": 1}]

    def test_pre_filter_excludes_from_window(self):
        pre = cond(Comparison("S.temp", ">", 0))
        agg = self._agg(pre=pre)
        assert agg.process(Datagram("S", {"station": 1, "temp": -5.0}, 0.0)) == []
        r = agg.process(Datagram("S", {"station": 1, "temp": 10.0}, 1.0))
        assert r[0]["n"] == 1  # the filtered tuple never entered

    def test_min_max_sum(self):
        agg = GroupedAggregate(
            "S",
            100.0,
            [],
            [
                AggregateSpec("min", "S.v", "lo"),
                AggregateSpec("max", "S.v", "hi"),
                AggregateSpec("sum", "S.v", "total"),
            ],
        )
        agg.process(Datagram("S", {"v": 3}, 0.0))
        r = agg.process(Datagram("S", {"v": 7}, 1.0))
        assert r == [{"lo": 3, "hi": 7, "total": 10}]
