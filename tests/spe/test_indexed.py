"""The hash-indexed join: identical semantics, different engine.

The paper allows heterogeneous SPEs behind the wrapper boundary; the
indexed engine is our second implementation.  Tests run it
differentially against the nested-loop join.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbn.datagram import Datagram
from repro.cql.parser import parse_query
from repro.cql.predicates import Conjunction, JoinPredicate
from repro.spe.engine import EngineError, StreamProcessingEngine
from repro.spe.indexed import (
    IndexedSymmetricJoin,
    IndexError_,
    equijoin_key_pairs,
    _HashedWindow,
)
from repro.spe.operators import JoinInput, SymmetricWindowJoin
from repro.workload.auction import TABLE1_Q3, auction_catalog


class TestHashedWindow:
    def test_insert_and_probe(self):
        window = _HashedWindow(100.0, ["k"])
        window.insert(Datagram("S", {"k": 1, "v": "a"}, 0.0))
        window.insert(Datagram("S", {"k": 2, "v": "b"}, 1.0))
        assert [d.payload["v"] for d in window.probe((1,))] == ["a"]
        assert window.probe((9,)) == []

    def test_expiry_cleans_buckets(self):
        window = _HashedWindow(5.0, ["k"])
        window.insert(Datagram("S", {"k": 1}, 0.0))
        window.expire(10.0)
        assert window.probe((1,)) == []
        assert len(window) == 0

    def test_missing_key_attribute_skipped(self):
        window = _HashedWindow(5.0, ["k"])
        window.insert(Datagram("S", {"other": 1}, 0.0))
        assert len(window) == 0


class TestIndexedJoin:
    def test_needs_key_pairs(self):
        with pytest.raises(IndexError_):
            IndexedSymmetricJoin(JoinInput("A", 1), JoinInput("B", 1), [])

    def test_basic_equijoin(self):
        join = IndexedSymmetricJoin(
            JoinInput("A", 100), JoinInput("B", 100), [("k", "k")]
        )
        join.process("A", Datagram("SA", {"k": 1, "x": 10}, 0.0))
        results = join.process("B", Datagram("SB", {"k": 1, "y": 20}, 1.0))
        assert len(results) == 1
        assert results[0]["A.x"] == 10 and results[0]["B.y"] == 20

    def test_key_mismatch_no_result(self):
        join = IndexedSymmetricJoin(
            JoinInput("A", 100), JoinInput("B", 100), [("k", "k")]
        )
        join.process("A", Datagram("SA", {"k": 1}, 0.0))
        assert join.process("B", Datagram("SB", {"k": 2}, 1.0)) == []

    def test_window_expiry_respected(self):
        join = IndexedSymmetricJoin(
            JoinInput("A", 10), JoinInput("B", 0), [("k", "k")]
        )
        join.process("A", Datagram("SA", {"k": 1}, 0.0))
        assert len(join.process("B", Datagram("SB", {"k": 1}, 10.0))) == 1
        join2 = IndexedSymmetricJoin(
            JoinInput("A", 10), JoinInput("B", 0), [("k", "k")]
        )
        join2.process("A", Datagram("SA", {"k": 1}, 0.0))
        assert join2.process("B", Datagram("SB", {"k": 1}, 11.0)) == []

    def test_unknown_qualifier(self):
        join = IndexedSymmetricJoin(
            JoinInput("A", 1), JoinInput("B", 1), [("k", "k")]
        )
        with pytest.raises(KeyError):
            join.process("Z", Datagram("SZ", {"k": 1}, 0.0))


class TestKeyPairExtraction:
    def test_extracts_cross_links(self):
        predicate = Conjunction.from_atoms(
            [JoinPredicate("A.k", "B.k"), JoinPredicate("A.x", "B.y")]
        )
        assert equijoin_key_pairs(predicate, "A", "B") == [("k", "k"), ("x", "y")]

    def test_ignores_internal_links(self):
        predicate = Conjunction.from_atoms([JoinPredicate("A.x", "A.y")])
        assert equijoin_key_pairs(predicate, "A", "B") == []

    def test_orientation_independent(self):
        predicate = Conjunction.from_atoms([JoinPredicate("B.y", "A.x")])
        assert equijoin_key_pairs(predicate, "A", "B") == [("x", "y")]


def _random_feed(rng, n):
    feed = []
    t = 0.0
    for __ in range(n):
        t += rng.uniform(0.0, 2.0)
        stream = rng.choice(["A", "B"])
        feed.append((stream, Datagram(stream, {"k": rng.randrange(4), "v": rng.random()}, t)))
    return feed


class TestDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_nested_join(self, seed):
        rng = random.Random(seed)
        t_a = rng.choice([0.0, 1.0, 5.0, 50.0])
        t_b = rng.choice([0.0, 1.0, 5.0, 50.0])
        nested = SymmetricWindowJoin([JoinInput("A", t_a), JoinInput("B", t_b)])
        indexed = IndexedSymmetricJoin(
            JoinInput("A", t_a), JoinInput("B", t_b), [("k", "k")]
        )
        link = Conjunction.from_atoms([JoinPredicate("A.k", "B.k")])
        for stream, datagram in _random_feed(rng, 60):
            nested_out = [
                b for b in nested.process(stream, datagram) if link.evaluate(b)
            ]
            indexed_out = indexed.process(stream, datagram)
            key = lambda b: sorted(b.items())
            assert sorted(map(key, nested_out)) == sorted(map(key, indexed_out))


class TestEngineIntegration:
    def test_indexed_engine_equals_nested_engine(self):
        catalog = auction_catalog()
        rng = random.Random(4)
        feed = []
        for item in range(60):
            open_ts = item * 120.0
            close_ts = open_ts + rng.expovariate(1.0 / (4 * 3600.0))
            feed.append(
                Datagram(
                    "OpenAuction",
                    {"itemID": item % 10, "sellerID": 1, "start_price": 2.0,
                     "timestamp": open_ts},
                    open_ts,
                )
            )
            feed.append(
                Datagram(
                    "ClosedAuction",
                    {"itemID": item % 10, "buyerID": 2, "timestamp": close_ts},
                    close_ts,
                )
            )
        feed.sort(key=lambda d: d.timestamp)

        def run(strategy):
            spe = StreamProcessingEngine(catalog, join_strategy=strategy)
            spe.register(parse_query(TABLE1_Q3), "q3")
            out = []
            for datagram in feed:
                out.extend(r.datagram for r in spe.push(datagram))
            return sorted(
                (d.timestamp, tuple(sorted(d.payload.items()))) for d in out
            )

        assert run("indexed") == run("nested")
        assert len(run("indexed")) > 0

    def test_bad_strategy_rejected(self):
        with pytest.raises(EngineError):
            StreamProcessingEngine(auction_catalog(), join_strategy="quantum")

    def test_single_stream_unaffected(self):
        catalog = auction_catalog()
        spe = StreamProcessingEngine(catalog, join_strategy="indexed")
        spe.register(parse_query("SELECT O.itemID FROM OpenAuction O"), "q")
        results = spe.push(
            Datagram(
                "OpenAuction",
                {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
                0.0,
            )
        )
        assert len(results) == 1

    def test_mixed_engine_processors_agree(self, line_tree):
        """Heterogeneous SPEs on different processors (section 2)."""
        from repro.system.node import Processor

        catalog = auction_catalog()
        results = {}
        for strategy in ("nested", "indexed"):
            proc = Processor(1, catalog, join_strategy=strategy)
            proc.accept(parse_query(TABLE1_Q3), name="q3")
            out = []
            out.extend(
                proc.on_source_data(
                    Datagram(
                        "OpenAuction",
                        {"itemID": 1, "sellerID": 1, "start_price": 1.0,
                         "timestamp": 0.0},
                        0.0,
                    )
                )
            )
            out.extend(
                proc.on_source_data(
                    Datagram(
                        "ClosedAuction",
                        {"itemID": 1, "buyerID": 2, "timestamp": 3600.0},
                        3600.0,
                    )
                )
            )
            results[strategy] = [
                tuple(sorted(d.payload.items())) for d in out
            ]
        assert results["nested"] == results["indexed"]
        assert len(results["nested"]) == 1
