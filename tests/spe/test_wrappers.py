"""Data/query wrappers — the pluggable-SPE boundary."""

from repro.cbn.datagram import Datagram
from repro.cql.parser import parse_query
from repro.spe.wrappers import (
    IdentityDataWrapper,
    IdentityQueryWrapper,
    ListDataWrapper,
    TextQueryWrapper,
)


class TestIdentityWrappers:
    def test_data_roundtrip(self):
        wrapper = IdentityDataWrapper()
        d = Datagram("S", {"a": 1}, 2.0)
        assert wrapper.from_engine(wrapper.to_engine(d)) == d

    def test_query_roundtrip(self):
        wrapper = IdentityQueryWrapper()
        q = parse_query("SELECT S.a FROM S")
        assert wrapper.from_engine(wrapper.to_engine(q)) is q


class TestTextQueryWrapper:
    def test_roundtrip_preserves_structure(self):
        wrapper = TextQueryWrapper()
        q = parse_query(
            "SELECT O.* FROM OpenAuction [Range 3 Hour] O, "
            "ClosedAuction [Now] C WHERE O.itemID = C.itemID"
        )
        text = wrapper.to_engine(q)
        assert isinstance(text, str)
        back = wrapper.from_engine(text)
        assert len(back.streams) == 2
        assert back.streams[0].window.size == 3 * 3600

    def test_roundtrip_predicate(self):
        wrapper = TextQueryWrapper()
        q = parse_query("SELECT S.a FROM S WHERE S.a >= 1 AND S.a <= 5")
        back = wrapper.from_engine(wrapper.to_engine(q))
        assert back.predicate == q.predicate


class TestListDataWrapper:
    def test_roundtrip(self):
        wrapper = ListDataWrapper(["a", "b"])
        d = Datagram("S", {"a": 1, "b": 2}, 3.0)
        stream, ts, values = wrapper.to_engine(d)
        assert (stream, ts, values) == ("S", 3.0, [1, 2])
        assert wrapper.from_engine((stream, ts, values)) == d

    def test_missing_attributes_become_none(self):
        wrapper = ListDataWrapper(["a", "b"])
        __, __, values = wrapper.to_engine(Datagram("S", {"a": 1}, 0.0))
        assert values == [1, None]

    def test_none_dropped_on_return(self):
        wrapper = ListDataWrapper(["a", "b"])
        d = wrapper.from_engine(("S", 0.0, [1, None]))
        assert dict(d.payload) == {"a": 1}
