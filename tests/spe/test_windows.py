"""Sliding window buffers."""

import math

import pytest

from repro.cbn.datagram import Datagram
from repro.spe.windows import WindowBuffer, WindowError


def dg(ts, **payload):
    return Datagram("S", payload or {"v": ts}, ts)


class TestInsertion:
    def test_in_order_accepted(self):
        buf = WindowBuffer(10)
        buf.insert(dg(1))
        buf.insert(dg(1))  # equal timestamps fine
        buf.insert(dg(2))
        assert len(buf) == 3

    def test_out_of_order_rejected(self):
        buf = WindowBuffer(10)
        buf.insert(dg(5))
        with pytest.raises(WindowError):
            buf.insert(dg(4))

    def test_negative_size_rejected(self):
        with pytest.raises(WindowError):
            WindowBuffer(-1)


class TestExpiry:
    def test_expire_drops_old(self):
        buf = WindowBuffer(10)
        buf.insert(dg(0))
        buf.insert(dg(5))
        expired = buf.expire(12)
        assert [d.timestamp for d in expired] == [0]
        assert [d.timestamp for d in buf] == [5]

    def test_boundary_tuple_stays(self):
        # At now=10 with size 10, the ts=0 tuple is exactly on the edge.
        buf = WindowBuffer(10)
        buf.insert(dg(0))
        assert buf.expire(10) == []
        assert len(buf) == 1

    def test_now_window_keeps_only_same_instant(self):
        buf = WindowBuffer(0)
        buf.insert(dg(1))
        buf.insert(dg(2))
        buf.expire(2)
        assert [d.timestamp for d in buf] == [2]

    def test_unbounded_never_expires(self):
        buf = WindowBuffer(math.inf)
        buf.insert(dg(0))
        assert buf.expire(1e15) == []
        assert len(buf) == 1

    def test_contents_with_now_expires_first(self):
        buf = WindowBuffer(5)
        buf.insert(dg(0))
        buf.insert(dg(4))
        assert [d.timestamp for d in buf.contents(now=7)] == [4]
