"""The continuous query engine end to end."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.spe.engine import EngineError, StreamProcessingEngine, result_schema


@pytest.fixture
def catalog():
    return Catalog(
        [
            StreamSchema(
                "Temp",
                [
                    Attribute("station", "int", 0, 9),
                    Attribute("temp", "float", -20, 40),
                ],
                rate=1.0,
            ),
            StreamSchema(
                "Wind",
                [
                    Attribute("station", "int", 0, 9),
                    Attribute("speed", "float", 0, 50),
                ],
                rate=1.0,
            ),
        ]
    )


def temp(ts, station=1, value=20.0):
    return Datagram("Temp", {"station": station, "temp": value}, ts)


def wind(ts, station=1, speed=5.0):
    return Datagram("Wind", {"station": station, "speed": speed}, ts)


class TestRegistration:
    def test_register_validates(self, catalog):
        spe = StreamProcessingEngine(catalog)
        with pytest.raises(Exception):
            spe.register(parse_query("SELECT X.a FROM X"))

    def test_duplicate_name_rejected(self, catalog):
        spe = StreamProcessingEngine(catalog)
        q = parse_query("SELECT T.temp FROM Temp T")
        spe.register(q, "q")
        with pytest.raises(EngineError):
            spe.register(q, "q")

    def test_deregister(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "q")
        spe.deregister("q")
        assert spe.push(temp(0)) == []

    def test_deregister_unknown(self, catalog):
        with pytest.raises(EngineError):
            StreamProcessingEngine(catalog).deregister("zzz")

    def test_result_stream_default(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "q7")
        assert spe.result_stream_of("q7") == "q7:results"

    def test_aggregate_join_unsupported(self, catalog):
        spe = StreamProcessingEngine(catalog)
        q = parse_query(
            "SELECT AVG(T.temp) FROM Temp T, Wind W WHERE T.station = W.station"
        )
        with pytest.raises(EngineError):
            spe.register(q)


class TestSelectProject:
    def test_filtering(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T WHERE T.temp > 25"), "hot")
        assert spe.push(temp(0, value=20.0)) == []
        results = spe.push(temp(1, value=30.0))
        assert len(results) == 1
        assert dict(results[0].datagram.payload) == {"T.temp": 30.0}

    def test_result_stream_tagging(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "q", result_stream="out")
        results = spe.push(temp(0))
        assert results[0].datagram.stream == "out"

    def test_multiple_queries_same_stream(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "a")
        spe.register(parse_query("SELECT T.station FROM Temp T"), "b")
        results = spe.push(temp(0))
        assert {r.query_name for r in results} == {"a", "b"}

    def test_out_of_order_rejected(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "q")
        spe.push(temp(10))
        with pytest.raises(EngineError):
            spe.push(temp(5))


class TestJoin:
    def test_window_join(self, catalog):
        spe = StreamProcessingEngine(catalog)
        q = parse_query(
            "SELECT T.temp, W.speed FROM Temp [Range 10] T, Wind [Range 10] W "
            "WHERE T.station = W.station"
        )
        spe.register(q, "j")
        spe.push(temp(0, station=1))
        results = spe.push(wind(5, station=1))
        assert len(results) == 1
        payload = dict(results[0].datagram.payload)
        assert payload == {"T.temp": 20.0, "W.speed": 5.0}

    def test_join_respects_station_mismatch(self, catalog):
        spe = StreamProcessingEngine(catalog)
        q = parse_query(
            "SELECT T.temp FROM Temp [Range 10] T, Wind [Range 10] W "
            "WHERE T.station = W.station"
        )
        spe.register(q, "j")
        spe.push(temp(0, station=1))
        assert spe.push(wind(5, station=2)) == []

    def test_join_window_expiry(self, catalog):
        spe = StreamProcessingEngine(catalog)
        q = parse_query(
            "SELECT T.temp FROM Temp [Range 10] T, Wind [Now] W "
            "WHERE T.station = W.station"
        )
        spe.register(q, "j")
        spe.push(temp(0))
        assert len(spe.push(wind(10))) == 1
        spe2 = StreamProcessingEngine(catalog)
        spe2.register(q, "j")
        spe2.push(temp(0))
        assert spe2.push(wind(11)) == []


class TestPushTo:
    def test_targets_single_query(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "a")
        spe.register(parse_query("SELECT T.station FROM Temp T"), "b")
        results = spe.push_to("a", temp(0))
        assert [r.query_name for r in results] == ["a"]

    def test_unknown_target(self, catalog):
        with pytest.raises(EngineError):
            StreamProcessingEngine(catalog).push_to("zzz", temp(0))


class TestAggregates:
    def test_grouped_average(self, catalog):
        spe = StreamProcessingEngine(catalog)
        q = parse_query(
            "SELECT AVG(T.temp) AS m FROM Temp [Range 100] T GROUP BY T.station"
        )
        spe.register(q, "agg")
        spe.push(temp(0, station=1, value=10.0))
        results = spe.push(temp(1, station=1, value=20.0))
        assert dict(results[0].datagram.payload) == {"T.station": 1, "m": 15.0}


class TestResultSchema:
    def test_spj_schema_carries_source_metadata(self, catalog):
        q = parse_query("SELECT T.temp, T.station FROM Temp T").canonical(catalog)
        schema = result_schema(q, catalog, "out")
        assert schema.attribute("Temp.temp").lo == -20
        assert schema.attribute("Temp.station").type == "int"

    def test_implicit_timestamp_attribute(self, catalog):
        q = parse_query("SELECT T.temp, T.timestamp FROM Temp T").canonical(catalog)
        schema = result_schema(q, catalog, "out")
        assert schema.attribute("Temp.timestamp").type == "timestamp"

    def test_aggregate_schema(self, catalog):
        q = parse_query(
            "SELECT COUNT(*) AS n, AVG(T.temp) AS m FROM Temp T GROUP BY T.station"
        ).canonical(catalog)
        schema = result_schema(q, catalog, "out")
        assert schema.attribute("n").type == "int"
        assert schema.attribute("m").type == "float"
        assert schema.attribute("Temp.station").type == "int"

    def test_engine_exposes_result_schema(self, catalog):
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query("SELECT T.temp FROM Temp T"), "q")
        assert spe.result_schema_of("q").name == "q:results"
