"""Per-stream dissemination trees (section 3.2: "multiple overlay
dissemination trees")."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Profile
from repro.cbn.network import ContentBasedNetwork, NetworkError
from repro.overlay.tree import DisseminationTree


def line(nodes):
    edges = list(zip(nodes, nodes[1:]))
    return DisseminationTree(edges, {tuple(sorted(e)): 1.0 for e in edges})


@pytest.fixture
def two_tree_net():
    """Stream X routes on 0-1-2-3-4, stream Y on 0-2-4-1-3."""
    default = line([0, 1, 2, 3, 4])
    y_tree = line([0, 2, 4, 1, 3])
    net = ContentBasedNetwork(default, stream_trees={"Y": y_tree})
    net.advertise("X", 0)
    net.advertise("Y", 0)
    return net


class TestConstruction:
    def test_mismatched_node_set_rejected(self):
        with pytest.raises(NetworkError):
            ContentBasedNetwork(
                line([0, 1, 2]), stream_trees={"Y": line([0, 1, 2, 3])}
            )

    def test_tree_for(self, two_tree_net):
        assert two_tree_net.tree_for("X") is two_tree_net.tree
        assert two_tree_net.tree_for("Y") is not two_tree_net.tree
        assert two_tree_net.has_stream_trees


class TestRouting:
    def test_streams_routed_on_own_trees(self, two_tree_net):
        net = two_tree_net
        net.subscribe(Profile({"X": ALL_ATTRIBUTES, "Y": ALL_ATTRIBUTES}), 4, "u")
        x_deliveries = net.publish(Datagram("X", {"a": 1}), 0)
        y_deliveries = net.publish(Datagram("Y", {"a": 2}), 0)
        assert len(x_deliveries) == 1
        assert len(y_deliveries) == 1
        # X path 0-1-2-3-4 = 4 hops; Y path 0-2-4 = 2 hops.
        assert net.data_stats.usage(0, 1).messages == 1  # X's first hop
        assert net.data_stats.usage(0, 2).messages == 1  # Y's first hop
        assert net.data_stats.usage(2, 4).messages == 1  # Y's second hop

    def test_shorter_tree_saves_traffic(self, two_tree_net):
        net = two_tree_net
        net.subscribe(Profile({"X": {"a"}, "Y": {"a"}}), 4, "u")
        net.publish(Datagram("X", {"a": 1}), 0)
        x_messages = net.data_stats.total_messages()
        net.publish(Datagram("Y", {"a": 1}), 0)
        y_messages = net.data_stats.total_messages() - x_messages
        assert y_messages < x_messages

    def test_unsubscribe_clears_all_stream_entries(self, two_tree_net):
        net = two_tree_net
        net.subscribe(Profile({"X": ALL_ATTRIBUTES, "Y": ALL_ATTRIBUTES}), 4, "u")
        net.unsubscribe("u")
        assert net.publish(Datagram("X", {"a": 1}), 0) == []
        assert net.publish(Datagram("Y", {"a": 1}), 0) == []
        assert net.routing_state_size() == 0

    def test_multi_stream_profile_filters_per_stream(self, two_tree_net):
        from repro.cbn.filters import Filter
        from repro.cql.predicates import Comparison, Conjunction

        net = two_tree_net
        profile = Profile(
            {"X": {"a"}, "Y": {"a"}},
            [Filter("X", Conjunction.from_atoms([Comparison("a", ">", 5)]))],
        )
        net.subscribe(profile, 3, "u")
        assert net.publish(Datagram("X", {"a": 1}), 0) == []      # filtered
        assert len(net.publish(Datagram("X", {"a": 9}), 0)) == 1  # passes
        assert len(net.publish(Datagram("Y", {"a": 1}), 0)) == 1  # unconditional

    def test_flooding_mode_with_stream_trees(self):
        default = line([0, 1, 2, 3])
        y_tree = line([0, 2, 1, 3])
        net = ContentBasedNetwork(
            default, scope_to_advertisements=False, stream_trees={"Y": y_tree}
        )
        net.subscribe(Profile({"Y": ALL_ATTRIBUTES}), 3, "u")
        assert len(net.publish(Datagram("Y", {"a": 1}), 0)) == 1
