"""Flooded vs DHT schema distribution."""

import pytest

from repro.cbn.schema_registry import DHTSchemaRegistry, FloodedSchemaRegistry
from repro.cql.schema import Attribute, StreamSchema


def schema(name):
    return StreamSchema(name, [Attribute("a", "int")], rate=1.0)


class TestFlooded:
    def test_lookup_from_any_node(self, line_tree):
        reg = FloodedSchemaRegistry(line_tree)
        reg.register(schema("S"), 0)
        for node in line_tree.nodes:
            assert reg.lookup("S", node).name == "S"

    def test_unknown_stream_none(self, line_tree):
        reg = FloodedSchemaRegistry(line_tree)
        assert reg.lookup("nope", 0) is None

    def test_registration_costs_every_link(self, line_tree):
        reg = FloodedSchemaRegistry(line_tree)
        reg.register(schema("S"), 0)
        assert reg.stats.total_messages() == len(line_tree.edges)

    def test_lookup_is_free(self, line_tree):
        reg = FloodedSchemaRegistry(line_tree)
        reg.register(schema("S"), 0)
        before = reg.stats.total_messages()
        reg.lookup("S", 4)
        assert reg.stats.total_messages() == before


class TestDHT:
    def test_register_then_lookup(self, line_tree):
        reg = DHTSchemaRegistry(line_tree)
        reg.register(schema("S"), 0)
        assert reg.lookup("S", 4).name == "S"

    def test_unknown_stream_none(self, line_tree):
        reg = DHTSchemaRegistry(line_tree)
        assert reg.lookup("nope", 0) is None

    def test_lookups_cost_traffic(self, line_tree):
        reg = DHTSchemaRegistry(line_tree)
        reg.register(schema("S"), 0)
        before = reg.stats.total_bytes()
        for node in line_tree.nodes:
            reg.lookup("S", node)
        assert reg.stats.total_bytes() > before

    def test_registration_cheaper_than_flooding_on_big_tree(self, small_tree):
        flooded = FloodedSchemaRegistry(small_tree)
        dht = DHTSchemaRegistry(small_tree)
        for i in range(5):
            flooded.register(schema(f"S{i}"), 0)
            dht.register(schema(f"S{i}"), 0)
        assert dht.stats.total_messages() < flooded.stats.total_messages()

    def test_replicated_registration(self, small_tree):
        reg = DHTSchemaRegistry(small_tree, replicas=3)
        reg.register(schema("S"), 0)
        assert reg.lookup("S", 5).name == "S"
