"""Wire codec round-trips for datagrams and profiles."""

import pytest

from repro.cbn.codec import (
    CodecError,
    decode_conjunction,
    decode_datagram,
    decode_profile,
    encode_conjunction,
    encode_datagram,
    encode_profile,
)
from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.predicates import (
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
)


class TestDatagramCodec:
    def test_roundtrip(self):
        d = Datagram("S", {"a": 1, "b": 2.5, "c": "text"}, 42.0)
        assert decode_datagram(encode_datagram(d)) == d

    def test_empty_payload(self):
        d = Datagram("S", {}, 0.0)
        assert decode_datagram(encode_datagram(d)) == d

    def test_negative_and_large_ints(self):
        d = Datagram("S", {"a": -(2**40), "b": 2**40}, 1.0)
        assert decode_datagram(encode_datagram(d)) == d

    def test_unicode(self):
        d = Datagram("météo", {"ville": "Zürich"}, 1.0)
        assert decode_datagram(encode_datagram(d)) == d

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode_datagram(b"XX123")

    def test_encoding_deterministic(self):
        a = Datagram("S", {"x": 1, "y": 2}, 5.0)
        b = Datagram("S", {"y": 2, "x": 1}, 5.0)
        assert encode_datagram(a) == encode_datagram(b)

    def test_bool_rejected(self):
        with pytest.raises(CodecError):
            encode_datagram(Datagram("S", {"flag": True}, 0.0))

    def test_sequenced_roundtrip_preserves_seq(self):
        d = Datagram("S", {"a": 1, "b": 2.5}, 42.0, 17)
        decoded = decode_datagram(encode_datagram(d))
        assert decoded == d
        assert decoded.seq == 17

    def test_sequenced_uses_distinct_magic(self):
        plain = encode_datagram(Datagram("S", {"a": 1}, 1.0))
        sequenced = encode_datagram(Datagram("S", {"a": 1}, 1.0, 0))
        assert plain[:2] == b"CD"
        assert sequenced[:2] == b"CS"
        assert len(sequenced) == len(plain) + 8

    def test_large_and_negative_seq_roundtrip(self):
        for seq in (0, 2**40, 2**62):
            d = Datagram("S", {"a": 1}, 1.0, seq)
            assert decode_datagram(encode_datagram(d)).seq == seq


class TestConjunctionCodec:
    @pytest.mark.parametrize(
        "conjunction",
        [
            Conjunction.true(),
            Conjunction.from_atoms([Comparison("a", ">", 1)]),
            Conjunction.from_atoms(
                [
                    Comparison("a", ">=", 1),
                    Comparison("a", "<", 9.5),
                    Comparison("b", "!=", 3),
                    Comparison("b", "!=", 4),
                    JoinPredicate("x", "y"),
                    DifferenceConstraint("x", "y", Interval(-3.0, 0.0)),
                ]
            ),
            Conjunction.from_atoms([Comparison("name", "=", "alice")]),
        ],
    )
    def test_roundtrip(self, conjunction):
        buffer = encode_conjunction(conjunction)
        decoded, offset = decode_conjunction(buffer)
        assert decoded == conjunction
        assert offset == len(buffer)


class TestProfileCodec:
    def test_roundtrip_full(self):
        profile = Profile(
            {"R": frozenset({"a", "b"}), "S": ALL_ATTRIBUTES},
            [
                Filter("R", Conjunction.from_atoms([Comparison("a", ">", 10)])),
                Filter("S", Conjunction.true()),
            ],
        )
        assert decode_profile(encode_profile(profile)) == profile

    def test_roundtrip_minimal(self):
        profile = Profile({"S": ALL_ATTRIBUTES})
        assert decode_profile(encode_profile(profile)) == profile

    def test_decoded_profile_behaves_identically(self):
        profile = Profile(
            {"S": frozenset({"a"})},
            [Filter("S", Conjunction.from_atoms([Comparison("a", ">", 5)]))],
        )
        decoded = decode_profile(encode_profile(profile))
        matching = Datagram("S", {"a": 7, "b": 1}, 0.0)
        missing = Datagram("S", {"a": 2}, 0.0)
        assert decoded.apply(matching) == profile.apply(matching)
        assert decoded.apply(missing) is None

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode_profile(b"ZZ")

    def test_size_smaller_than_repr(self):
        profile = Profile(
            {"S": frozenset({"a", "b", "c"})},
            [Filter("S", Conjunction.from_atoms([Comparison("a", ">", 10)]))],
        )
        assert len(encode_profile(profile)) < len(repr(profile.projections)) + 100
