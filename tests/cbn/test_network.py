"""End-to-end CBN behaviour on small trees."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork, NetworkError
from repro.cql.predicates import Comparison, Conjunction
from repro.cql.schema import Attribute, StreamSchema


def cond(*atoms):
    return Conjunction.from_atoms(atoms)


SCHEMA = StreamSchema(
    "S",
    [Attribute("a", "int", 0, 100), Attribute("b", "float", 0, 1)],
    rate=1.0,
)


@pytest.fixture
def net(line_tree):
    network = ContentBasedNetwork(line_tree)
    network.advertise("S", 0, SCHEMA)
    return network


class TestSubscribePublish:
    def test_delivery_to_matching_subscriber(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        deliveries = net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert [d.subscription_id for d in deliveries] == ["u1"]
        assert deliveries[0].node == 4

    def test_no_delivery_when_filtered_out(self, net):
        p = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 50)))])
        net.subscribe(p, 4, "u1")
        assert net.publish(Datagram("S", {"a": 10, "b": 0.1}), 0) == []

    def test_projection_applied_at_delivery(self, net):
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        deliveries = net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert dict(deliveries[0].datagram.payload) == {"a": 1}

    def test_multiple_subscribers_each_get_own_view(self, net):
        net.subscribe(Profile({"S": {"a"}}), 2, "u1")
        net.subscribe(Profile({"S": {"b"}}), 4, "u2")
        deliveries = {d.subscription_id: d for d in net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)}
        assert dict(deliveries["u1"].datagram.payload) == {"a": 1}
        assert dict(deliveries["u2"].datagram.payload) == {"b": 0.5}

    def test_subscriber_at_publisher_node(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 0, "u1")
        deliveries = net.publish(Datagram("S", {"a": 1, "b": 0.2}), 0)
        assert len(deliveries) == 1
        # Local delivery moves no bytes across links.
        assert net.data_stats.total_bytes() == 0

    def test_unsubscribe_stops_delivery(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        net.unsubscribe("u1")
        assert net.publish(Datagram("S", {"a": 1, "b": 0.1}), 0) == []

    def test_duplicate_subscription_id_rejected(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        with pytest.raises(NetworkError):
            net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 3, "u1")

    def test_unknown_node_rejected(self, net):
        with pytest.raises(NetworkError):
            net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 99)
        with pytest.raises(NetworkError):
            net.publish(Datagram("S", {}), 99)


class TestTrafficAccounting:
    def test_bytes_counted_per_hop(self, net):
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        # 4 hops from node 0 to node 4, a:int = 4 bytes each.
        assert net.data_stats.total_messages() == 4
        assert net.data_stats.total_bytes() == 16

    def test_early_projection_on_first_hop(self, net):
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert net.data_stats.usage(0, 1).bytes == 4  # b already stripped

    def test_no_subscribers_no_traffic(self, net):
        net.publish(Datagram("S", {"a": 1}), 0)
        assert net.data_stats.total_messages() == 0

    def test_shared_path_carries_union(self, star_tree):
        net = ContentBasedNetwork(star_tree)
        net.advertise("S", 1, SCHEMA)
        net.subscribe(Profile({"S": {"a"}}), 3, "u1")
        net.subscribe(Profile({"S": {"b"}}), 4, "u2")
        net.publish(Datagram("S", {"a": 1, "b": 0.5}), 1)
        # Link 1->0 carries the union {a, b} once: 4 + 8 = 12 bytes.
        assert net.data_stats.usage(0, 1).bytes == 12
        assert net.data_stats.usage(0, 3).bytes == 4
        assert net.data_stats.usage(0, 4).bytes == 8

    def test_control_traffic_recorded(self, net):
        before = net.control_stats.total_messages()
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        assert net.control_stats.total_messages() > before


class TestAdvertisementScoping:
    def test_subscription_before_advertisement(self, line_tree):
        net = ContentBasedNetwork(line_tree)
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        net.advertise("S", 0, SCHEMA)  # late advertisement re-propagates
        deliveries = net.publish(Datagram("S", {"a": 1}), 0)
        assert [d.subscription_id for d in deliveries] == ["u1"]

    def test_flooding_mode_needs_no_advertisement(self, line_tree):
        net = ContentBasedNetwork(line_tree, scope_to_advertisements=False)
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        deliveries = net.publish(Datagram("S", {"a": 1}), 0)
        assert [d.subscription_id for d in deliveries] == ["u1"]

    def test_scoped_mode_keeps_routing_state_small(self, line_tree):
        scoped = ContentBasedNetwork(line_tree)
        scoped.advertise("S", 0, SCHEMA)
        flooded = ContentBasedNetwork(line_tree, scope_to_advertisements=False)
        flooded.advertise("S", 0, SCHEMA)
        p = Profile({"S": ALL_ATTRIBUTES})
        scoped.subscribe(p, 2, "u1")
        flooded.subscribe(p, 2, "u1")
        assert scoped.routing_state_size() < flooded.routing_state_size()

    def test_multiple_publishers(self, star_tree):
        net = ContentBasedNetwork(star_tree)
        net.advertise("S", 1, SCHEMA)
        net.advertise("S", 2, SCHEMA)
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 3, "u1")
        assert len(net.publish(Datagram("S", {"a": 1}), 1)) == 1
        assert len(net.publish(Datagram("S", {"a": 2}), 2)) == 1


class TestSubsumptionMode:
    def test_covered_subscription_still_delivered(self, line_tree):
        net = ContentBasedNetwork(line_tree, use_subsumption=True)
        net.advertise("S", 0, SCHEMA)
        broad = Profile({"S": ALL_ATTRIBUTES})
        narrow = Profile(
            {"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 50)))]
        )
        net.subscribe(broad, 4, "broad")
        net.subscribe(narrow, 4, "narrow")
        deliveries = net.publish(Datagram("S", {"a": 60, "b": 0.5}), 0)
        assert {d.subscription_id for d in deliveries} == {"broad", "narrow"}

    def test_subsumption_reduces_routing_state(self, line_tree):
        def build(use):
            net = ContentBasedNetwork(line_tree, use_subsumption=use)
            net.advertise("S", 0, SCHEMA)
            net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "broad")
            net.subscribe(
                Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 50)))]),
                4,
                "narrow",
            )
            return net.routing_state_size()

        assert build(True) < build(False)


class TestSubsumptionUnsubscribe:
    def test_covered_subscription_survives_coverers_departure(self, line_tree):
        """Regression (found by stateful testing): removing a covering
        subscription must re-propagate the suppressed covered ones, or
        they are stranded with no forwarding state."""
        net = ContentBasedNetwork(line_tree, use_subsumption=True)
        net.advertise("S", 0, SCHEMA)
        profile = Profile(
            {"S": ALL_ATTRIBUTES},
            [Filter("S", cond(Comparison("a", ">=", 0)))],
        )
        net.subscribe(profile, 1, "coverer")
        net.subscribe(profile, 1, "covered")  # suppressed behind coverer
        net.unsubscribe("coverer")
        deliveries = net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert [d.subscription_id for d in deliveries] == ["covered"]

    def test_chain_of_coverers(self, line_tree):
        net = ContentBasedNetwork(line_tree, use_subsumption=True)
        net.advertise("S", 0, SCHEMA)
        broad = Profile({"S": ALL_ATTRIBUTES})
        narrow = Profile(
            {"S": ALL_ATTRIBUTES},
            [Filter("S", cond(Comparison("a", ">=", 0)))],
        )
        narrower = Profile(
            {"S": ALL_ATTRIBUTES},
            [Filter("S", cond(Comparison("a", ">=", 10)))],
        )
        net.subscribe(broad, 4, "u1")
        net.subscribe(narrow, 4, "u2")
        net.subscribe(narrower, 4, "u3")
        net.unsubscribe("u1")
        net.unsubscribe("u2")
        deliveries = net.publish(Datagram("S", {"a": 50, "b": 0.1}), 0)
        assert [d.subscription_id for d in deliveries] == ["u3"]


class TestAdvertisementDedup:
    def test_duplicate_advertisement_not_recorded(self, net):
        net.advertise("S", 0, SCHEMA)
        assert net.publishers_of("S") == [0]

    def test_duplicate_advertisement_is_silent(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        state = net.routing_state_size()
        epoch = net.routing_epoch
        control = net.control_stats.total_bytes()
        net.advertise("S", 0, SCHEMA)
        assert net.routing_state_size() == state
        assert net.routing_epoch == epoch
        assert net.control_stats.total_bytes() == control

    def test_duplicate_advertisement_does_not_duplicate_delivery(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        net.advertise("S", 0, SCHEMA)
        deliveries = net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert [d.subscription_id for d in deliveries] == ["u1"]

    def test_same_stream_second_publisher_recorded(self, net):
        net.advertise("S", 4, SCHEMA)
        assert sorted(net.publishers_of("S")) == [0, 4]


class TestFastPathCache:
    def test_epoch_tracks_routing_mutations(self, net):
        before = net.routing_epoch
        sid = net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4)
        after_subscribe = net.routing_epoch
        assert after_subscribe > before
        net.unsubscribe(sid)
        assert net.routing_epoch > after_subscribe

    def test_new_subscription_invalidates_cached_route(self, net):
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)  # warm the cache
        net.subscribe(Profile({"S": {"b"}}), 2, "u2")
        deliveries = net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert sorted(d.subscription_id for d in deliveries) == ["u1", "u2"]

    def test_unsubscribe_invalidates_cached_route(self, net):
        net.subscribe(Profile({"S": ALL_ATTRIBUTES}), 4, "u1")
        net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)  # warm the cache
        net.unsubscribe("u1")
        assert net.publish(Datagram("S", {"a": 1, "b": 0.5}), 0) == []

    def test_schema_registration_bumps_catalog_version(self, net):
        from repro.cql.schema import Attribute, StreamSchema

        before = net.catalog.version
        net.catalog.register(
            StreamSchema("T", [Attribute("x", "int", 0, 1)], rate=1.0)
        )
        assert net.catalog.version > before

    def test_naive_mode_still_available(self, line_tree):
        network = ContentBasedNetwork(line_tree, fast_path=False)
        network.advertise("S", 0, SCHEMA)
        network.subscribe(Profile({"S": {"a"}}), 4, "u1")
        deliveries = network.publish(Datagram("S", {"a": 1, "b": 0.5}), 0)
        assert [d.subscription_id for d in deliveries] == ["u1"]
        assert not network.fast_path


class TestPublishMany:
    def test_one_delivery_list_per_datagram(self, net):
        net.subscribe(
            Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 5)))]),
            4,
            "u1",
        )
        feed = [
            Datagram("S", {"a": 1, "b": 0.1}, 0.0),
            Datagram("S", {"a": 9, "b": 0.2}, 1.0),
            Datagram("S", {"a": 7, "b": 0.3}, 2.0),
        ]
        batches = net.publish_many(feed, 0)
        assert [len(b) for b in batches] == [0, 1, 1]

    def test_matches_publish_loop(self, line_tree):
        def build():
            network = ContentBasedNetwork(line_tree)
            network.advertise("S", 0, SCHEMA)
            network.subscribe(Profile({"S": {"a"}}), 4, "u1")
            network.subscribe(Profile({"S": ALL_ATTRIBUTES}), 2, "u2")
            return network

        feed = [Datagram("S", {"a": i, "b": 0.5}, float(i)) for i in range(4)]
        batched_net, looped_net = build(), build()
        batched = batched_net.publish_many(feed, 0)
        looped = [looped_net.publish(datagram, 0) for datagram in feed]
        assert [
            [(d.subscription_id, d.node, d.datagram) for d in per] for per in batched
        ] == [
            [(d.subscription_id, d.node, d.datagram) for d in per] for per in looped
        ]
        assert batched_net.data_stats.as_dict() == looped_net.data_stats.as_dict()

    def test_unknown_broker_rejected(self, net):
        with pytest.raises(NetworkError):
            net.publish_many([Datagram("S", {"a": 1, "b": 0.1})], 99)
