"""Per-node routing tables: install/remove, decisions, early projection."""

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.routing import RoutingTable
from repro.cql.predicates import Comparison, Conjunction


def cond(*atoms):
    return Conjunction.from_atoms(atoms)


def profile(attrs, *atoms, stream="S"):
    filters = [Filter(stream, cond(*atoms))] if atoms else []
    return Profile({stream: attrs}, filters)


class TestInstallRemove:
    def test_install_and_decide(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        assert table.decide(1, Datagram("S", {"a": 1})).forward

    def test_remove_clears_everywhere(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        table.install(2, "s1", profile({"a"}))
        table.remove("s1")
        assert not table.decide(1, Datagram("S", {"a": 1})).forward
        assert not table.decide(2, Datagram("S", {"a": 1})).forward

    def test_remove_interface(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        table.remove_interface(1)
        assert table.entry_count == 0

    def test_entry_count(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        table.install(1, "s2", profile({"b"}))
        table.install(RoutingTable.LOCAL, "s3", profile({"a"}))
        assert table.entry_count == 3


class TestSubsumptionAggregation:
    def test_subsumed_entry_suppressed(self):
        table = RoutingTable(0, use_subsumption=True)
        assert table.install(1, "broad", profile({"a"}, Comparison("a", ">", 0)))
        assert not table.install(1, "narrow", profile({"a"}, Comparison("a", ">", 5)))
        assert table.entry_count == 1

    def test_broader_entry_replaces_narrower(self):
        table = RoutingTable(0, use_subsumption=True)
        table.install(1, "narrow", profile({"a"}, Comparison("a", ">", 5)))
        assert table.install(1, "broad", profile({"a"}, Comparison("a", ">", 0)))
        assert table.entry_count == 1
        assert table.decide(1, Datagram("S", {"a": 1})).forward

    def test_no_suppression_across_interfaces(self):
        table = RoutingTable(0, use_subsumption=True)
        table.install(1, "broad", profile({"a"}, Comparison("a", ">", 0)))
        assert table.install(2, "narrow", profile({"a"}, Comparison("a", ">", 5)))

    def test_disabled_by_default(self):
        table = RoutingTable(0)
        table.install(1, "broad", profile({"a"}, Comparison("a", ">", 0)))
        assert table.install(1, "narrow", profile({"a"}, Comparison("a", ">", 5)))
        assert table.entry_count == 2


class TestForwardDecision:
    def test_no_match_no_forward(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, Comparison("a", ">", 100)))
        decision = table.decide(1, Datagram("S", {"a": 1}))
        assert not decision.forward

    def test_projection_unions_coverers(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        table.install(1, "s2", profile({"b"}))
        decision = table.decide(1, Datagram("S", {"a": 1, "b": 2, "c": 3}))
        assert decision.forward
        assert decision.attributes == frozenset({"a", "b"})

    def test_all_attributes_disables_projection(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile(ALL_ATTRIBUTES))
        decision = table.decide(1, Datagram("S", {"a": 1}))
        assert decision.attributes is None

    def test_non_covering_profile_does_not_widen_projection(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        table.install(1, "s2", profile({"zzz"}, Comparison("a", "<", 0)))
        decision = table.decide(1, Datagram("S", {"a": 1, "zzz": 9}))
        assert decision.attributes is not None
        assert "zzz" not in decision.attributes

    def test_filter_attributes_retained_for_downstream_refiltering(self):
        # The downstream profile filters on b but only outputs a: b must
        # survive the early projection or the next hop drops the datagram.
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, Comparison("b", ">", 0)))
        decision = table.decide(1, Datagram("S", {"a": 1, "b": 5}))
        assert decision.attributes is not None
        assert "b" in decision.attributes


class TestLocalDeliveries:
    def test_projected_per_subscriber(self):
        table = RoutingTable(0)
        table.install(RoutingTable.LOCAL, "u1", profile({"a"}))
        table.install(RoutingTable.LOCAL, "u2", profile({"b"}, Comparison("b", ">", 10)))
        deliveries = dict(table.local_deliveries(Datagram("S", {"a": 1, "b": 20})))
        assert dict(deliveries["u1"].payload) == {"a": 1}
        assert dict(deliveries["u2"].payload) == {"b": 20}

    def test_uncovered_not_delivered(self):
        table = RoutingTable(0)
        table.install(RoutingTable.LOCAL, "u1", profile({"a"}, Comparison("a", ">", 5)))
        assert table.local_deliveries(Datagram("S", {"a": 1})) == []


class TestStreamIndex:
    def test_entries_bucketed_by_stream(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, stream="S"))
        table.install(1, "s2", profile({"b"}, stream="T"))
        assert set(table.stream_entries(1, "S")) == {"s1"}
        assert set(table.stream_entries(1, "T")) == {"s2"}
        assert table.has_stream_entries(1, "S")
        assert not table.has_stream_entries(1, "U")

    def test_stream_interfaces(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, stream="S"))
        table.install(2, "s2", profile({"a"}, stream="S"))
        table.install(3, "s3", profile({"a"}, stream="T"))
        assert sorted(table.stream_interfaces("S")) == [1, 2]
        assert table.stream_interfaces("T") == [3]

    def test_remove_clears_index(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, stream="S"))
        table.remove("s1")
        assert not table.has_stream_entries(1, "S")
        assert table.stream_interfaces("S") == []

    def test_remove_interface_clears_index(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, stream="S"))
        table.remove_interface(1)
        assert not table.has_stream_entries(1, "S")

    def test_overwrite_reindexes_new_streams(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}, stream="S"))
        table.install(1, "s1", profile({"a"}, stream="T"))
        assert not table.has_stream_entries(1, "S")
        assert table.has_stream_entries(1, "T")

    def test_decide_matches_unindexed_table(self):
        datagrams = [
            Datagram("S", {"a": 1, "b": 2}),
            Datagram("S", {"a": 9, "b": 0}),
            Datagram("T", {"a": 1, "b": 2}),
        ]
        profiles = [
            ("s1", profile({"a"}, Comparison("a", ">", 0))),
            ("s2", profile(ALL_ATTRIBUTES, stream="T")),
            ("s3", profile({"b"}, Comparison("b", ">=", 2))),
        ]
        indexed = RoutingTable(0, use_index=True)
        plain = RoutingTable(0, use_index=False)
        for sid, prof in profiles:
            indexed.install(1, sid, prof)
            plain.install(1, sid, prof)
        for datagram in datagrams:
            a = indexed.decide(1, datagram)
            b = plain.decide(1, datagram)
            assert (a.forward, a.attributes) == (b.forward, b.attributes)


class TestEpoch:
    def test_install_bumps_epoch(self):
        table = RoutingTable(0)
        before = table.epoch
        table.install(1, "s1", profile({"a"}))
        assert table.epoch == before + 1

    def test_noop_remove_keeps_epoch(self):
        table = RoutingTable(0)
        table.install(1, "s1", profile({"a"}))
        before = table.epoch
        table.remove("missing")
        assert table.epoch == before

    def test_remove_missing_interface_keeps_epoch(self):
        table = RoutingTable(0)
        before = table.epoch
        table.remove_interface(9)
        assert table.epoch == before

    def test_on_change_called_per_mutation(self):
        calls = []
        table = RoutingTable(0, on_change=calls.append)
        table.install(1, "s1", profile({"a"}))
        table.remove("s1")
        # One call per mutation, reporting the streams it touched.
        assert calls == [frozenset({"S"}), frozenset({"S"})]

    def test_suppressed_install_keeps_epoch(self):
        table = RoutingTable(0, use_subsumption=True)
        table.install(1, "broad", profile({"a"}, Comparison("a", ">", 0)))
        before = table.epoch
        assert not table.install(1, "narrow", profile({"a"}, Comparison("a", ">", 5)))
        assert table.epoch == before
