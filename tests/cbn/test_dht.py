"""Consistent hashing ring and the replicated DHT store."""

import pytest

from repro.cbn.dht import ConsistentHashRing, DHTError, DHTStore


class TestRing:
    def test_owner_deterministic(self):
        ring = ConsistentHashRing(range(10))
        assert ring.owner("streamA") == ring.owner("streamA")

    def test_owner_in_members(self):
        ring = ConsistentHashRing(range(10))
        assert ring.owner("x") in ring.nodes

    def test_empty_ring_raises(self):
        with pytest.raises(DHTError):
            ConsistentHashRing().owner("x")

    def test_owners_distinct(self):
        ring = ConsistentHashRing(range(10))
        owners = ring.owners("x", 3)
        assert len(owners) == len(set(owners)) == 3

    def test_owners_capped_at_ring_size(self):
        ring = ConsistentHashRing(range(2))
        assert len(ring.owners("x", 5)) == 2

    def test_add_node_idempotent(self):
        ring = ConsistentHashRing([1])
        ring.add_node(1)
        assert len(ring) == 1

    def test_remove_node(self):
        ring = ConsistentHashRing(range(5))
        ring.remove_node(3)
        assert 3 not in ring.nodes
        for key in ("a", "b", "c"):
            assert ring.owner(key) != 3

    def test_remove_unknown_raises(self):
        with pytest.raises(DHTError):
            ConsistentHashRing(range(3)).remove_node(99)

    def test_removal_only_moves_affected_keys(self):
        ring = ConsistentHashRing(range(20))
        keys = [f"stream-{i}" for i in range(100)]
        before = {k: ring.owner(k) for k in keys}
        victim = ring.owner("stream-0")
        ring.remove_node(victim)
        moved = sum(
            1 for k in keys if before[k] != ring.owner(k)
        )
        # Only keys owned by the removed node (≈ 1/20th) should move.
        owned_by_victim = sum(1 for k in keys if before[k] == victim)
        assert moved == owned_by_victim

    def test_balance_roughly_uniform(self):
        ring = ConsistentHashRing(range(10), vnodes=64)
        counts = {node: 0 for node in range(10)}
        for i in range(2000):
            counts[ring.owner(f"key-{i}")] += 1
        assert max(counts.values()) < 6 * min(counts.values()) + 1

    def test_bad_vnodes(self):
        with pytest.raises(DHTError):
            ConsistentHashRing(vnodes=0)


class TestStore:
    def test_put_get(self):
        store = DHTStore(ConsistentHashRing(range(5)))
        store.put("k", "v")
        assert store.get("k") == "v"

    def test_get_missing(self):
        store = DHTStore(ConsistentHashRing(range(5)))
        assert store.get("nope") is None

    def test_delete(self):
        store = DHTStore(ConsistentHashRing(range(5)))
        store.put("k", "v")
        store.delete("k")
        assert store.get("k") is None

    def test_replication_survives_primary_failure(self):
        ring = ConsistentHashRing(range(10))
        store = DHTStore(ring, replicas=3)
        owners = store.put("k", "v")
        store.fail_node(owners[0])
        assert store.get("k") == "v"

    def test_single_replica_lost_on_failure(self):
        ring = ConsistentHashRing(range(10))
        store = DHTStore(ring, replicas=1)
        owners = store.put("k", "v")
        store.fail_node(owners[0])
        assert store.get("k") is None

    def test_keys_on(self):
        ring = ConsistentHashRing(range(3))
        store = DHTStore(ring)
        owners = store.put("k", "v")
        assert "k" in store.keys_on(owners[0])

    def test_bad_replicas(self):
        with pytest.raises(DHTError):
            DHTStore(ConsistentHashRing(range(3)), replicas=0)

    def test_failed_node_leaves_the_ring(self):
        ring = ConsistentHashRing(range(5))
        store = DHTStore(ring)
        store.fail_node(3)
        assert 3 not in ring.nodes
        assert store.keys_on(3) == set()

    def test_reregistration_restores_lost_key(self):
        ring = ConsistentHashRing(range(5))
        store = DHTStore(ring, replicas=1)
        owners = store.put("k", "v")
        store.fail_node(owners[0])
        assert store.get("k") is None
        new_owners = store.put("k", "v2")
        assert store.get("k") == "v2"
        assert owners[0] not in new_owners


class TestSchemaReResolution:
    """Schema lookups through the DHT registry after node loss."""

    def _registry(self, replicas):
        import random

        from repro.cbn.schema_registry import DHTSchemaRegistry
        from repro.overlay.topology import barabasi_albert
        from repro.overlay.tree import DisseminationTree

        topology = barabasi_albert(12, 2, random.Random(4))
        tree = DisseminationTree.minimum_spanning(topology)
        return DHTSchemaRegistry(tree, replicas=replicas)

    def _schema(self):
        from repro.cql.schema import Attribute, StreamSchema

        return StreamSchema(
            "Temp", [Attribute("station", "int", 0, 9)], rate=1.0
        )

    def test_replicated_lookup_survives_primary_loss(self):
        registry = self._registry(replicas=2)
        schema = self._schema()
        registry.register(schema, 0)
        primary = registry._store.ring.owners("Temp", 1)[0]
        registry._store.fail_node(primary)
        resolved = registry.lookup("Temp", 0)
        assert resolved == schema
        # The key re-resolves to a different owner now.
        assert registry._store.ring.owners("Temp", 1)[0] != primary

    def test_unreplicated_loss_needs_reregistration(self):
        registry = self._registry(replicas=1)
        schema = self._schema()
        registry.register(schema, 0)
        primary = registry._store.ring.owners("Temp", 1)[0]
        registry._store.fail_node(primary)
        assert registry.lookup("Temp", 0) is None
        registry.register(schema, 0)
        assert registry.lookup("Temp", 0) == schema
