"""Datagram semantics: projection, sizes, equality."""

from repro.cbn.datagram import Datagram


class TestBasics:
    def test_payload_is_copied(self):
        payload = {"a": 1}
        d = Datagram("S", payload, 1.0)
        payload["a"] = 99
        assert d.value("a") == 1

    def test_attributes(self):
        d = Datagram("S", {"a": 1, "b": 2})
        assert d.attributes == frozenset({"a", "b"})
        assert "a" in d and "z" not in d

    def test_equality_and_hash(self):
        a = Datagram("S", {"a": 1}, 2.0)
        b = Datagram("S", {"a": 1}, 2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Datagram("S", {"a": 2}, 2.0)
        assert a != Datagram("T", {"a": 1}, 2.0)


class TestSequenceNumbers:
    def test_seq_participates_in_equality_and_hash(self):
        a = Datagram("S", {"a": 1}, 2.0, 5)
        b = Datagram("S", {"a": 1}, 2.0, 5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Datagram("S", {"a": 1}, 2.0)
        assert a != Datagram("S", {"a": 1}, 2.0, 6)

    def test_seq_shown_in_repr(self):
        assert "#5" in repr(Datagram("S", {"a": 1}, 2.0, 5))
        assert "#" not in repr(Datagram("S", {"a": 1}, 2.0))

    def test_project_and_relabel_preserve_seq(self):
        d = Datagram("S", {"a": 1, "b": 2}, 2.0, 5)
        assert d.project({"a"}).seq == 5
        assert d.relabel("results").seq == 5

    def test_seq_adds_wire_size(self):
        plain = Datagram("S", {"a": 1}, 2.0)
        sequenced = Datagram("S", {"a": 1}, 2.0, 5)
        assert sequenced.size_bytes() == plain.size_bytes() + 8


class TestProjection:
    def test_project_keeps_subset(self):
        d = Datagram("S", {"a": 1, "b": 2, "c": 3})
        p = d.project({"a", "c"})
        assert dict(p.payload) == {"a": 1, "c": 3}

    def test_project_ignores_missing(self):
        d = Datagram("S", {"a": 1})
        p = d.project({"a", "zzz"})
        assert dict(p.payload) == {"a": 1}

    def test_project_preserves_stream_and_time(self):
        d = Datagram("S", {"a": 1}, 5.0)
        p = d.project({"a"})
        assert p.stream == "S" and p.timestamp == 5.0

    def test_relabel(self):
        d = Datagram("S", {"a": 1}, 5.0)
        r = d.relabel("results")
        assert r.stream == "results"
        assert dict(r.payload) == {"a": 1}


class TestSize:
    def test_fallback_widths(self):
        d = Datagram("S", {"i": 1, "f": 1.5, "s": "xy"})
        assert d.size_bytes() == 4 + 8 + 16

    def test_schema_widths_override(self):
        d = Datagram("S", {"i": 1, "f": 1.5})
        assert d.size_bytes({"i": 2, "f": 2}) == 4

    def test_partial_schema_widths(self):
        d = Datagram("S", {"i": 1, "f": 1.5})
        assert d.size_bytes({"i": 2}) == 2 + 8

    def test_projection_shrinks_size(self):
        d = Datagram("S", {"a": 1.0, "b": 2.0, "c": 3.0})
        assert d.project({"a"}).size_bytes() < d.size_bytes()
