"""Filters and ⟨S, P, F⟩ profiles: coverage, subsumption, merging."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile, ProfileError
from repro.cql.predicates import Comparison, Conjunction


def cond(*atoms):
    return Conjunction.from_atoms(atoms)


class TestFilter:
    def test_covers_matching_datagram(self):
        f = Filter("S", cond(Comparison("a", ">", 5)))
        assert f.covers(Datagram("S", {"a": 6}))
        assert not f.covers(Datagram("S", {"a": 5}))

    def test_wrong_stream_never_covered(self):
        f = Filter("S", Conjunction.true())
        assert not f.covers(Datagram("T", {"a": 6}))

    def test_trivial_filter_covers_all_of_stream(self):
        f = Filter("S")
        assert f.covers(Datagram("S", {}))

    def test_subsumption(self):
        broad = Filter("S", cond(Comparison("a", ">", 0)))
        narrow = Filter("S", cond(Comparison("a", ">", 10)))
        assert broad.subsumes(narrow)
        assert not narrow.subsumes(broad)

    def test_subsumption_across_streams_false(self):
        assert not Filter("S").subsumes(Filter("T"))


class TestProfileBasics:
    def test_triple_accessors(self):
        p = Profile(
            {"R": {"A", "B"}, "S": {"B", "C"}},
            [Filter("R", cond(Comparison("A", ">", 10)))],
        )
        assert p.streams == frozenset({"R", "S"})
        assert p.projection_for("R") == frozenset({"A", "B"})
        assert len(p.filters) == 1

    def test_filter_on_unrequested_stream_rejected(self):
        with pytest.raises(ProfileError):
            Profile({"R": {"A"}}, [Filter("S")])

    def test_projection_for_unknown_stream_raises(self):
        with pytest.raises(ProfileError):
            Profile({"R": {"A"}}).projection_for("S")


class TestCoverage:
    def test_disjunction_of_filters(self):
        p = Profile(
            {"S": ALL_ATTRIBUTES},
            [
                Filter("S", cond(Comparison("a", ">", 10))),
                Filter("S", cond(Comparison("a", "<", 0))),
            ],
        )
        assert p.covers(Datagram("S", {"a": 11}))
        assert p.covers(Datagram("S", {"a": -1}))
        assert not p.covers(Datagram("S", {"a": 5}))

    def test_stream_without_filters_is_unconditional(self):
        p = Profile({"S": ALL_ATTRIBUTES})
        assert p.covers(Datagram("S", {"anything": 1}))

    def test_unrequested_stream_not_covered(self):
        p = Profile({"S": ALL_ATTRIBUTES})
        assert not p.covers(Datagram("T", {"a": 1}))

    def test_apply_projects(self):
        p = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("b", ">", 0)))])
        out = p.apply(Datagram("S", {"a": 1, "b": 5}))
        assert out is not None
        assert dict(out.payload) == {"a": 1}

    def test_apply_none_when_uncovered(self):
        p = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("b", ">", 0)))])
        assert p.apply(Datagram("S", {"a": 1, "b": -5})) is None

    def test_apply_all_attributes_keeps_payload(self):
        p = Profile({"S": ALL_ATTRIBUTES})
        d = Datagram("S", {"a": 1, "b": 2})
        assert p.apply(d) == d


class TestSubsumption:
    def test_identical_profiles_subsume(self):
        p = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 1)))])
        assert p.subsumes(p)

    def test_wider_filter_subsumes(self):
        broad = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 0)))])
        narrow = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 9)))])
        assert broad.subsumes(narrow)
        assert not narrow.subsumes(broad)

    def test_projection_must_cover(self):
        big = Profile({"S": {"a", "b"}})
        small = Profile({"S": {"a"}})
        assert big.subsumes(small)
        assert not small.subsumes(big)

    def test_all_attributes_absorbs(self):
        every = Profile({"S": ALL_ATTRIBUTES})
        some = Profile({"S": {"a"}})
        assert every.subsumes(some)
        assert not some.subsumes(every)

    def test_missing_stream_fails(self):
        p = Profile({"S": ALL_ATTRIBUTES})
        q = Profile({"S": ALL_ATTRIBUTES, "T": ALL_ATTRIBUTES})
        assert q.subsumes(p)
        assert not p.subsumes(q)

    def test_unconditional_request_not_subsumed_by_filtered(self):
        filtered = Profile({"S": ALL_ATTRIBUTES}, [Filter("S", cond(Comparison("a", ">", 0)))])
        everything = Profile({"S": ALL_ATTRIBUTES})
        assert everything.subsumes(filtered)
        assert not filtered.subsumes(everything)


class TestMerge:
    def test_merge_unions_streams(self):
        a = Profile({"R": {"x"}})
        b = Profile({"S": {"y"}})
        merged = a.merge(b)
        assert merged.streams == frozenset({"R", "S"})

    def test_merge_unions_projections(self):
        a = Profile({"S": {"x"}})
        b = Profile({"S": {"y"}})
        assert a.merge(b).projection_for("S") == frozenset({"x", "y"})

    def test_merge_all_attributes_absorbs(self):
        a = Profile({"S": ALL_ATTRIBUTES})
        b = Profile({"S": {"y"}})
        assert a.merge(b).projection_for("S") == ALL_ATTRIBUTES

    def test_merge_keeps_both_filters(self):
        fa = Filter("S", cond(Comparison("a", ">", 0)))
        fb = Filter("S", cond(Comparison("a", "<", -5)))
        merged = Profile({"S": {"a"}}, [fa]).merge(Profile({"S": {"a"}}, [fb]))
        assert set(merged.filters) == {fa, fb}

    def test_merge_unconditional_absorbs_filters(self):
        filtered = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 0)))])
        unconditional = Profile({"S": {"a"}})
        merged = filtered.merge(unconditional)
        assert merged.filters_for("S") == []

    def test_merge_subsumes_both(self):
        a = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 5)))])
        b = Profile({"S": {"b"}}, [Filter("S", cond(Comparison("b", "<", 1)))])
        merged = a.merge(b)
        assert merged.subsumes(a)
        assert merged.subsumes(b)

    def test_merge_dedupes_filters(self):
        f = Filter("S", cond(Comparison("a", ">", 0)))
        merged = Profile({"S": {"a"}}, [f]).merge(Profile({"S": {"a"}}, [f]))
        assert len(merged.filters) == 1


class TestMisc:
    def test_restricted_to(self):
        p = Profile(
            {"R": {"x"}, "S": {"y"}},
            [Filter("R", cond(Comparison("x", ">", 0)))],
            subscriber="u1",
        )
        r = p.restricted_to("R")
        assert r.streams == frozenset({"R"})
        assert len(r.filters) == 1
        assert r.subscriber == "u1"

    def test_size_estimate_positive(self):
        p = Profile({"S": {"a"}}, [Filter("S", cond(Comparison("a", ">", 0)))])
        assert p.size_estimate() > 0

    def test_equality_ignores_subscriber(self):
        a = Profile({"S": {"a"}}, subscriber="u1")
        b = Profile({"S": {"a"}}, subscriber="u2")
        assert a == b
