"""The unicast baseline: same deliveries, more traffic."""

import random

import pytest

from repro.baselines.unicast import UnicastCostModel, UnicastNetwork
from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork, NetworkError
from repro.cql.parser import parse_query
from repro.cql.predicates import Comparison, Conjunction
from repro.cql.schema import Attribute, StreamSchema

SCHEMA = StreamSchema(
    "S",
    [Attribute("a", "int", 0, 100), Attribute("b", "float", 0, 1)],
    rate=2.0,
)


class TestUnicastNetwork:
    def test_deliveries_match_cbn(self, line_tree):
        profiles = [
            Profile({"S": {"a"}}),
            Profile(
                {"S": ALL_ATTRIBUTES},
                [Filter("S", Conjunction.from_atoms([Comparison("a", ">", 50)]))],
            ),
        ]
        placements = [4, 3]
        datagrams = [
            Datagram("S", {"a": 10, "b": 0.5}, 0.0),
            Datagram("S", {"a": 90, "b": 0.5}, 1.0),
        ]

        def run(network_cls):
            net = network_cls(line_tree)
            net.advertise("S", 0, SCHEMA)
            for index, (profile, node) in enumerate(zip(profiles, placements)):
                net.subscribe(profile, node, f"u{index}")
            out = []
            for datagram in datagrams:
                out.extend(
                    (d.subscription_id, tuple(sorted(d.datagram.payload.items())))
                    for d in net.publish(datagram, 0)
                )
            return sorted(out), net.data_stats.total_bytes()

        cbn_deliveries, cbn_bytes = run(ContentBasedNetwork)
        uni_deliveries, uni_bytes = run(UnicastNetwork)
        assert cbn_deliveries == uni_deliveries
        assert cbn_bytes <= uni_bytes

    def test_shared_link_charged_per_subscription(self, line_tree):
        net = UnicastNetwork(line_tree)
        net.advertise("S", 0, SCHEMA)
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        net.subscribe(Profile({"S": {"a"}}), 4, "u2")
        net.publish(Datagram("S", {"a": 1, "b": 0.1}, 0.0), 0)
        # Two identical flows: the first link carries the content twice.
        assert net.data_stats.usage(0, 1).messages == 2

    def test_cbn_shares_what_unicast_duplicates(self, line_tree):
        def run(cls, n_subs):
            net = cls(line_tree)
            net.advertise("S", 0, SCHEMA)
            for index in range(n_subs):
                net.subscribe(Profile({"S": {"a"}}), 4, f"u{index}")
            net.publish(Datagram("S", {"a": 1, "b": 0.1}, 0.0), 0)
            return net.data_stats.total_bytes()

        for n in (2, 5, 10):
            assert run(UnicastNetwork, n) == pytest.approx(
                n * run(ContentBasedNetwork, n)
            )

    def test_unsubscribe(self, line_tree):
        net = UnicastNetwork(line_tree)
        net.advertise("S", 0, SCHEMA)
        net.subscribe(Profile({"S": {"a"}}), 4, "u1")
        net.unsubscribe("u1")
        assert net.publish(Datagram("S", {"a": 1}, 0.0), 0) == []
        with pytest.raises(NetworkError):
            net.unsubscribe("u1")

    def test_unknown_nodes_rejected(self, line_tree):
        net = UnicastNetwork(line_tree)
        with pytest.raises(NetworkError):
            net.subscribe(Profile({"S": {"a"}}), 99)
        with pytest.raises(NetworkError):
            net.publish(Datagram("S", {}), 99)


class TestUnicastCostModel:
    @pytest.fixture
    def model(self, sensor_catalog, line_tree):
        return UnicastCostModel(line_tree, sensor_catalog)

    def test_source_rate_filtered_and_projected(self, model):
        full = parse_query("SELECT T.temperature, T.humidity FROM Temp T")
        filtered = parse_query(
            "SELECT T.temperature FROM Temp T WHERE T.temperature >= 10"
        )
        assert model.source_rate(filtered, "Temp") < model.source_rate(full, "Temp")

    def test_query_cost_scales_with_distance(self, model):
        query = parse_query("SELECT T.temperature FROM Temp T")
        near = model.query_cost(query, {"Temp": 0}, 1, 2)
        far = model.query_cost(query, {"Temp": 0}, 2, 4)
        assert far > near

    def test_total_cost_is_sum(self, model):
        query = parse_query("SELECT T.temperature FROM Temp T")
        single = model.query_cost(query, {"Temp": 0}, 2, 4)
        total = model.total_cost(
            [(query, 2, 4), (query, 2, 4)], {"Temp": 0}
        )
        assert total == pytest.approx(2 * single)
