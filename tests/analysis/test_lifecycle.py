"""COS81x lifecycle extraction: machines, guard narrowing, canaries."""

from __future__ import annotations

import pytest

from repro.analysis.lifecycle import (
    Transition,
    check_lifecycle,
    extract_lifecycle,
)
from repro.analysis.selfcheck import check_modules, default_package_dir
from repro.analysis.source import load_package, module_from_text


@pytest.fixture(scope="module")
def modules():
    return load_package(default_package_dir())


@pytest.fixture(scope="module")
def machines(modules):
    return {m.name: m for m in extract_lifecycle(modules)}


def mutate(modules, rel_suffix, old, new, count=1):
    out = []
    hit = False
    for module in modules:
        if module.rel.endswith(rel_suffix):
            assert module.text.count(old) == count, rel_suffix
            out.append(module_from_text(module.text.replace(old, new), module.rel))
            hit = True
        else:
            out.append(module)
    assert hit, f"no module matches {rel_suffix}"
    return out


class TestExtraction:
    def test_at_least_three_machines(self, machines):
        assert {
            "QueryStatus",
            "uplink-receiver",
            "failure-detector",
            "node-supervision",
        } <= set(machines)

    def test_query_status_machine(self, machines):
        m = machines["QueryStatus"]
        assert m.initial == ["ACTIVE"]
        assert Transition("quarantine_partitioned", "ACTIVE", "DEGRADED") in m.transitions
        assert Transition("heal_partition", "DEGRADED", "ACTIVE") in m.transitions
        # The quarantine guard skips non-ACTIVE handles, so there is no
        # DEGRADED->DEGRADED quarantine edge.
        assert (
            Transition("quarantine_partitioned", "DEGRADED", "DEGRADED")
            not in m.transitions
        )

    def test_uplink_receiver_machine(self, machines):
        m = machines["uplink-receiver"]
        assert m.initial == ["UNSEEN"]
        assert set(m.terminal) == {"RELEASED", "ABANDONED"}
        assert m.targets("arrive", "UNSEEN") == ["BUFFERED"]
        assert m.targets("release", "BUFFERED") == ["RELEASED"]
        assert m.targets("abandon", "GAP") == ["ABANDONED"]

    def test_failure_detector_machine(self, machines):
        m = machines["failure-detector"]
        assert m.targets("suspect", "MONITORED") == ["SUSPECTED"]
        assert set(m.targets("deregister", "SUSPECTED")) == {"UNKNOWN"}

    def test_every_machine_reaches_every_state(self, machines):
        for m in machines.values():
            assert m.reachable() == set(m.states), m.name


class TestGuardNarrowing:
    def test_early_return_guard_narrows_from_set(self):
        module = module_from_text(
            "from __future__ import annotations\n"
            "import enum\n"
            "class Phase(enum.Enum):\n"
            "    A = 'a'\n"
            "    B = 'b'\n"
            "class Holder:\n"
            "    phase: Phase = Phase.A\n"
            "def promote(h):\n"
            "    if h.phase is not Phase.A:\n"
            "        return\n"
            "    h.phase = Phase.B\n",
            "pkg/phases.py",
        )
        (machine,) = extract_lifecycle([module], specs=())
        assert machine.name == "Phase"
        assert machine.transitions == [Transition("promote", "A", "B")]

    def test_if_branch_narrows_from_set(self):
        module = module_from_text(
            "from __future__ import annotations\n"
            "import enum\n"
            "class Phase(enum.Enum):\n"
            "    A = 'a'\n"
            "    B = 'b'\n"
            "class Holder:\n"
            "    phase: Phase = Phase.A\n"
            "def flip(h):\n"
            "    if h.phase is Phase.B:\n"
            "        h.phase = Phase.A\n"
            "    else:\n"
            "        h.phase = Phase.B\n",
            "pkg/phases.py",
        )
        (machine,) = extract_lifecycle([module], specs=())
        assert set(machine.transitions) == {
            Transition("flip", "B", "A"),
            Transition("flip", "A", "B"),
        }

    def test_membership_guard_narrows(self):
        module = module_from_text(
            "from __future__ import annotations\n"
            "import enum\n"
            "class Phase(enum.Enum):\n"
            "    A = 'a'\n"
            "    B = 'b'\n"
            "    C = 'c'\n"
            "class Holder:\n"
            "    phase: Phase = Phase.A\n"
            "def promote(h):\n"
            "    if h.phase not in (Phase.A, Phase.B):\n"
            "        return\n"
            "    h.phase = Phase.C\n",
            "pkg/phases.py",
        )
        (machine,) = extract_lifecycle([module], specs=())
        assert set(machine.transitions) == {
            Transition("promote", "A", "C"),
            Transition("promote", "B", "C"),
        }

    def test_frozenset_membership_guard_narrows(self):
        # `in frozenset((...))` reads identically to the bare-tuple
        # form at runtime; the extractor must narrow it the same way
        # instead of over-approximating to every state.
        module = module_from_text(
            "from __future__ import annotations\n"
            "import enum\n"
            "class Phase(enum.Enum):\n"
            "    A = 'a'\n"
            "    B = 'b'\n"
            "    C = 'c'\n"
            "class Holder:\n"
            "    phase: Phase = Phase.A\n"
            "def demote(h):\n"
            "    if h.phase in frozenset((Phase.B, Phase.C)):\n"
            "        h.phase = Phase.A\n",
            "pkg/phases.py",
        )
        (machine,) = extract_lifecycle([module], specs=())
        assert set(machine.transitions) == {
            Transition("demote", "B", "A"),
            Transition("demote", "C", "A"),
        }


class TestPristine:
    def test_package_lifecycle_is_clean(self, modules):
        assert check_lifecycle(modules).is_clean


class TestCanaries:
    def test_unproduced_enum_member_fires_cos812(self, modules):
        """A QueryStatus member no code path ever assigns is dead
        protocol surface."""
        mutated = mutate(
            modules,
            "system/cosmos.py",
            '    DEGRADED = "degraded"\n',
            '    DEGRADED = "degraded"\n    REBUILDING = "rebuilding"\n',
        )
        report = check_lifecycle(mutated)
        assert report.codes() == ["COS812"]
        assert "REBUILDING" in report.render()
        assert check_modules(mutated).has("COS812")

    def test_removing_every_heal_path_fires_cos813(self, modules):
        """With both DEGRADED->ACTIVE assignments gone (partition heal
        and migration resume), DEGRADED becomes a trap state the model
        forbids."""
        mutated = mutate(
            modules,
            "system/reliability.py",
            "        handle.status = QueryStatus.ACTIVE\n",
            "",
        )
        mutated = mutate(
            mutated,
            "system/loadmgr.py",
            "        handle.status = QueryStatus.ACTIVE\n",
            "",
        )
        report = check_lifecycle(mutated)
        assert report.codes() == ["COS813"]
        assert "DEGRADED" in report.render()

    def test_one_surviving_heal_path_keeps_degraded_exitable(self, modules):
        """The migration resume path alone still exits DEGRADED, so
        deleting only heal_partition's assignment stays clean — the two
        layers genuinely back each other up."""
        mutated = mutate(
            modules,
            "system/reliability.py",
            "        handle.status = QueryStatus.ACTIVE\n",
            "",
        )
        assert check_lifecycle(mutated).is_clean

    def test_missing_spec_anchor_fires_cos812(self, modules):
        """Renaming the suspicion mutation breaks the anchored
        MONITORED->SUSPECTED transition (and SUSPECTED turns
        unreachable)."""
        mutated = mutate(
            modules,
            "system/reliability.py",
            "self._suspected.add",
            "self._suspected_nodes_add",
        )
        report = check_lifecycle(mutated)
        assert report.has("COS812")
        assert "suspect" in report.render()
