"""COS905: chaos-corpus transition coverage of the protocol model."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lifecycle import extract_lifecycle
from repro.analysis.model import build_product, explore
from repro.analysis.modelcov import (
    SILENT_LABELS,
    check_coverage,
    coverage,
    default_coverage_baseline,
    load_corpus,
    summarize,
)
from repro.analysis.selfcheck import default_package_dir
from repro.analysis.source import Baseline, load_package


@pytest.fixture(scope="module")
def explored():
    modules = load_package(default_package_dir())
    machines = extract_lifecycle(modules)
    model = build_product(machines, modules)
    return model, explore(model)


def _artifact(tmp_path, name, seeds):
    path = tmp_path / name
    path.write_text(json.dumps({"seeds": seeds, "totals": {}, "ok": True}))
    return path


class TestCorpusLoading:
    def test_aggregates_across_artifacts(self, tmp_path):
        first = _artifact(
            tmp_path,
            "a.json",
            [
                {
                    "seed": 0,
                    "conformance_transitions": {
                        "uplink-receiver": {"arrive UNSEEN->BUFFERED": 2}
                    },
                }
            ],
        )
        second = _artifact(
            tmp_path,
            "b.json",
            [
                {
                    "seed": 1,
                    "conformance_transitions": {
                        "uplink-receiver": {"arrive UNSEEN->BUFFERED": 3},
                        "node-supervision": {"crash LIVE->CRASHED": 1},
                    },
                }
            ],
        )
        corpus = load_corpus([first, second])
        assert corpus.artifacts == 2
        assert corpus.seeds == 2
        assert corpus.skipped == 0
        assert corpus.counts["uplink-receiver"] == {
            "arrive UNSEEN->BUFFERED": 5
        }
        assert corpus.counts["node-supervision"] == {
            "crash LIVE->CRASHED": 1
        }

    def test_directory_input(self, tmp_path):
        _artifact(
            tmp_path,
            "sweep.json",
            [{"seed": 0, "conformance_transitions": {"m": {"k": 1}}}],
        )
        corpus = load_corpus([tmp_path])
        assert corpus.artifacts == 1
        assert corpus.counts == {"m": {"k": 1}}

    def test_old_artifacts_are_skipped_not_fatal(self, tmp_path):
        pre = _artifact(tmp_path, "old.json", [{"seed": 0, "ok": True}])
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        corpus = load_corpus([pre, bad])
        assert corpus.artifacts == 1  # parsed, but contributed nothing
        assert corpus.seeds == 0
        assert corpus.skipped == 2


class TestCoverage:
    def test_empty_corpus_everything_cold(self, explored, tmp_path):
        model, exploration = explored
        corpus = load_corpus([])
        results = coverage(model, exploration, corpus)
        assert {r.machine for r in results} == {
            c.machine.name for c in model.components
        }
        for result in results:
            assert result.exercised == {}
            assert result.cold == result.total
        report = check_coverage(results, corpus)
        assert all(d.code == "COS905" for d in report)
        assert len(report) == sum(len(r.total) for r in results)

    def test_exercised_keys_leave_the_cold_set(self, explored, tmp_path):
        model, exploration = explored
        path = _artifact(
            tmp_path,
            "one.json",
            [
                {
                    "seed": 0,
                    "conformance_transitions": {
                        "uplink-receiver": {"arrive UNSEEN->BUFFERED": 7}
                    },
                }
            ],
        )
        corpus = load_corpus([path])
        results = coverage(model, exploration, corpus)
        (uplink,) = [r for r in results if r.machine == "uplink-receiver"]
        assert uplink.exercised == {"arrive UNSEEN->BUFFERED": 7}
        assert "arrive UNSEEN->BUFFERED" not in uplink.cold

    def test_silent_and_epsilon_labels_not_demanded(self, explored):
        model, exploration = explored
        results = coverage(model, exploration, load_corpus([]))
        (detector,) = [r for r in results if r.machine == "failure-detector"]
        assert any(key.startswith("heartbeat ") for key in detector.silent)
        assert any(key.startswith("register ") for key in detector.epsilon)
        for key in detector.silent + detector.epsilon:
            assert key not in detector.total
        assert "failure-detector" in SILENT_LABELS

    def test_summary_gating(self, explored):
        model, exploration = explored
        corpus = load_corpus([])
        results = coverage(model, exploration, corpus)
        total = sum(len(r.total) for r in results)
        ungated = summarize(results, corpus)
        assert ungated["transitions_total"] == total
        assert ungated["coverage_raw"] == 0.0
        assert ungated["coverage_gated"] == 0.0
        forgiven_all = summarize(results, corpus, forgiven=total)
        assert forgiven_all["coverage_gated"] == 0.0  # nothing exercised
        assert forgiven_all["transitions_baselined"] == total


class TestCheckedInBaseline:
    def test_ci_corpus_is_fully_gated(self, explored):
        """The committed ledger must absorb exactly the cold remainder
        of the committed sweep artifacts — no more (stale entries), no
        less (un-baselined COS905)."""
        model, exploration = explored
        artifacts = [
            default_coverage_baseline().parent.parent / name
            for name in (
                "BENCH_chaos.json",
                "BENCH_chaos_recovery.json",
                "BENCH_chaos_migration.json",
                "BENCH_chaos_scale.json",
            )
        ]
        present = [path for path in artifacts if path.is_file()]
        if len(present) < len(artifacts):
            pytest.skip("chaos sweep artifacts not generated")
        corpus = load_corpus(present)
        if corpus.seeds == 0:
            pytest.skip("artifacts predate conformance_transitions")
        results = coverage(model, exploration, corpus)
        report = check_coverage(results, corpus)
        baseline = Baseline.load(default_coverage_baseline())
        leftover, forgiven, stale = baseline.audit(report)
        assert len(leftover) == 0, [d.message for d in leftover]
        assert stale == [], stale
        summary = summarize(results, corpus, forgiven)
        assert summary["coverage_gated"] >= 0.90
