"""COS7xx style pass (the migrated L001-L003 rules)."""

from repro.analysis.source import module_from_text
from repro.analysis.style import check_style

_HEADER = "from __future__ import annotations\n"


def _codes(text):
    return check_style(module_from_text(text, "repro/m.py")).codes()


class TestMutableDefaults:
    def test_literal_defaults_flagged(self):
        assert _codes(_HEADER + "def f(x=[]):\n    pass\n") == ["COS701"]
        assert _codes(_HEADER + "def f(x={}):\n    pass\n") == ["COS701"]
        assert _codes(_HEADER + "def f(*, x=set()):\n    pass\n") == ["COS701"]

    def test_constructor_defaults_flagged(self):
        assert _codes(_HEADER + "def f(x=list()):\n    pass\n") == ["COS701"]
        assert _codes(_HEADER + "def f(x=dict()):\n    pass\n") == ["COS701"]

    def test_none_default_clean(self):
        assert _codes(_HEADER + "def f(x=None):\n    pass\n") == []

    def test_immutable_defaults_clean(self):
        assert _codes(_HEADER + "def f(x=(), y=0, z='s'):\n    pass\n") == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        text = _HEADER + (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
        )
        assert _codes(text) == ["COS702"]

    def test_named_except_clean(self):
        text = _HEADER + (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert _codes(text) == []


class TestFutureAnnotations:
    def test_missing_import_flagged(self):
        assert _codes("x = 1\n") == ["COS703"]

    def test_present_import_clean(self):
        assert _codes(_HEADER + "x = 1\n") == []

    def test_empty_module_clean(self):
        assert _codes("") == []
        assert _codes("\n\n") == []
