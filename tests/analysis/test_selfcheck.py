"""The unified source-lint driver, plus the mutation canaries.

The canaries inject a known hazard into a *copy* of a real package
module and demand the analyzer flags it with the right code, while the
pristine copy stays clean — an analyzer that cannot fail is not
checking anything.
"""

from repro.analysis.selfcheck import (
    check_package,
    check_source_module,
    default_baseline_path,
    default_package_dir,
)
from repro.analysis.source import Baseline, load_source, module_from_text


def _load(rel):
    path = default_package_dir() / rel
    return load_source(path, f"repro/{rel}")


class TestPackageSelfCheck:
    def test_package_is_clean_after_pragmas(self):
        report, _ = check_package(default_package_dir())
        assert report.is_clean, report.render()

    def test_checked_in_baseline_parses(self):
        path = default_baseline_path()
        assert path.is_file()
        Baseline.load(path)  # must not raise

    def test_code_filter_restricts_families(self):
        report, _ = check_package(
            default_package_dir(), codes=["COS7xx"], respect_pragmas=False
        )
        assert all(code.startswith("COS7") for code in report.codes())

    def test_pragmas_are_load_bearing(self):
        # At least one finding in the package is pragma-suppressed; with
        # pragmas off it must reappear (proves suppression is real, not
        # that the checks never fire on this codebase).
        with_pragmas, _ = check_package(default_package_dir())
        without, _ = check_package(
            default_package_dir(), respect_pragmas=False
        )
        assert len(without) > len(with_pragmas)

    def test_baseline_absorbs_findings(self):
        without, _ = check_package(
            default_package_dir(), respect_pragmas=False
        )
        assert not without.is_clean
        baseline = Baseline.from_report(without)
        report, forgiven = check_package(
            default_package_dir(), baseline=baseline, respect_pragmas=False
        )
        assert report.is_clean and forgiven == len(without)


class TestMutationCanaries:
    def test_pristine_trace_module_is_clean(self):
        module = _load("sim/trace.py")
        assert check_source_module(module).is_clean

    def test_unsorted_set_iteration_in_trace_path(self):
        # Canary (a): emit trace lines in set order.
        pristine = _load("sim/trace.py")
        mutated = pristine.text.replace(
            "    def render(self) -> str:\n"
            '        return "\\n".join(self._lines)\n',
            "    def render(self) -> str:\n"
            "        for line in set(self._lines):\n"
            "            self.emit(line)\n"
            '        return "\\n".join(self._lines)\n',
        )
        assert mutated != pristine.text, "canary patch did not apply"
        module = module_from_text(mutated, pristine.rel)
        report = check_source_module(module)
        assert report.codes() == ["COS503"]

    def test_wall_clock_in_sim_module(self):
        # Canary (b): timestamp trace records with the host clock.
        pristine = _load("sim/trace.py")
        mutated = pristine.text.replace(
            "import hashlib\n",
            "import hashlib\nimport time\n",
        ).replace(
            "    def record(self, line: str) -> None:\n",
            "    def record(self, line: str) -> None:\n"
            "        self._stamp = time.time()\n",
        )
        assert "time.time()" in mutated, "canary patch did not apply"
        module = module_from_text(mutated, pristine.rel)
        report = check_source_module(module)
        assert report.codes() == ["COS502"]

    def test_new_enum_member_with_uncovered_dispatch(self):
        # Canary (c): add QueryStatus.REBUILDING plus a dispatch that
        # only handles the old members.
        pristine = _load("system/cosmos.py")
        assert check_source_module(pristine).is_clean
        mutated = pristine.text + (
            "\n\n"
            "def _canary_dispatch(handle):\n"
            "    if handle.status is QueryStatus.ACTIVE:\n"
            "        return 'a'\n"
            "    elif handle.status is QueryStatus.DEGRADED:\n"
            "        return 'd'\n"
        )
        module = module_from_text(mutated, pristine.rel)
        assert check_source_module(module).is_clean, (
            "dispatch over all current members must be exhaustive"
        )
        grown = mutated.replace(
            'DEGRADED = "degraded"',
            'DEGRADED = "degraded"\n    REBUILDING = "rebuilding"',
        )
        assert grown != mutated, "canary patch did not apply"
        module = module_from_text(grown, pristine.rel)
        report = check_source_module(module)
        assert report.codes() == ["COS601"]
        assert "REBUILDING" in report.diagnostics[0].message
