"""The independent difference-bound solver behind the COS2xx checks."""

from repro.analysis.intervals import (
    ConstraintSystem,
    implies,
    is_unsatisfiable,
    solve,
    vacuous_atoms,
)
from repro.cql.predicates import (
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
)


def conj(*atoms):
    return Conjunction.from_atoms(list(atoms))


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert not is_unsatisfiable(Conjunction())

    def test_empty_interval(self):
        assert is_unsatisfiable(conj(Comparison("S.a", ">", 5), Comparison("S.a", "<", 3)))

    def test_point_exclusion(self):
        assert is_unsatisfiable(conj(Comparison("S.a", "=", 5), Comparison("S.a", "!=", 5)))

    def test_transitive_difference_chain(self):
        # a <= b - 1, b <= c - 1, but a >= c: unsat only via the chain.
        chain = conj(
            DifferenceConstraint("S.a", "S.b", Interval(None, -1)),
            DifferenceConstraint("S.b", "S.c", Interval(None, -1)),
            DifferenceConstraint("S.a", "S.c", Interval(0, None)),
        )
        assert is_unsatisfiable(chain)
        # The pairwise legacy check cannot see this (solver is stronger).
        assert chain.is_satisfiable()

    def test_strict_zero_cycle(self):
        # a - b < 0 and b - a <= 0 has no model.
        cycle = conj(
            DifferenceConstraint("S.a", "S.b", Interval(None, 0, hi_strict=True)),
            DifferenceConstraint("S.b", "S.a", Interval(None, 0)),
        )
        assert is_unsatisfiable(cycle)

    def test_equality_link_propagates_bounds(self):
        linked = conj(
            JoinPredicate("S.a", "S.b"),
            Comparison("S.a", ">", 10),
            Comparison("S.b", "<", 5),
        )
        assert is_unsatisfiable(linked)

    def test_seed_domains(self):
        pred = conj(Comparison("S.a", ">", 100))
        assert not is_unsatisfiable(pred)
        assert is_unsatisfiable(pred, {"S.a": Interval(0, 50)})

    def test_string_equality(self):
        assert is_unsatisfiable(
            conj(Comparison("S.a", "=", "x"), Comparison("S.a", "=", "y"))
        )
        assert not is_unsatisfiable(conj(Comparison("S.a", "=", "x")))


class TestSolution:
    def test_tightened_domains(self):
        system = ConstraintSystem(
            conj(
                Comparison("S.a", ">=", 0),
                DifferenceConstraint("S.b", "S.a", Interval(3, None)),
                Comparison("S.b", "<=", 10),
            )
        )
        assert system.satisfiable
        # b >= a + 3 >= 3, and a <= b - 3 <= 7.
        assert system.domain("S.b").lo == 3
        assert system.domain("S.a").hi == 7

    def test_tightest_diff(self):
        system = ConstraintSystem(
            conj(
                DifferenceConstraint("S.a", "S.b", Interval(None, -1)),
                DifferenceConstraint("S.b", "S.c", Interval(None, -2)),
            )
        )
        diff = system.tightest_diff("S.a", "S.c")
        assert diff.hi == -3

    def test_solution_object(self):
        sol = solve(conj(Comparison("S.a", ">", 3), Comparison("S.a", "!=", 7)))
        assert sol.satisfiable
        assert 7 in sol.excluded_values("S.a")
        assert sol.domain("S.a").lo == 3


class TestImplication:
    def test_interval_implication(self):
        assert implies(conj(Comparison("S.a", ">", 5)), conj(Comparison("S.a", ">", 3)))
        assert not implies(conj(Comparison("S.a", ">", 3)), conj(Comparison("S.a", ">", 5)))

    def test_chained_difference_implication(self):
        premise = conj(
            DifferenceConstraint("S.a", "S.b", Interval(None, -1)),
            DifferenceConstraint("S.b", "S.c", Interval(None, -1)),
        )
        conclusion = conj(DifferenceConstraint("S.a", "S.c", Interval(None, 0)))
        assert implies(premise, conclusion)
        # Legacy pairwise implication cannot chain.
        assert not premise.implies(conclusion)

    def test_unknown_conclusion_term_not_implied(self):
        assert not implies(conj(Comparison("S.a", ">", 5)), conj(Comparison("S.b", ">", 3)))

    def test_seed_can_discharge_conclusion(self):
        assert implies(
            conj(Comparison("S.a", ">", 5)),
            conj(Comparison("S.b", ">=", 0)),
            {"S.b": Interval(0, 10)},
        )


class TestVacuousAtoms:
    def test_redundant_bound(self):
        atoms = [Comparison("S.a", ">", 5), Comparison("S.a", ">", 3)]
        assert vacuous_atoms(atoms) == [atoms[1]]

    def test_independent_atoms_are_kept(self):
        atoms = [Comparison("S.a", ">", 5), Comparison("S.b", ">", 3)]
        assert vacuous_atoms(atoms) == []
