"""COS3xx: seeded plan defects (broken groups) must be flagged."""

from repro.analysis.plans import check_group, check_groups
from repro.core.grouping import GroupingOptimizer, QueryGroup
from repro.cql.parser import parse_query


def _group(rep, members, gid="g0"):
    return QueryGroup(gid, list(members), rep, representative_rate=1.0)


class TestCheckGroup:
    def test_real_grouping_is_clean(self, auction_catalog, q1, q2, q3):
        optimizer = GroupingOptimizer(auction_catalog)
        for query in (q1, q2, q3):
            optimizer.add(query)
        assert check_groups(optimizer.groups, auction_catalog).is_clean

    def test_representative_must_contain_member(self, sensor_catalog):
        member = parse_query(
            "SELECT T.station FROM Temp [Range 10 Seconds] T", name="m"
        )
        rep = parse_query(
            "SELECT T.station FROM Temp [Range 5 Seconds] T "
            "WHERE T.station < 3",
            name="rep",
        )
        report = check_group(_group(rep, [member]), sensor_catalog)
        assert report.has("COS301")

    def test_member_outputs_must_be_reproducible(self, sensor_catalog):
        member = parse_query(
            "SELECT T.station, T.temperature FROM Temp [Now] T", name="m"
        )
        rep = parse_query("SELECT T.station FROM Temp [Now] T", name="rep")
        report = check_group(_group(rep, [member]), sensor_catalog)
        assert report.has("COS302")

    def test_residual_attributes_must_be_carried(self, sensor_catalog):
        member = parse_query(
            "SELECT T.station FROM Temp [Now] T WHERE T.humidity > 50",
            name="m",
        )
        rep = parse_query("SELECT T.station FROM Temp [Now] T", name="rep")
        report = check_group(_group(rep, [member]), sensor_catalog)
        assert report.has("COS303")

    def test_identity_group_is_clean(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station, T.humidity FROM Temp [Range 5 Seconds] T "
            "WHERE T.humidity > 50",
            name="m",
        )
        report = check_group(_group(query, [query]), sensor_catalog)
        assert report.is_clean

    def test_widened_window_needs_timestamps(self, sensor_catalog):
        # A representative with a widened join window must output the
        # member's timestamps for the window residual to be evaluable.
        member = parse_query(
            "SELECT T.station, W.speed FROM Temp [Range 5 Seconds] T, "
            "Wind [Now] W WHERE T.station = W.station",
            name="m",
        )
        rep = parse_query(
            "SELECT T.station, W.speed FROM Temp [Range 10 Seconds] T, "
            "Wind [Now] W WHERE T.station = W.station",
            name="rep",
        )
        report = check_group(_group(rep, [member]), sensor_catalog)
        # The residual needs Temp.timestamp / Wind.timestamp which the
        # representative does not project.
        assert report.has("COS303")

    def test_widened_window_with_timestamps_is_clean(self, sensor_catalog):
        member = parse_query(
            "SELECT T.station, T.timestamp, W.timestamp FROM "
            "Temp [Range 5 Seconds] T, Wind [Now] W "
            "WHERE T.station = W.station",
            name="m",
        )
        rep = parse_query(
            "SELECT T.station, T.timestamp, W.timestamp FROM "
            "Temp [Range 10 Seconds] T, Wind [Now] W "
            "WHERE T.station = W.station",
            name="rep",
        )
        report = check_group(_group(rep, [member]), sensor_catalog)
        assert report.is_clean
