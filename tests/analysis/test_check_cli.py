"""The ``repro check`` CLI: --self, --json, --code, pragma/baseline paths."""

import json

import pytest

import repro.analysis
from repro.analysis.selfcheck import check_package, default_package_dir
from repro.analysis.source import Baseline
from repro.cli import run_check


class TestWorkloadMode:
    def test_default_clean_exit(self, capsys):
        assert run_check([]) == 0
        assert "workload" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert run_check(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        for diag in payload["diagnostics"]:
            assert set(diag) == {"file", "line", "code", "severity", "message"}

    def test_bad_code_spec_exits_2(self, capsys):
        assert run_check(["--code", "COS999"]) == 2
        assert "COS999" in capsys.readouterr().err


class TestSelfModeOnPackage:
    def test_self_clean_exit(self, capsys):
        assert run_check(["--self"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_self_strict_still_clean(self):
        assert run_check(["--self", "--strict", "--no-baseline"]) == 0

    def test_self_json_payload_shape(self, capsys):
        assert run_check(["--self", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "diagnostics", "errors", "warnings", "forgiven", "analyzer"
        }
        analyzer = payload["analyzer"]
        names = [entry["name"] for entry in analyzer["passes"]]
        assert names == [
            "load", "purity", "protocol", "style", "flowgraph",
            "lifecycle", "model",
        ]
        assert all(entry["seconds"] >= 0 for entry in analyzer["passes"])
        assert analyzer["wall_seconds"] == pytest.approx(
            sum(entry["seconds"] for entry in analyzer["passes"])
        )

    def test_code_filter_validated(self, capsys):
        assert run_check(["--self", "--code", "bogus"]) == 2
        assert "bad code spec" in capsys.readouterr().err

    def test_write_and_use_baseline(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        args = ["--self", "--write-baseline", "--baseline", str(path)]
        assert run_check(args) == 0
        assert path.is_file()
        Baseline.load(path)  # parses
        assert run_check(["--self", "--baseline", str(path)]) == 0


@pytest.fixture
def scratch_package(tmp_path, monkeypatch):
    """Point ``repro check --self`` at a throwaway package tree."""
    pkg = tmp_path / "scratchpkg"
    pkg.mkdir()
    monkeypatch.setattr(repro.analysis, "default_package_dir", lambda: pkg)
    monkeypatch.setattr(
        repro.analysis,
        "default_baseline_path",
        lambda package=None: tmp_path / "cos-baseline.txt",
    )
    return pkg


class TestSelfModeExitCodes:
    def test_warning_is_0_plain_1_strict(self, scratch_package, capsys):
        # COS703 (missing future annotations) is warning-severity.
        (scratch_package / "m.py").write_text("x = 1\n")
        assert run_check(["--self"]) == 0
        assert run_check(["--self", "--strict"]) == 1
        assert "COS703" in capsys.readouterr().out

    def test_error_is_2(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self"]) == 2
        out = capsys.readouterr().out
        assert "COS502" in out and "scratchpkg/m.py:3" in out

    def test_pragma_suppresses_via_cli(self, scratch_package):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()  # cos: disable=COS502 (scratch)\n"
        )
        assert run_check(["--self", "--strict"]) == 0

    def test_baseline_path_via_cli(self, scratch_package, tmp_path, capsys):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self", "--write-baseline"]) == 0
        assert (tmp_path / "cos-baseline.txt").is_file()
        capsys.readouterr()
        assert run_check(["--self", "--strict"]) == 0
        assert "1 baselined finding(s) suppressed" in capsys.readouterr().out
        # A *new* finding is not forgiven by the old baseline.
        (scratch_package / "n.py").write_text(
            "from __future__ import annotations\n"
            "import os\n"
            "x = os.urandom(4)\n"
        )
        assert run_check(["--self", "--strict"]) == 2

    def test_no_baseline_flag_ignores_ledger(self, scratch_package):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self", "--write-baseline"]) == 0
        assert run_check(["--self"]) == 0
        assert run_check(["--self", "--no-baseline"]) == 2

    def test_code_filter_restricts_output(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "import time\n"
            "t = time.time()\n"
        )
        # Both COS502 and COS703 present; filter to the style family.
        assert run_check(["--self", "--code", "COS7xx", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "COS703" in out and "COS502" not in out

    def test_code_accepts_comma_list(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self", "--code", "COS5xx,COS7xx"]) == 2
        out = capsys.readouterr().out
        assert "COS502" in out and "COS703" in out

    def test_code_flag_is_repeatable(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(
            ["--self", "--code", "COS5xx", "--code", "COS7xx"]
        ) == 2
        out = capsys.readouterr().out
        assert "COS502" in out and "COS703" in out
        # A single spec still behaves as before.
        capsys.readouterr()
        assert run_check(["--self", "--code", "COS5xx"]) == 2
        out = capsys.readouterr().out
        assert "COS502" in out and "COS703" not in out

    def test_json_carries_findings(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["file"] == "scratchpkg/m.py"
        assert diag["line"] == 3
        assert diag["code"] == "COS502"
        assert diag["severity"] == "error"
        assert "clock" in diag["message"]


class TestBaselineSemantics:
    def test_baseline_forgives_exact_count(self):
        report, _ = check_package(
            default_package_dir(), respect_pragmas=False
        )
        assert not report.is_clean
        diag = report.diagnostics[0]
        baseline = Baseline({(diag.source, diag.code): 1})
        kept, forgiven = baseline.filter(report)
        assert forgiven == 1 and len(kept) == len(report) - 1

    def test_audit_reports_stale_remainder(self):
        report, _ = check_package(
            default_package_dir(), respect_pragmas=False
        )
        diag = report.diagnostics[0]
        baseline = Baseline({(diag.source, diag.code): 3, ("gone.py", "COS701"): 1})
        kept, forgiven, stale = baseline.audit(report)
        count = sum(
            1 for d in report
            if (d.source, d.code) == (diag.source, diag.code)
        )
        leftover = 3 - min(3, count)
        expected = [("gone.py", "COS701", 1)]
        if leftover:
            expected.insert(0, (diag.source, diag.code, leftover))
        assert sorted(stale) == sorted(expected)
        assert forgiven == min(3, count)
        assert len(kept) == len(report) - forgiven


class TestStaleBaseline:
    def test_stale_entry_warns_plain_fails_strict(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self", "--write-baseline"]) == 0
        capsys.readouterr()
        # Fix the finding; its ledger entry is now stale.
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
        )
        assert run_check(["--self"]) == 0
        out = capsys.readouterr().out
        assert "COS704" in out and "scratchpkg/m.py" in out
        assert run_check(["--self", "--strict"]) == 1

    def test_matching_entry_is_not_stale(self, scratch_package, capsys):
        (scratch_package / "m.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        assert run_check(["--self", "--write-baseline"]) == 0
        capsys.readouterr()
        assert run_check(["--self", "--strict"]) == 0
        assert "COS704" not in capsys.readouterr().out
