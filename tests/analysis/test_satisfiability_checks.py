"""COS2xx: seeded satisfiability defects must be flagged."""

from repro.analysis.satisfiability import (
    check_dead_profiles,
    check_filter,
    check_predicate,
    solver_subsumes,
)
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.parser import parse_query
from repro.cql.predicates import Comparison, Conjunction


def _filter(*atoms, stream="Temp"):
    return Filter(stream, Conjunction.from_atoms(list(atoms)))


class TestCheckPredicate:
    def test_clean(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T WHERE T.temperature > 30",
            name="q",
        )
        assert check_predicate(query, sensor_catalog).is_clean

    def test_unsatisfiable_where(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T "
            "WHERE T.temperature > 30 AND T.temperature < 10",
            name="q",
        )
        report = check_predicate(query, sensor_catalog)
        assert report.has("COS201")
        [diag] = report.errors
        assert diag.pos is not None  # points at the offending atom

    def test_outside_declared_domain(self, sensor_catalog):
        # Temp.temperature is declared in [-20, 40].
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T WHERE T.temperature > 90",
            name="q",
        )
        report = check_predicate(query, sensor_catalog)
        assert report.has("COS204")
        assert not report.has("COS201")  # satisfiable per se
        assert report.exit_code() == 0  # warning

    def test_cross_attribute_domain_conflict(self, sensor_catalog):
        # Satisfiable standalone, but humidity in [0, 100] makes
        # station = humidity impossible when station must exceed 200.
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T "
            "WHERE T.station = T.humidity AND T.station > 200",
            name="q",
        )
        report = check_predicate(query, sensor_catalog)
        assert report.has("COS204")

    def test_vacuous_conjunct(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T "
            "WHERE T.temperature > 30 AND T.temperature > 10",
            name="q",
        )
        report = check_predicate(query, sensor_catalog)
        assert report.has("COS202")
        [diag] = [d for d in report if d.code == "COS202"]
        assert "> 10" in diag.message


class TestCheckFilter:
    def test_unsatisfiable_filter(self, sensor_catalog):
        filt = _filter(
            Comparison("temperature", ">", 30),
            Comparison("temperature", "<", 10),
        )
        assert check_filter(filt, sensor_catalog).has("COS201")

    def test_filter_outside_domain(self, sensor_catalog):
        filt = _filter(Comparison("temperature", ">", 90))
        report = check_filter(filt, sensor_catalog)
        assert report.has("COS204")

    def test_unknown_stream_is_not_a_cos2_matter(self, sensor_catalog):
        # COS101 is the schema family's job; satisfiability just skips
        # the domain seeds it cannot find.
        filt = Filter(
            "Pressure",
            Conjunction.from_atoms([Comparison("x", ">", 5)]),
        )
        assert check_filter(filt, sensor_catalog).is_clean


class TestDeadProfiles:
    def _profile(self, *atoms):
        return Profile(
            {"Temp": ALL_ATTRIBUTES},
            (_filter(*atoms),) if atoms else (),
        )

    def test_subsumed_later_profile_flagged(self):
        broad = self._profile(Comparison("temperature", ">", 10))
        narrow = self._profile(Comparison("temperature", ">", 30))
        report = check_dead_profiles([("broad", broad), ("narrow", narrow)])
        assert report.has("COS203")
        assert not report.has("COS205")

    def test_install_order_matters(self):
        broad = self._profile(Comparison("temperature", ">", 10))
        narrow = self._profile(Comparison("temperature", ">", 30))
        # The narrow profile first: the broad one is NOT dead (it adds
        # routing decisions), so nothing to report.
        report = check_dead_profiles([("narrow", narrow), ("broad", broad)])
        assert report.is_clean

    def test_solver_subsumes_mirrors_profile_subsumes(self):
        broad = self._profile(Comparison("temperature", ">", 10))
        narrow = self._profile(Comparison("temperature", ">", 30))
        assert solver_subsumes(broad, narrow) == broad.subsumes(narrow)
        assert solver_subsumes(narrow, broad) == narrow.subsumes(broad)

    def test_projection_blocks_subsumption(self):
        broad = Profile({"Temp": frozenset({"station"})}, ())
        narrow = Profile({"Temp": frozenset({"station", "humidity"})}, ())
        # The "broad" filterless profile carries fewer attributes, so it
        # cannot serve the narrow subscriber's projection.
        report = check_dead_profiles([("a", broad), ("b", narrow)])
        assert report.is_clean
