"""COS1xx: seeded schema defects must be flagged, clean queries not."""

from repro.analysis.schema import check_profile, check_query
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.parser import parse_query
from repro.cql.predicates import Comparison, Conjunction


class TestCheckQuery:
    def test_clean_query(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station, T.temperature FROM Temp [Range 10 Seconds] T "
            "WHERE T.temperature > 30",
            name="clean",
        )
        assert check_query(query, sensor_catalog).is_clean

    def test_table1_queries_are_clean(self, auction_catalog, q1, q2, q3):
        for query in (q1, q2, q3):
            assert check_query(query, auction_catalog).is_clean

    def test_unknown_stream(self, sensor_catalog):
        query = parse_query("SELECT P.x FROM Pressure [Now] P", name="q")
        report = check_query(query, sensor_catalog)
        assert report.has("COS101")
        assert report.exit_code() == 2

    def test_unknown_attribute(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T WHERE T.pressure > 5", name="q"
        )
        report = check_query(query, sensor_catalog)
        assert report.has("COS102")
        # The rendered diagnostic points into the query text.
        [diag] = [d for d in report if d.code == "COS102"]
        assert diag.pos is not None and "pressure" in diag.message

    def test_unknown_qualifier(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T WHERE X.station = 1", name="q"
        )
        assert check_query(query, sensor_catalog).has("COS101")

    def test_type_clash_string_vs_numeric(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T WHERE T.temperature = 'hot'",
            name="q",
        )
        assert check_query(query, sensor_catalog).has("COS103")

    def test_mixed_type_equijoin(self, sensor_catalog):
        # Temp.timestamp is numeric; join against a string attribute.
        query = parse_query(
            "SELECT T.station, W.speed FROM Temp [Now] T, Wind [Now] W "
            "WHERE T.station = W.speed AND T.temperature = W.station",
            name="q",
        )
        assert check_query(query, sensor_catalog).is_clean  # all numeric
        from repro.cql.schema import Attribute, Catalog, StreamSchema

        catalog = Catalog(
            [
                StreamSchema("A", [Attribute("x", "int"), Attribute("t", "timestamp")]),
                StreamSchema("B", [Attribute("y", "str"), Attribute("t", "timestamp")]),
            ]
        )
        query = parse_query(
            "SELECT A.x, B.y FROM A [Now] A, B [Now] B WHERE A.x = B.y", name="q"
        )
        assert check_query(query, catalog).has("COS103")

    def test_duplicate_select_item(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station, T.station FROM Temp [Now] T", name="q"
        )
        report = check_query(query, sensor_catalog)
        assert report.has("COS104")
        assert report.exit_code() == 0  # warning only

    def test_cartesian_join_member(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T, Wind [Now] W", name="q"
        )
        assert check_query(query, sensor_catalog).has("COS104")


class TestCheckProfile:
    def test_clean_profile(self, sensor_catalog):
        profile = Profile(
            {"Temp": frozenset({"station", "temperature"})},
            (Filter("Temp", Conjunction.from_atoms([Comparison("temperature", ">", 30)])),),
        )
        assert check_profile(profile, sensor_catalog).is_clean

    def test_unknown_stream(self, sensor_catalog):
        profile = Profile({"Pressure": ALL_ATTRIBUTES}, ())
        assert check_profile(profile, sensor_catalog).has("COS101")

    def test_unknown_projection_attribute(self, sensor_catalog):
        profile = Profile({"Temp": frozenset({"station", "pressure"})}, ())
        assert check_profile(profile, sensor_catalog).has("COS102")

    def test_filter_on_unknown_attribute(self, sensor_catalog):
        profile = Profile(
            {"Temp": ALL_ATTRIBUTES},
            (Filter("Temp", Conjunction.from_atoms([Comparison("pressure", ">", 5)])),),
        )
        assert check_profile(profile, sensor_catalog).has("COS102")

    def test_filter_type_clash(self, sensor_catalog):
        profile = Profile(
            {"Temp": ALL_ATTRIBUTES},
            (Filter("Temp", Conjunction.from_atoms([Comparison("temperature", "=", "hot")])),),
        )
        assert check_profile(profile, sensor_catalog).has("COS103")
