"""Regression: ``tools/lint_repro.py`` keeps its CLI contract as a
thin wrapper over the COS7xx pass (exit 0 clean / 1 findings / 2 no
package, one ``file:line: code message`` per finding)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "lint_repro.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *args],
        capture_output=True,
        text=True,
    )


class TestLintTool:
    def test_clean_package_exits_0(self):
        result = _run()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "lint_repro: clean" in result.stdout

    def test_missing_package_exits_2(self, tmp_path):
        result = _run(str(tmp_path))
        assert result.returncode == 2
        assert "no package" in result.stderr

    def test_findings_exit_1_with_cos7_codes(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(x=[]):\n"
            "    try:\n"
            "        pass\n"
            "    except:\n"
            "        pass\n"
        )
        result = _run(str(tmp_path))
        assert result.returncode == 1
        assert "src/repro/bad.py:1: COS701" in result.stdout
        assert "src/repro/bad.py:4: COS702" in result.stdout
        assert "src/repro/bad.py:1: COS703" in result.stdout
        assert "3 finding(s)" in result.stdout

    def test_wrapper_ignores_pragmas(self, tmp_path):
        # The wrapper reports raw findings, as the standalone lint did;
        # pragma handling belongs to `repro check --self`.
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "from __future__ import annotations\n"
            "def f(x=[]):  # cos: disable=COS701\n"
            "    pass\n"
        )
        result = _run(str(tmp_path))
        assert result.returncode == 1
        assert "COS701" in result.stdout

    def test_wrapper_reports_only_style_family(self, tmp_path):
        # A determinism hazard is out of the wrapper's scope.
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "clock.py").write_text(
            "from __future__ import annotations\n"
            "import time\n"
            "t = time.time()\n"
        )
        result = _run(str(tmp_path))
        assert result.returncode == 0, result.stdout
        assert "COS502" not in result.stdout
