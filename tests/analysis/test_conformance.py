"""Trace conformance: the extracted machines as a dynamic oracle."""

from __future__ import annotations

import pytest

from repro.analysis.conformance import conformance_violations
from repro.analysis.lifecycle import extract_lifecycle
from repro.analysis.selfcheck import default_package_dir
from repro.analysis.source import load_package
from repro.sim import ChaosConfig
from repro.sim.runner import run_chaos


@pytest.fixture(scope="module")
def machines():
    return extract_lifecycle(load_package(default_package_dir()))


class TestConformingTraces:
    def test_empty_trace(self, machines):
        assert conformance_violations([], machines) == []

    def test_full_recovery_exchange(self, machines):
        trace = [
            "inject t=1 S[a=1] seq=0 -> 1 released",
            "drop t=2 S seq=1",
            "inject t=3 S[a=2] seq=2 -> 0 released",
            "punct t=4 S seq<=2 -> 1 gaps",
            "nack t=5 S seq=1 attempt=1",
            "nack t=6 S seq=1 attempt=2",
            "retransmit t=7 S seq=1 -> 2 released",
            "inject t=8 S[a=2] dup seq=2 -> 0 released suppressed",
            "flush 4 tuples -> 4 deliveries",
        ]
        assert conformance_violations(trace, machines) == []

    def test_abandoned_gap(self, machines):
        trace = [
            "drop t=1 S seq=0",
            "inject t=2 S[a=1] seq=1 -> 0 released",
            "nack t=3 S seq=0 attempt=1",
            "abandon t=4 S seq=0 -> 1 released",
        ]
        assert conformance_violations(trace, machines) == []

    def test_crash_suspect_repair_cycle(self, machines):
        trace = [
            "fail_broker t=1 node=4 -> crashed",
            "suspect t=2 node=4",
            "repair t=3 fail_broker node=4 -> retry 2 (unreachable)",
            "repair t=4 fail_broker node=4 -> applied",
        ]
        assert conformance_violations(trace, machines) == []

    def test_degraded_queries_conform_and_count(self, machines):
        trace = [
            "fail_broker t=1 node=4 -> crashed",
            "suspect t=2 node=4",
            "repair t=3 fail_broker node=4 -> degraded [q1,q2]",
        ]
        reliability = {"queries_quarantined": 2, "nodes_suspected": 1}
        assert (
            conformance_violations(trace, machines, reliability, recovery=True)
            == []
        )

    def test_lossy_fault_outcomes(self, machines):
        trace = [
            "inject t=1 S[a=1] -> 2 deliveries",
            "fail_broker t=2 node=3 -> applied",
            "fail_processor t=3 node=5 -> refused (last processor)",
        ]
        assert conformance_violations(trace, machines) == []


class TestViolations:
    def test_arrive_after_release_is_flagged(self, machines):
        trace = [
            "inject t=1 S[a=1] seq=0 -> 1 released",
            "inject t=2 S[a=1] dup seq=0 -> 0 released",
        ]
        (violation,) = conformance_violations(trace, machines)
        assert "uplink-receiver" in violation and "arrive" in violation

    def test_suspect_without_crash_is_flagged(self, machines):
        (violation,) = conformance_violations(
            ["suspect t=1 node=5"], machines
        )
        assert "node-supervision" in violation and "suspect" in violation

    def test_double_quarantine_is_flagged(self, machines):
        trace = [
            "fail_broker t=1 node=4 -> crashed",
            "suspect t=2 node=4",
            "repair t=3 fail_broker node=4 -> degraded [q1]",
            "fail_broker t=5 node=6 -> crashed",
            "suspect t=6 node=6",
            "repair t=7 fail_broker node=6 -> degraded [q1]",
        ]
        (violation,) = conformance_violations(trace, machines)
        assert "QueryStatus" in violation and "q1" in violation

    def test_noncontiguous_nack_attempts_are_flagged(self, machines):
        trace = [
            "drop t=1 S seq=0",
            "inject t=2 S[a=1] seq=1 -> 0 released",
            "nack t=3 S seq=0 attempt=2",
        ]
        (violation,) = conformance_violations(trace, machines)
        assert "attempt 2 observed, expected 1" in violation

    def test_unrecognized_record_is_flagged(self, machines):
        (violation,) = conformance_violations(["wat t=1 huh"], machines)
        assert "unrecognized" in violation

    def test_counter_disagreement_exact(self, machines):
        trace = [
            "drop t=1 S seq=0",
            "inject t=2 S[a=1] seq=1 -> 0 released",
            "nack t=3 S seq=0 attempt=1",
            "retransmit t=4 S seq=0 -> 2 released",
        ]
        reliability = {"retransmits": 3}
        (violation,) = conformance_violations(
            trace, machines, reliability, recovery=True
        )
        assert "retransmits=3" in violation

    def test_counter_disagreement_lower_bound(self, machines):
        trace = [
            "drop t=1 S seq=0",
            "inject t=2 S[a=1] seq=1 -> 0 released",
            "nack t=3 S seq=0 attempt=1",
            "retransmit t=4 S seq=0 -> 2 released",
        ]
        reliability = {"nacks_sent": 0, "retransmits": 1}
        (violation,) = conformance_violations(
            trace, machines, reliability, recovery=True
        )
        assert "nacks_sent=0" in violation

    def test_counters_ignored_without_recovery(self, machines):
        trace = ["inject t=1 S[a=1] -> 1 deliveries"]
        assert (
            conformance_violations(trace, machines, {"retransmits": 99})
            == []
        )


class TestAgainstRealRuns:
    @pytest.mark.parametrize("recovery", [False, True])
    def test_seed0_conforms(self, machines, recovery):
        config = ChaosConfig(seed=0, recovery=recovery)
        report = run_chaos(config)
        assert report.ok
        violations = conformance_violations(
            report.trace.render().splitlines(),
            machines,
            report.reliability,
            recovery,
        )
        assert violations == []
