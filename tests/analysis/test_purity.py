"""COS5xx determinism pass: entropy, clocks, set iteration, id()."""

from repro.analysis.purity import check_purity, collect_set_returning
from repro.analysis.source import module_from_text


def _codes(text, rel="repro/sim/m.py", set_returning=()):
    module = module_from_text(text, rel)
    return check_purity(module, set_returning).codes()


class TestEntropy:
    def test_module_level_random_flagged(self):
        assert _codes("import random\nx = random.random()\n") == ["COS501"]
        assert _codes("import random\nx = random.randrange(5)\n") == ["COS501"]

    def test_unseeded_random_instance_flagged(self):
        assert _codes("import random\nrng = random.Random()\n") == ["COS501"]

    def test_seeded_random_instance_clean(self):
        assert _codes("import random\nrng = random.Random(42)\n") == []

    def test_from_import_alias_resolved(self):
        text = "from random import random as rnd\nx = rnd()\n"
        assert _codes(text) == ["COS501"]

    def test_uuid_and_urandom(self):
        assert _codes("import uuid\nx = uuid.uuid4()\n") == ["COS501"]
        assert _codes("import uuid\nx = uuid.uuid5(ns, 'a')\n") == []
        assert _codes("import os\nx = os.urandom(8)\n") == ["COS501"]

    def test_secrets_always_flagged(self):
        assert _codes("import secrets\nx = secrets.token_hex()\n") == ["COS501"]

    def test_method_named_random_on_object_clean(self):
        # `self.rng.random()` is a seeded instance, not the module.
        assert _codes("x = rng.random()\n") == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert _codes("import time\nt = time.time()\n") == ["COS502"]
        assert _codes("import time\nt = time.perf_counter()\n") == ["COS502"]
        assert _codes("import time\nt = time.monotonic_ns()\n") == ["COS502"]

    def test_datetime_now_flagged(self):
        text = "import datetime\nt = datetime.datetime.now()\n"
        assert _codes(text) == ["COS502"]
        text = "from datetime import datetime\nt = datetime.utcnow()\n"
        assert _codes(text) == ["COS502"]

    def test_time_sleep_clean(self):
        assert _codes("import time\ntime.sleep(1)\n") == []

    def test_local_now_variable_clean(self):
        # A simulator-provided `now` parameter is the sanctioned fix.
        assert _codes("def f(now):\n    return now + 1\n") == []


class TestSetIteration:
    def test_for_over_set_literal_with_append(self):
        text = (
            "out = []\n"
            "for x in {1, 2, 3}:\n"
            "    out.append(x)\n"
        )
        assert _codes(text) == ["COS503"]

    def test_for_over_set_call_with_record(self):
        text = (
            "def f(self, items):\n"
            "    for x in set(items):\n"
            "        self.trace.record(x)\n"
        )
        assert _codes(text) == ["COS503"]

    def test_sorted_set_clean(self):
        text = (
            "out = []\n"
            "for x in sorted({1, 2, 3}):\n"
            "    out.append(x)\n"
        )
        assert _codes(text) == []

    def test_list_over_plain_name_clean(self):
        # Untracked names are not assumed to be sets.
        text = "def f(xs):\n    return list(xs)\n"
        assert _codes(text) == []

    def test_assignment_tracks_set_typedness(self):
        text = (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    return list(seen)\n"
        )
        assert _codes(text) == ["COS503"]

    def test_annotation_tracks_set_typedness(self):
        text = (
            "from typing import Set\n"
            "def f(seen: Set[int]):\n"
            "    return [x for x in seen]\n"
        )
        assert _codes(text) == ["COS503"]

    def test_set_algebra_tracked(self):
        text = (
            "def f(a, b):\n"
            "    both = set(a) & set(b)\n"
            "    return ','.join(x for x in both)\n"
        )
        assert _codes(text) == ["COS503"]

    def test_self_attribute_annotated_in_class(self):
        text = (
            "from typing import Set\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.dirty: Set[str] = set()\n"
            "    def flush(self, out):\n"
            "        for node in self.dirty:\n"
            "            out.append(node)\n"
        )
        assert _codes(text) == ["COS503"]

    def test_membership_and_len_clean(self):
        # Order-insensitive uses of a set never flag.
        text = (
            "def f(items, x):\n"
            "    seen = set(items)\n"
            "    return x in seen, len(seen), min(seen)\n"
        )
        assert _codes(text) == []

    def test_set_returning_function_annotation(self):
        producer = (
            "from typing import Set\n"
            "def neighbors(n) -> Set[int]:\n"
            "    return set()\n"
        )
        consumer = (
            "def f(n):\n"
            "    return [x for x in neighbors(n)]\n"
        )
        mods = [
            module_from_text(producer, "repro/a.py"),
            module_from_text(consumer, "repro/b.py"),
        ]
        set_returning = collect_set_returning(mods)
        assert "neighbors" in set_returning
        assert check_purity(mods[1], set_returning).codes() == ["COS503"]
        # Without the package-wide fact the call is invisible: no flag.
        assert check_purity(mods[1]).codes() == []

    def test_nested_function_inherits_scope(self):
        text = (
            "def outer(items):\n"
            "    seen = set(items)\n"
            "    def inner(out):\n"
            "        for x in seen:\n"
            "            out.append(x)\n"
            "    return inner\n"
        )
        assert _codes(text) == ["COS503"]

    def test_no_duplicate_findings_in_nested_scopes(self):
        text = (
            "def f(items):\n"
            "    def g():\n"
            "        return list(set(items))\n"
            "    return g\n"
        )
        assert _codes(text) == ["COS503"]


class TestIdIdentity:
    def test_id_in_sensitive_module(self):
        text = "def f(a, b):\n    return id(a) == id(b)\n"
        assert _codes(text, rel="repro/cbn/network.py") == ["COS504", "COS504"]
        assert _codes(text, rel="repro/system/events.py") == ["COS504", "COS504"]

    def test_id_elsewhere_clean(self):
        text = "def f(a):\n    return id(a)\n"
        assert _codes(text, rel="repro/experiments/fig3.py") == []

    def test_attribute_id_clean(self):
        assert _codes("x = obj.id(3)\n", rel="repro/sim/m.py") == []
