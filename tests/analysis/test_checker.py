"""The end-to-end analyzer, the CLI contract and the submit hook."""

import pytest

from repro.analysis import (
    BUILTIN_WORKLOADS,
    Workload,
    analyze_builtin,
    analyze_query,
    analyze_workload,
    builtin_workload,
)
from repro.cli import run_check
from repro.cql.parser import parse_query
from repro.system import CosmosSystem
from repro.system.cosmos import SystemError_


class TestBuiltinWorkloads:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            builtin_workload("nope")

    @pytest.mark.parametrize("name", BUILTIN_WORKLOADS)
    def test_builtin_workloads_have_no_errors(self, name):
        # The acceptance bar: `repro check` exits 0 on both examples.
        report = analyze_builtin(name)
        assert report.errors == []
        assert report.exit_code(strict=False) == 0

    def test_auction_is_fully_clean(self):
        assert analyze_builtin("auction").is_clean

    def test_deterministic(self):
        first = [d.render() for d in analyze_builtin("sensorscope")]
        second = [d.render() for d in analyze_builtin("sensorscope")]
        assert first == second


class TestAnalyzeQuery:
    def test_schema_errors_suppress_satisfiability(self, sensor_catalog):
        # The predicate references an unknown attribute; running the
        # solver on it would only produce cascading noise.
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T "
            "WHERE T.pressure > 5 AND T.pressure < 2",
            name="q",
        )
        report = analyze_query(query, sensor_catalog)
        assert report.has("COS102")
        assert not report.has("COS201")

    def test_both_families_on_clean_schema(self, sensor_catalog):
        query = parse_query(
            "SELECT T.station FROM Temp [Now] T "
            "WHERE T.temperature > 30 AND T.temperature < 10",
            name="q",
        )
        report = analyze_query(query, sensor_catalog)
        assert report.has("COS201")


class TestAnalyzeWorkload:
    def test_defective_query_reported_and_quarantined(self, sensor_catalog):
        bad = parse_query("SELECT T.bogus FROM Temp [Now] T", name="bad")
        good = parse_query("SELECT T.station FROM Temp [Now] T", name="good")
        report = analyze_workload(
            Workload("w", sensor_catalog, [bad, good])
        )
        assert report.has("COS102")
        # The bad query is kept out of grouping/overlay construction,
        # so no cascading COS3xx/COS4xx findings appear.
        assert not any(c.startswith("COS3") for c in report.codes())
        assert not any(c.startswith("COS4") for c in report.codes())


class TestRunCheck:
    def test_exit_zero_on_builtins(self, capsys):
        assert run_check([]) == 0
        out = capsys.readouterr().out
        assert "workload auction" in out and "workload sensorscope" in out

    def test_single_workload(self, capsys):
        assert run_check(["--workload", "auction"]) == 0
        assert "auction: clean" in capsys.readouterr().out


class TestSubmitHook:
    def _system(self, line_tree, sensor_catalog):
        system = CosmosSystem(line_tree, processor_nodes=[2], static_check=True)
        for index, schema in enumerate(sorted(sensor_catalog, key=lambda s: s.name)):
            system.add_source(schema, index % 2)
        return system

    def test_rejects_defective_query(self, line_tree, sensor_catalog):
        system = self._system(line_tree, sensor_catalog)
        with pytest.raises(SystemError_, match="COS102"):
            system.submit("SELECT T.bogus FROM Temp [Now] T", user_node=4)
        assert system.queries == []  # nothing was installed

    def test_rejects_unsatisfiable_query(self, line_tree, sensor_catalog):
        system = self._system(line_tree, sensor_catalog)
        with pytest.raises(SystemError_, match="COS201"):
            system.submit(
                "SELECT T.station FROM Temp [Now] T "
                "WHERE T.temperature > 30 AND T.temperature < 10",
                user_node=4,
            )

    def test_accepts_clean_query(self, line_tree, sensor_catalog):
        system = self._system(line_tree, sensor_catalog)
        handle = system.submit(
            "SELECT T.station FROM Temp [Now] T WHERE T.temperature > 30",
            user_node=4,
        )
        assert handle.query_id in [q.query_id for q in system.queries]

    def test_hook_is_opt_in(self, line_tree, sensor_catalog):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        for index, schema in enumerate(sorted(sensor_catalog, key=lambda s: s.name)):
            system.add_source(schema, index % 2)
        # Without static_check an unsatisfiable (but well-formed) query
        # is accepted as before — it just never produces results.
        system.submit(
            "SELECT T.station FROM Temp [Now] T "
            "WHERE T.temperature > 30 AND T.temperature < 10",
            user_node=4,
        )
        assert len(system.queries) == 1
