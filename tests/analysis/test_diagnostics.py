"""The diagnostic registry, rendering and exit-code policy."""

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticError,
    Report,
    Severity,
)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(DiagnosticError):
            Diagnostic("COS999", "nope")

    def test_severity_comes_from_registry(self):
        assert Diagnostic("COS101", "x").severity is Severity.ERROR
        assert Diagnostic("COS104", "x").severity is Severity.WARNING

    def test_render_with_pos(self):
        diag = Diagnostic("COS102", "no such attribute", "q1", 17)
        assert diag.render() == "q1:17: COS102 no such attribute"

    def test_render_without_pos(self):
        diag = Diagnostic("COS402", "cycle", "<overlay>")
        assert diag.render() == "<overlay>: COS402 cycle"

    def test_every_code_family_is_registered(self):
        families = {code[:4] for code in CODES}
        assert families == {
            "COS1", "COS2", "COS3", "COS4", "COS5", "COS6", "COS7", "COS8",
            "COS9",
        }


class TestReport:
    def test_exit_code_clean(self):
        assert Report().exit_code() == 0
        assert Report().exit_code(strict=True) == 0

    def test_exit_code_warnings(self):
        report = Report()
        report.add("COS104", "unused")
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_exit_code_errors_dominate(self):
        report = Report()
        report.add("COS104", "unused")
        report.add("COS101", "unknown stream")
        assert report.exit_code() == 2
        assert report.exit_code(strict=True) == 2

    def test_extend_and_introspection(self):
        a = Report()
        a.add("COS201", "unsat", "q1")
        b = Report()
        b.add("COS203", "dead", "q2")
        a.extend(b)
        assert a.codes() == ["COS201", "COS203"]
        assert a.has("COS203") and not a.has("COS301")
        assert len(a) == 2 and not a.is_clean
        assert "1 error(s), 1 warning(s)" in a.render()
