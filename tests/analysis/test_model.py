"""COS90x: bounded model checking of the composed protocol machines.

The canary tests doctor *source text* (not the model): deleting the
heal path, the cutover certification or the abort path from the real
modules must surface as COS902/COS901/COS903 through re-extraction —
that is the property that makes the checker a regression tripwire
rather than a self-consistent artifact.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.lifecycle import extract_lifecycle
from repro.analysis.model import (
    DEFAULT_MAX_STATES,
    ProductModel,
    Rule,
    build_product,
    check_model,
    explore,
    model_summary,
    product_dot,
)
from repro.analysis.selfcheck import check_modules, default_package_dir
from repro.analysis.source import load_package, module_from_text


@pytest.fixture(scope="module")
def modules():
    return load_package(default_package_dir())


@pytest.fixture(scope="module")
def machines(modules):
    return extract_lifecycle(modules)


@pytest.fixture(scope="module")
def checked(machines, modules):
    model = build_product(machines, modules)
    report, exploration = check_model(model)
    return model, report, exploration


def _codes(report):
    return sorted({diag.code for diag in report})


def _doctor(modules, rel_suffix, old, new):
    """Re-parse one module with ``old`` textually replaced by ``new``."""
    doctored = []
    hit = False
    for module in modules:
        if module.rel.endswith(rel_suffix) and old in module.text:
            assert module.text.count(old) == 1, (
                f"canary needle {old!r} is not unique in {module.rel}"
            )
            doctored.append(
                module_from_text(module.text.replace(old, new), module.rel)
            )
            hit = True
        else:
            doctored.append(module)
    assert hit, f"canary needle {old!r} not found under {rel_suffix}"
    return doctored


def _check_doctored(modules, rel_suffix, old, new):
    doctored = _doctor(modules, rel_suffix, old, new)
    machines = extract_lifecycle(doctored)
    report, _exploration = check_model(build_product(machines, doctored))
    return report


class TestRealPackage:
    def test_clean_and_exhausted(self, checked):
        model, report, exploration = checked
        assert _codes(report) == []
        assert exploration.exhausted
        assert exploration.max_depth >= 10
        assert 100 < len(exploration.states) < DEFAULT_MAX_STATES

    def test_all_six_components_composed(self, checked):
        model, _report, _exploration = checked
        assert [c.name for c in model.components] == [
            "slot",
            "channel",
            "detector",
            "node",
            "query",
            "migration",
        ]
        assert model.dropped == []
        assert model.uncertified == []

    def test_cutover_guard_is_certified(self, checked):
        model, _report, _exploration = checked
        (cutover,) = [r for r in model.rules if r.action == "cutover"]
        assert cutover.certified_guards == (("channel", ("RELEASED",)),)
        assert cutover.anchors

    def test_every_rule_fires_somewhere(self, checked):
        model, _report, exploration = checked
        fired = {rule_idx for _s, rule_idx, _d in exploration.edges}
        idle = [
            model.rules[i].action
            for i in range(len(model.rules))
            if i not in fired
        ]
        assert idle == [], f"rules never enabled: {idle}"

    def test_reachable_transitions_cover_all_machines(self, checked):
        model, _report, exploration = checked
        reachable = model.reachable_machine_transitions(exploration)
        for machine_name, driven in reachable.items():
            assert driven, f"{machine_name}: no transitions driven"

    def test_selfcheck_runs_the_model_pass(self, modules):
        timings = {}
        report = check_modules(modules, timings=timings)
        assert "model" in timings
        assert not [d for d in report if d.code.startswith("COS90")]


class TestCanaries:
    def test_deleted_heal_path_is_a_deadlock(self, modules):
        # heal_partition no longer resumes the quarantined query: the
        # QueryStatus machine loses DEGRADED -> ACTIVE, so the product
        # strands owner=partition states with no enabled rule.
        report = _check_doctored(
            modules,
            "system/reliability.py",
            "handle.status = QueryStatus.ACTIVE",
            "pass  # canary",
        )
        assert _codes(report) == ["COS902"]

    def test_stripped_cutover_certification_loses_tuples(self, modules):
        # _cutover_migration no longer aborts on handoff gaps: the
        # anchor fails, the RELEASED guard is dropped, and cutover
        # becomes reachable past a lossy channel.
        report = _check_doctored(
            modules,
            "sim/network.py",
            '"handoff-gaps"',
            '"handoff-skipped"',
        )
        assert "COS901" in _codes(report)
        (loss,) = [d for d in report if d.code == "COS901"]
        assert loss.severity is Severity.ERROR
        assert "certification anchor missing" in loss.message

    def test_orphaned_abort_exit_is_a_livelock(self, modules):
        # The migration can no longer abort: a draining migration whose
        # channel cannot be released spins on migrate_retry forever.
        report = _check_doctored(
            modules,
            "system/loadmgr.py",
            "self.state = MigrationState.ABORTED",
            "pass  # canary",
        )
        assert _codes(report) == ["COS903"]
        spins = [d for d in report if d.code == "COS903"]
        assert any("migrate_retry" in d.message for d in spins)


class TestInvariants:
    def test_unresumed_query_violates_cos904(self, machines):
        # Synthetic defect: ``complete`` forgets to resume the group it
        # quarantined.  The query stays DEGRADED with owner=none — the
        # degraded-unowned invariant must catch it.
        model = build_product(machines)
        rules = []
        for rule in model.rules:
            if rule.action == "complete":
                rule = Rule(
                    rule.action,
                    rule.progress,
                    moves=tuple(
                        m for m in rule.moves if m.component != "query"
                    ),
                    guards=rule.guards,
                    sets=rule.sets,
                )
            rules.append(rule)
        doctored = ProductModel(
            components=model.components,
            env=model.env,
            rules=rules,
            invariants=model.invariants,
        )
        report, _exploration = check_model(doctored)
        assert "COS904" in _codes(report)
        assert any("degraded-unowned" in d.message for d in report)


class TestBoundsAndPartialModels:
    def test_depth_bound_truncates_and_mutes_liveness(self, machines, modules):
        model = build_product(machines, modules)
        report, exploration = check_model(model, depth=2)
        assert not exploration.exhausted
        assert exploration.max_depth == 2
        # Liveness verdicts are unsound on a truncated frontier: the
        # checker must stay silent rather than guess.
        assert not [d for d in report if d.code in ("COS902", "COS903")]

    def test_state_cap_truncates(self, machines, modules):
        model = build_product(machines, modules)
        exploration = explore(model, max_states=50)
        assert not exploration.exhausted
        assert len(exploration.states) == 50

    def test_partial_machine_set_drops_rules(self, machines):
        uplink_only = [m for m in machines if m.name == "uplink-receiver"]
        model = build_product(uplink_only)
        assert [c.name for c in model.components] == ["slot", "channel"]
        assert model.dropped
        dropped_actions = {action for action, _reason in model.dropped}
        assert "cutover" in dropped_actions
        report, exploration = check_model(model)
        assert exploration.exhausted
        # The channel's conditional release names the absent migration
        # component, so it is stripped; without drain rules the channel
        # never starts, and the slot protocol alone is clean.
        assert _codes(report) == []

    def test_anchors_assumed_intact_without_modules(self, machines):
        model = build_product(machines)
        assert model.uncertified == []
        (cutover,) = [r for r in model.rules if r.action == "cutover"]
        assert cutover.certified_guards


class TestRendering:
    def test_dot_output(self, checked):
        model, _report, exploration = checked
        dot = product_dot(model, exploration, max_states=40)
        assert dot.startswith("digraph product {")
        assert 's0 [label="initial", penwidth=2];' in dot
        assert "more states" in dot
        full = product_dot(model, exploration)
        assert "more states" not in full

    def test_summary_payload(self, checked):
        model, _report, exploration = checked
        summary = model_summary(model, exploration)
        assert summary["states"] == len(exploration.states)
        assert summary["exhausted"] is True
        assert summary["dropped_rules"] == []
        actions = [r["action"] for r in summary["rules"]]
        assert "cutover" in actions and "heal" in actions
        (cutover,) = [r for r in summary["rules"] if r["action"] == "cutover"]
        assert cutover["certified"] is True
