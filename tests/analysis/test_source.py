"""Source-lint infrastructure: modules, code specs, pragmas, baseline."""

import pytest

from repro.analysis.diagnostics import Report
from repro.analysis.source import (
    Baseline,
    PragmaIndex,
    SourceError,
    apply_pragmas,
    load_package,
    module_from_text,
    parse_code_spec,
    spec_matches,
)


class TestModules:
    def test_module_from_text(self):
        module = module_from_text("x = 1\ny = 2\n", "pkg/m.py")
        assert module.rel == "pkg/m.py"
        assert module.line(2) == "y = 2"
        assert module.line(99) == ""

    def test_module_from_text_rejects_syntax_errors(self):
        with pytest.raises(SourceError):
            module_from_text("def broken(:\n")

    def test_load_package_sorted_and_relative(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "b.py").write_text("b = 1\n")
        (pkg / "a.py").write_text("a = 1\n")
        (pkg / "sub" / "c.py").write_text("c = 1\n")
        modules = load_package(pkg)
        assert [m.rel for m in modules] == ["pkg/a.py", "pkg/b.py", "pkg/sub/c.py"]

    def test_load_package_missing_dir(self, tmp_path):
        with pytest.raises(SourceError):
            load_package(tmp_path / "nope")


class TestCodeSpecs:
    def test_exact_family_and_all(self):
        assert parse_code_spec("COS503") == ["COS503"]
        assert parse_code_spec("COS5xx,COS701") == ["COS5xx", "COS701"]
        assert parse_code_spec("all") == ["all"]

    def test_rejects_unknown_and_malformed(self):
        with pytest.raises(SourceError):
            parse_code_spec("COS999")
        with pytest.raises(SourceError):
            parse_code_spec("L001")
        with pytest.raises(SourceError):
            parse_code_spec("")

    def test_spec_matches(self):
        assert spec_matches(["COS5xx"], "COS503")
        assert not spec_matches(["COS5xx"], "COS601")
        assert spec_matches(["all"], "COS601")
        assert spec_matches(["COS701"], "COS701")
        assert not spec_matches([], "COS701")


def _report(rel, *entries):
    report = Report()
    for code, line in entries:
        report.add(code, "m", rel, line)
    return report


class TestPragmas:
    def test_line_pragma_on_flagged_line(self):
        module = module_from_text(
            "import time\n"
            "t = time.time()  # cos: disable=COS502 (bench only)\n",
            "pkg/m.py",
        )
        report = _report("pkg/m.py", ("COS502", 2))
        assert apply_pragmas(report, module).is_clean

    def test_pragma_line_above(self):
        module = module_from_text(
            "import time\n"
            "# cos: disable=COS502\n"
            "t = time.time()\n",
            "pkg/m.py",
        )
        report = _report("pkg/m.py", ("COS502", 3))
        assert apply_pragmas(report, module).is_clean

    def test_pragma_two_lines_above_does_not_reach(self):
        module = module_from_text(
            "# cos: disable=COS502\n"
            "import time\n"
            "t = time.time()\n",
            "pkg/m.py",
        )
        report = _report("pkg/m.py", ("COS502", 3))
        assert len(apply_pragmas(report, module)) == 1

    def test_family_wildcard_and_file_scope(self):
        module = module_from_text(
            "# cos: disable-file=COS5xx\n"
            "import time\n"
            "t = time.time()\n",
            "pkg/m.py",
        )
        report = _report("pkg/m.py", ("COS502", 3), ("COS601", 3))
        kept = apply_pragmas(report, module)
        assert kept.codes() == ["COS601"]

    def test_pragma_only_suppresses_named_codes(self):
        module = module_from_text(
            "x = 1  # cos: disable=COS503\n", "pkg/m.py"
        )
        report = _report("pkg/m.py", ("COS502", 1))
        assert len(apply_pragmas(report, module)) == 1

    def test_index_handles_missing_position(self):
        module = module_from_text("x = 1\n", "pkg/m.py")
        index = PragmaIndex(module)
        assert not index.suppresses(None, "COS502")


class TestBaseline:
    def test_roundtrip_and_budget(self, tmp_path):
        report = _report(
            "repro/a.py", ("COS503", 10), ("COS503", 20), ("COS701", 5)
        )
        baseline = Baseline.from_report(report)
        path = tmp_path / "baseline.txt"
        path.write_text(baseline.dump())
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        kept, forgiven = loaded.filter(report)
        assert kept.is_clean and forgiven == 3

    def test_new_findings_exceed_budget(self):
        baseline = Baseline({("repro/a.py", "COS503"): 1})
        report = _report("repro/a.py", ("COS503", 10), ("COS503", 20))
        kept, forgiven = baseline.filter(report)
        assert forgiven == 1
        assert len(kept) == 1 and kept.codes() == ["COS503"]

    def test_line_numbers_do_not_matter(self):
        baseline = Baseline({("repro/a.py", "COS503"): 1})
        kept, _ = baseline.filter(_report("repro/a.py", ("COS503", 999)))
        assert kept.is_clean

    def test_other_files_not_forgiven(self):
        baseline = Baseline({("repro/a.py", "COS503"): 5})
        kept, forgiven = baseline.filter(_report("repro/b.py", ("COS503", 1)))
        assert forgiven == 0 and len(kept) == 1

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("repro/a.py NOTACODE 1\n")
        with pytest.raises(SourceError):
            Baseline.load(path)
        path.write_text("repro/a.py COS503 0\n")
        with pytest.raises(SourceError):
            Baseline.load(path)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("# header\n\nrepro/a.py COS503 2\n")
        assert len(Baseline.load(path)) == 2
