"""COS6xx protocol-contract pass: dispatch, exception safety, backoff."""

from repro.analysis.protocol import check_protocol, collect_enums
from repro.analysis.source import module_from_text

_STATUS_ENUM = (
    "import enum\n"
    "class QueryStatus(enum.Enum):\n"
    "    ACTIVE = 'active'\n"
    "    DEGRADED = 'degraded'\n"
    "    QUARANTINED = 'quarantined'\n"
)


def _codes(text, rel="repro/system/queries.py", enums=None):
    module = module_from_text(text, rel)
    return check_protocol(module, enums).codes()


class TestCollectEnums:
    def test_members_in_declaration_order(self):
        module = module_from_text(_STATUS_ENUM, "repro/system/queries.py")
        enums = collect_enums([module])
        assert enums == {
            "QueryStatus": ["ACTIVE", "DEGRADED", "QUARANTINED"]
        }

    def test_non_enum_classes_ignored(self):
        module = module_from_text(
            "class C:\n    ACTIVE = 1\n", "repro/a.py"
        )
        assert collect_enums([module]) == {}


class TestEnumDispatch:
    def test_incomplete_chain_flagged(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
            "    elif status is QueryStatus.DEGRADED:\n"
            "        return 2\n"
        )
        assert _codes(text) == ["COS601"]

    def test_complete_chain_clean(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
            "    elif status is QueryStatus.DEGRADED:\n"
            "        return 2\n"
            "    elif status is QueryStatus.QUARANTINED:\n"
            "        return 3\n"
        )
        assert _codes(text) == []

    def test_else_branch_covers_the_rest(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
            "    elif status is QueryStatus.DEGRADED:\n"
            "        return 2\n"
            "    else:\n"
            "        return 3\n"
        )
        assert _codes(text) == []

    def test_single_guard_is_not_a_dispatch(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
            "    return 0\n"
        )
        assert _codes(text) == []

    def test_negative_test_covers_complement(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status is not QueryStatus.ACTIVE:\n"
            "        return 0\n"
            "    elif status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
        )
        assert _codes(text) == []

    def test_membership_tuple_counts_as_coverage(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status in (QueryStatus.ACTIVE, QueryStatus.DEGRADED):\n"
            "        return 1\n"
            "    elif status is QueryStatus.QUARANTINED:\n"
            "        return 2\n"
        )
        assert _codes(text) == []

    def test_membership_frozenset_counts_as_coverage(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status in frozenset((QueryStatus.ACTIVE, "
            "QueryStatus.DEGRADED)):\n"
            "        return 1\n"
            "    elif status is QueryStatus.QUARANTINED:\n"
            "        return 2\n"
        )
        assert _codes(text) == []

    def test_or_branches_count_as_coverage(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    if status is QueryStatus.ACTIVE or "
            "status is QueryStatus.DEGRADED:\n"
            "        return 1\n"
            "    elif status is QueryStatus.QUARANTINED:\n"
            "        return 2\n"
        )
        assert _codes(text) == []

    def test_mixed_chain_left_alone(self):
        text = _STATUS_ENUM + (
            "def handle(self, status, other):\n"
            "    if status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
            "    elif other:\n"
            "        return 2\n"
            "    elif status is QueryStatus.DEGRADED:\n"
            "        return 3\n"
        )
        assert _codes(text) == []

    def test_package_wide_enum_table(self):
        enum_module = module_from_text(_STATUS_ENUM, "repro/system/queries.py")
        dispatch = (
            "def handle(self, status):\n"
            "    if status is QueryStatus.ACTIVE:\n"
            "        return 1\n"
            "    elif status is QueryStatus.DEGRADED:\n"
            "        return 2\n"
        )
        enums = collect_enums([enum_module])
        assert _codes(dispatch, enums=enums) == ["COS601"]

    def test_match_statement_flagged_and_wildcard_clean(self):
        text = _STATUS_ENUM + (
            "def handle(self, status):\n"
            "    match status:\n"
            "        case QueryStatus.ACTIVE:\n"
            "            return 1\n"
            "        case QueryStatus.DEGRADED:\n"
            "            return 2\n"
        )
        assert _codes(text) == ["COS601"]
        text_with_wildcard = text + "        case _:\n            return 3\n"
        assert _codes(text_with_wildcard) == []


_CALLBACK_REL = "repro/sim/network.py"


class TestExceptionSafety:
    def test_mutation_before_local_raiser_flagged(self):
        text = (
            "class Broker:\n"
            "    def _validate(self, item):\n"
            "        if item is None:\n"
            "            raise ValueError('bad')\n"
            "    def deliver(self, item):\n"
            "        self.pending.append(item)\n"
            "        self._validate(item)\n"
        )
        assert _codes(text, rel=_CALLBACK_REL) == ["COS602"]

    def test_validate_first_mutate_last_clean(self):
        text = (
            "class Broker:\n"
            "    def _validate(self, item):\n"
            "        if item is None:\n"
            "            raise ValueError('bad')\n"
            "    def deliver(self, item):\n"
            "        self._validate(item)\n"
            "        self.pending.append(item)\n"
        )
        assert _codes(text, rel=_CALLBACK_REL) == []

    def test_raise_after_mutation_flagged(self):
        text = (
            "class Broker:\n"
            "    def deliver(self, item):\n"
            "        self.count += 1\n"
            "        if item is None:\n"
            "            raise ValueError('bad')\n"
        )
        assert _codes(text, rel=_CALLBACK_REL) == ["COS602"]

    def test_try_except_shields_the_mutation(self):
        text = (
            "class Broker:\n"
            "    def _validate(self, item):\n"
            "        raise ValueError('bad')\n"
            "    def deliver(self, item):\n"
            "        self.pending.append(item)\n"
            "        try:\n"
            "            self._validate(item)\n"
            "        except ValueError:\n"
            "            pass\n"
        )
        assert _codes(text, rel=_CALLBACK_REL) == []

    def test_deferred_lambda_is_not_fallible_now(self):
        text = (
            "class Broker:\n"
            "    def _repair(self, node):\n"
            "        raise RuntimeError('boom')\n"
            "    def deliver(self, sim, node):\n"
            "        self.count += 1\n"
            "        sim.schedule_in(1.0, lambda: self._repair(node))\n"
        )
        assert _codes(text, rel=_CALLBACK_REL) == []

    def test_terminated_branch_does_not_leak_mutation(self):
        text = (
            "class Broker:\n"
            "    def _degrade(self, node):\n"
            "        raise RuntimeError('boom')\n"
            "    def deliver(self, node, ok):\n"
            "        if ok:\n"
            "            self.count += 1\n"
            "            return\n"
            "        self._degrade(node)\n"
        )
        assert _codes(text, rel=_CALLBACK_REL) == []

    def test_only_callback_modules_checked(self):
        text = (
            "class Broker:\n"
            "    def _validate(self, item):\n"
            "        raise ValueError('bad')\n"
            "    def deliver(self, item):\n"
            "        self.pending.append(item)\n"
            "        self._validate(item)\n"
        )
        assert _codes(text, rel="repro/experiments/fig3.py") == []


class TestNackBackoff:
    def test_uncapped_nack_timer_flagged(self):
        text = (
            "class Uplink:\n"
            "    def _arm(self, sim, seq):\n"
            "        sim.schedule_in(self.delay, lambda: self._send_nack(seq))\n"
        )
        assert _codes(text, rel="repro/system/uplink.py") == ["COS603"]

    def test_capped_delay_in_function_clean(self):
        text = (
            "class Uplink:\n"
            "    def _arm(self, sim, seq, attempt):\n"
            "        delay = min(self.base * 2 ** attempt, self.nack_cap)\n"
            "        sim.schedule_in(delay, lambda: self._send_nack(seq))\n"
        )
        assert _codes(text, rel="repro/system/uplink.py") == []

    def test_nack_in_delay_expression_not_a_callback(self):
        text = (
            "class Uplink:\n"
            "    def _give_up(self, sim, seq):\n"
            "        sim.schedule_in(self.nack_cap, lambda: self._abandon(seq))\n"
        )
        assert _codes(text, rel="repro/system/uplink.py") == []

    def test_non_nack_callbacks_clean(self):
        text = (
            "class Detector:\n"
            "    def _arm(self, sim):\n"
            "        sim.schedule_in(self.period, lambda: self._sweep())\n"
        )
        assert _codes(text, rel="repro/system/detector.py") == []
