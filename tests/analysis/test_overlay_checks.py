"""COS4xx: seeded overlay/routing defects must be flagged."""

from repro.analysis.overlay import (
    check_network,
    check_overlay_graph,
    check_reachability,
    check_routing_entries,
)
from repro.cbn.filters import ALL_ATTRIBUTES, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cbn.routing import RoutingTable
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.overlay.tree import DisseminationTree


def _schema(name="Temp"):
    return StreamSchema(
        name,
        [Attribute("station", "int", 0, 9), Attribute("t", "timestamp")],
        rate=1.0,
    )


def _network(line_tree):
    return ContentBasedNetwork(line_tree, Catalog([_schema()]))


def _all(stream="Temp"):
    return Profile({stream: ALL_ATTRIBUTES}, ())


class TestOverlayGraph:
    def test_tree_is_clean(self):
        report = check_overlay_graph([0, 1, 2], [(0, 1), (1, 2)])
        assert report.is_clean

    def test_cycle(self):
        report = check_overlay_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)])
        assert report.has("COS402")
        assert "cycle" in report.errors[0].message

    def test_disconnection(self):
        report = check_overlay_graph([0, 1, 2, 3], [(0, 1), (2, 3)])
        assert report.has("COS402")
        assert "disconnected" in report.errors[0].message

    def test_self_loop_and_dangling_edge(self):
        report = check_overlay_graph([0, 1], [(0, 0), (1, 7)])
        messages = " ".join(d.message for d in report)
        assert "self-loop" in messages and "outside the overlay" in messages

    def test_duplicate_edge(self):
        report = check_overlay_graph([0, 1], [(0, 1), (1, 0)])
        assert report.has("COS402")


class TestReachability:
    def test_routed_network_is_clean(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "s1")
        assert check_network(network).is_clean

    def test_missing_hop_entry(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "s1")
        # Seeded defect: surgically drop the forwarding entry at broker 2.
        del network.table(2)._entries[3]["s1#Temp"]
        report = check_reachability(network)
        assert report.has("COS401")
        assert "broker 2" in report.errors[0].message

    def test_no_publisher(self, line_tree):
        network = _network(line_tree)
        network.subscribe(_all(), 4, "s1")
        report = check_reachability(network)
        assert report.has("COS404")
        assert report.exit_code() == 0  # warning: may advertise later

    def test_missing_local_entry(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "s1")
        del network.table(4)._entries[RoutingTable.LOCAL]["s1"]
        assert check_reachability(network).has("COS401")


class TestRoutingEntries:
    def test_orphan_entry(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "s1")
        # Seeded defect: install forwarding state for a subscription
        # that does not exist (e.g. leaked by a buggy unsubscribe).
        network.table(2).install(3, "ghost#Temp", _all())
        report = check_routing_entries(network)
        assert report.has("COS403")
        assert "ghost" in report.warnings[0].message

    def test_entry_behind_non_neighbour(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "s1")
        network.table(2).install(99, "s1#Temp", _all())
        assert check_routing_entries(network).has("COS403")

    def test_unsubscribe_leaves_no_orphans(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        sid = network.subscribe(_all(), 4)
        network.unsubscribe(sid)
        assert check_routing_entries(network).is_clean


class TestCheckNetwork:
    def test_redundant_entries_warn(self, line_tree):
        network = _network(line_tree)
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "broad")
        network.subscribe(_all(), 4, "narrow")
        report = check_network(network)
        assert report.has("COS203")
        assert report.exit_code() == 0

    def test_subsumption_mode_suppresses_redundancy(self, line_tree):
        network = ContentBasedNetwork(
            line_tree, Catalog([_schema()]), use_subsumption=True
        )
        network.advertise("Temp", 0, _schema())
        network.subscribe(_all(), 4, "broad")
        network.subscribe(_all(), 4, "narrow")
        assert check_network(network).is_clean
