"""COS80x message-flow extraction: coverage, canaries, guard logic."""

from __future__ import annotations

import pytest

from repro.analysis.flowgraph import check_flowgraph, extract_flowgraph
from repro.analysis.selfcheck import check_modules, default_package_dir
from repro.analysis.source import load_package, module_from_text


@pytest.fixture(scope="module")
def modules():
    return load_package(default_package_dir())


def mutate(modules, rel_suffix, old, new, count=1):
    """The module list with one module's text rewritten."""
    out = []
    hit = False
    for module in modules:
        if module.rel.endswith(rel_suffix):
            assert module.text.count(old) == count, rel_suffix
            out.append(module_from_text(module.text.replace(old, new), module.rel))
            hit = True
        else:
            out.append(module)
    assert hit, f"no module matches {rel_suffix}"
    return out


class TestExtraction:
    def test_event_kinds_have_producers_and_consumers(self, modules):
        graph = extract_flowgraph(modules)
        for name in ("InjectEvent", "DropEvent", "FaultEvent", "PunctuationEvent"):
            kind = graph.kind(f"event:{name}")
            assert kind.producers, name
            assert kind.consumers, name

    def test_reliability_protocol_surface_is_covered(self, modules):
        """Every message/control kind the reliability layer produces
        appears in the graph (the ISSUE acceptance criterion)."""
        graph = extract_flowgraph(modules)
        kinds = {kind.kind for kind in graph.message_kinds}
        for expected in (
            "proto:SequencedUplink.record",
            "proto:SequencedUplink.retransmit",
            "proto:UplinkReceiver.offer",
            "proto:UplinkReceiver.announce",
            "proto:UplinkReceiver.abandon",
            "proto:FailureDetector.register",
            "proto:FailureDetector.heartbeat",
            "proto:FailureDetector.check",
            "proto:quarantine_partitioned",
            "proto:heal_partition",
            "proto:ContentBasedNetwork.publish",
        ):
            assert expected in kinds

    def test_timer_kinds_cover_nack_and_sweep_paths(self, modules):
        graph = extract_flowgraph(modules)
        kinds = {kind.kind for kind in graph.message_kinds}
        for expected in (
            "timer:_nack",
            "timer:_retransmit_arrival",
            "timer:_sweep",
            "timer:_repair",
            "timer:_give_up",
        ):
            assert expected in kinds

    def test_to_dict_shape(self, modules):
        payload = extract_flowgraph(modules).to_dict()
        assert set(payload) == {"messages"}
        for entry in payload["messages"]:
            assert set(entry) == {"kind", "producers", "consumers"}


class TestPristine:
    def test_package_is_clean_through_the_driver(self, modules):
        assert check_modules(modules).is_clean

    def test_pragmas_on_reliability_are_load_bearing(self, modules):
        """Without pragmas the one intentionally external entry point
        (heal_partition) surfaces as COS802.  ``stamp`` used to be
        pragma'd too, until the migration channel became an in-package
        caller — its pragma is gone with the need for it."""
        report = check_flowgraph(modules)
        assert report.codes() == ["COS802"]
        assert "heal_partition" in report.render()


class TestCanaries:
    def test_deleting_a_handler_registration_fires_cos801(self, modules):
        """The PunctuationEvent dispatch branch in the virtual network
        is its only consumer; removing it orphans the kind."""
        mutated = mutate(
            modules,
            "sim/network.py",
            "        elif isinstance(event, PunctuationEvent):\n"
            "            self._apply_punctuation(event, sim)\n",
            "",
        )
        report = check_modules(mutated)
        assert report.codes() == ["COS801"]
        assert "PunctuationEvent" in report.render()

    def test_stripping_the_recovery_guard_fires_cos803(self, modules):
        """Unguarded publishes without seq= in the network's inject path
        bypass the sequencing layer when recovery is on."""
        mutated = mutate(
            modules,
            "sim/network.py",
            "        if self.recovery and event.seq is not None:\n"
            "            self._apply_inject_reliable(event, sim)\n"
            "            return\n",
            "",
        )
        report = check_modules(mutated)
        assert report.codes() == ["COS803", "COS803"]
