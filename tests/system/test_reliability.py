"""The self-healing reliability layer: transport, detection, degradation."""

import pytest

from repro.cql.schema import Attribute, StreamSchema
from repro.overlay.topology import Topology
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem, QueryStatus
from repro.system.fault import FaultError
from repro.system.reliability import (
    FailureDetector,
    ReliabilityError,
    ReliabilityParams,
    SequencedUplink,
    UplinkReceiver,
    attach_reliability,
    heal_partition,
    quarantine_partitioned,
)

TEMP = StreamSchema(
    "Temp",
    [Attribute("station", "int", 0, 9), Attribute("celsius", "float", -20, 40)],
    rate=1.0,
)


class TestParams:
    def test_lease_is_period_times_misses(self):
        params = ReliabilityParams(heartbeat_period=2.0, lease_misses=4)
        assert params.lease == 8.0

    def test_defaults_fit_the_chaos_timing_budget(self):
        params = ReliabilityParams()
        # Detection after a crash: at most lease + one sweep period.
        assert params.lease + params.heartbeat_period <= 21.0


class TestSequencedUplink:
    def test_stamp_assigns_monotone_numbers(self):
        uplink = SequencedUplink()
        assert uplink.stamp({"a": 1}, 1.0) == 0
        assert uplink.stamp({"a": 2}, 2.0) == 1
        assert uplink.next_seq == 2

    def test_record_out_of_order_is_allowed(self):
        # The simulator learns of sends in arrival order, which may
        # trail the sequence order under link delay.
        uplink = SequencedUplink()
        uplink.record(3, {"a": 3}, 3.0)
        uplink.record(1, {"a": 1}, 1.0)
        assert uplink.next_seq == 4
        assert uplink.retransmit(1) == ({"a": 1}, 1.0)

    def test_reuse_raises(self):
        uplink = SequencedUplink()
        uplink.record(0, {"a": 1}, 1.0)
        with pytest.raises(ReliabilityError):
            uplink.record(0, {"a": 2}, 2.0)

    def test_negative_seq_raises(self):
        with pytest.raises(ReliabilityError):
            SequencedUplink().record(-1, {}, 0.0)

    def test_retransmit_unknown_returns_none(self):
        assert SequencedUplink().retransmit(7) is None

    def test_retransmit_returns_a_copy(self):
        uplink = SequencedUplink()
        uplink.record(0, {"a": 1}, 1.0)
        payload, __ = uplink.retransmit(0)
        payload["a"] = 99
        assert uplink.retransmit(0) == ({"a": 1}, 1.0)


class TestUplinkReceiver:
    def test_in_order_releases_immediately(self):
        receiver = UplinkReceiver()
        offer = receiver.offer(0, {"a": 0}, 1.0)
        assert offer.released == [(0, {"a": 0}, 1.0)]
        assert not offer.duplicate and not offer.fresh_gaps
        assert receiver.expected == 1

    def test_out_of_order_buffers_and_reports_gap(self):
        receiver = UplinkReceiver()
        offer = receiver.offer(2, {"a": 2}, 3.0)
        assert offer.released == []
        assert offer.fresh_gaps == [0, 1]
        assert receiver.occupancy == 1
        # The same gaps are not reported twice.
        assert receiver.offer(3, {"a": 3}, 4.0).fresh_gaps == []

    def test_gap_heal_releases_in_sequence_order(self):
        receiver = UplinkReceiver()
        receiver.offer(1, {"a": 1}, 2.0)
        offer = receiver.offer(0, {"a": 0}, 1.0)
        assert [seq for seq, __, __ in offer.released] == [0, 1]
        assert receiver.occupancy == 0

    def test_duplicate_below_watermark_suppressed(self):
        receiver = UplinkReceiver()
        receiver.offer(0, {"a": 0}, 1.0)
        offer = receiver.offer(0, {"a": 0}, 1.0)
        assert offer.duplicate and offer.released == []
        assert receiver.counters.duplicates_suppressed == 1

    def test_duplicate_of_buffered_arrival_suppressed(self):
        receiver = UplinkReceiver()
        receiver.offer(2, {"a": 2}, 3.0)
        assert receiver.offer(2, {"a": 2}, 3.0).duplicate

    def test_abandon_releases_blocked_arrivals(self):
        receiver = UplinkReceiver()
        receiver.offer(1, {"a": 1}, 2.0)
        released = receiver.abandon(0)
        assert [seq for seq, __, __ in released] == [1]
        assert receiver.expected == 2
        assert receiver.counters.gaps_abandoned == 1

    def test_announce_exposes_trailing_gaps(self):
        receiver = UplinkReceiver()
        receiver.offer(0, {"a": 0}, 1.0)
        # Seqs 1 and 2 were sent but never arrived; no higher arrival
        # exists, so only punctuation can expose them.
        assert receiver.announce(2) == [1, 2]
        # Idempotent: already-known gaps are not re-reported.
        assert receiver.announce(2) == []

    def test_announce_below_watermark_is_empty(self):
        receiver = UplinkReceiver()
        receiver.offer(0, {"a": 0}, 1.0)
        assert receiver.announce(0) == []

    def test_outstanding_tracks_gap_lifecycle(self):
        receiver = UplinkReceiver()
        receiver.offer(1, {"a": 1}, 2.0)
        assert receiver.outstanding(0)
        receiver.offer(0, {"a": 0}, 1.0)
        assert not receiver.outstanding(0)

    def test_reorder_limit_forces_low_watermark_flush(self):
        receiver = UplinkReceiver(ReliabilityParams(reorder_limit=3))
        released = []
        for seq in range(1, 5):  # seq 0 never arrives
            released.extend(receiver.offer(seq, {"a": seq}, float(seq)).released)
        assert [seq for seq, __, __ in released] == [1, 2, 3, 4]
        assert receiver.counters.gaps_abandoned == 1
        assert receiver.occupancy == 0
        assert receiver.counters.reorder_peak == 3


class TestFailureDetector:
    def test_suspects_after_lease_expiry(self):
        detector = FailureDetector(ReliabilityParams(heartbeat_period=5.0, lease_misses=3))
        detector.register(7, 0.0)
        assert detector.check(10.0) == []
        assert detector.check(15.0) == [7]
        assert detector.suspected == [7]

    def test_heartbeat_renews_lease(self):
        detector = FailureDetector(ReliabilityParams(heartbeat_period=5.0, lease_misses=3))
        detector.register(7, 0.0)
        detector.heartbeat(7, 10.0)
        assert detector.check(15.0) == []
        assert detector.check(25.0) == [7]

    def test_suspected_only_once(self):
        detector = FailureDetector()
        detector.register(7, 0.0)
        assert detector.check(100.0) == [7]
        assert detector.check(200.0) == []

    def test_deregister_forgets(self):
        detector = FailureDetector()
        detector.register(7, 0.0)
        detector.deregister(7)
        assert detector.check(100.0) == []
        assert detector.monitored == []

    def test_stale_heartbeat_ignored(self):
        detector = FailureDetector()
        detector.heartbeat(99, 0.0)  # never registered: no-op
        assert detector.monitored == []

    def test_check_returns_sorted(self):
        detector = FailureDetector()
        for node in (9, 3, 5):
            detector.register(node, 0.0)
        assert detector.check(100.0) == [3, 5, 9]


def build_chain_system(processor=1, source=0, users=(2, 4)):
    """0 - 1 - 2 - 3 - 4 chain; removing 3 strands node 4."""
    topo = Topology()
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    for u, v in edges:
        topo.add_edge(u, v, 1.0)
    tree = DisseminationTree(edges, {e: 1.0 for e in edges})
    system = CosmosSystem(
        tree, processor_nodes=[processor], topology=topo
    )
    system.add_source(TEMP, source)
    handles = []
    for index, user in enumerate(users):
        handles.append(
            system.submit(
                "SELECT T.celsius FROM Temp [Now] T WHERE T.celsius > 0",
                user_node=user,
                name=f"q{index}",
            )
        )
    return system, handles


class TestQuarantine:
    def test_stranded_user_query_degrades(self):
        system, (qa, qb) = build_chain_system()
        quarantined = quarantine_partitioned(system, 3)
        assert quarantined == ["q1"]
        assert system.query("q1").status is QueryStatus.DEGRADED
        assert system.query("q0").status is QueryStatus.ACTIVE
        assert sorted(system.tree.nodes) == [0, 1, 2]

    def test_survivor_keeps_delivering_while_degraded(self):
        system, (qa, qb) = build_chain_system()
        quarantine_partitioned(system, 3)
        system.publish("Temp", {"station": 1, "celsius": 20.0}, 1.0)
        assert system.query("q0").result_count == 1
        assert system.query("q1").result_count == 0

    def test_counters_and_state_updated(self):
        system, __ = build_chain_system()
        state = attach_reliability(system)
        quarantine_partitioned(system, 3)
        assert state.counters.queries_quarantined == 1
        assert state.quarantined == {"q1": 4}
        assert 3 in state.failed_nodes

    def test_stranded_processor_is_a_hard_fault(self):
        system, __ = build_chain_system(processor=4, users=(2, 2))
        with pytest.raises(FaultError, match="stranded"):
            quarantine_partitioned(system, 3)

    def test_needs_topology(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[1])
        with pytest.raises(FaultError, match="topology"):
            quarantine_partitioned(system, 3)


class TestHeal:
    def test_heal_resumes_quarantined_query(self):
        system, __ = build_chain_system()
        quarantine_partitioned(system, 3)
        system.topology.add_edge(2, 4, 1.0)  # the partition heals
        assert heal_partition(system) == ["q1"]
        assert system.query("q1").status is QueryStatus.ACTIVE
        assert 4 in system.tree.nodes
        system.publish("Temp", {"station": 1, "celsius": 20.0}, 1.0)
        assert system.query("q1").result_count == 1

    def test_heal_without_connectivity_is_a_noop(self):
        system, __ = build_chain_system()
        quarantine_partitioned(system, 3)
        assert heal_partition(system) == []
        assert system.query("q1").status is QueryStatus.DEGRADED

    def test_heal_without_state_is_a_noop(self):
        system, __ = build_chain_system()
        assert heal_partition(system) == []

    def test_heal_preserves_surviving_tree_edges(self):
        system, __ = build_chain_system()
        quarantine_partitioned(system, 3)
        before = set(system.tree.edges)
        system.topology.add_edge(2, 4, 1.0)
        heal_partition(system)
        # The extension only adds edges; the surviving paths stay put.
        assert before <= set(system.tree.edges)

    def test_accumulated_results_survive_the_round_trip(self):
        system, __ = build_chain_system()
        system.publish("Temp", {"station": 1, "celsius": 15.0}, 1.0)
        assert system.query("q1").result_count == 1
        quarantine_partitioned(system, 3)
        system.topology.add_edge(2, 4, 1.0)
        heal_partition(system)
        system.publish("Temp", {"station": 2, "celsius": 25.0}, 2.0)
        assert system.query("q1").result_count == 2
