"""The Figure 3 delivery cost model."""

import pytest

from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.cql.parser import parse_query
from repro.system.delivery import DeliveryCostModel, GroupPlacement


def q(text, name):
    return parse_query(text, name=name)


@pytest.fixture
def placed_group(sensor_catalog, star_tree):
    """Two overlapping queries grouped, processor at node 1, users at 3, 4."""
    optimizer = GroupingOptimizer(sensor_catalog, CostModel())
    optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 10", "a"))
    optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "b"))
    assert optimizer.group_count == 1
    group = optimizer.groups[0]
    return GroupPlacement(group, 1, {"a": 3, "b": 4})


class TestCosts:
    def test_unshared_sums_member_paths(self, sensor_catalog, star_tree, placed_group):
        model = DeliveryCostModel(star_tree, sensor_catalog)
        cost_model = CostModel()
        rate_a = cost_model.result_rate(placed_group.group.members[0], sensor_catalog)
        rate_b = cost_model.result_rate(placed_group.group.members[1], sensor_catalog)
        expected = rate_a * 2 + rate_b * 2  # both users 2 hops away
        assert model.unshared_cost(placed_group) == pytest.approx(expected)

    def test_shared_cheaper_on_common_link(self, sensor_catalog, star_tree, placed_group):
        model = DeliveryCostModel(star_tree, sensor_catalog)
        assert model.shared_cost(placed_group) < model.unshared_cost(placed_group)

    def test_benefit_ratio_in_unit_interval(self, sensor_catalog, star_tree, placed_group):
        model = DeliveryCostModel(star_tree, sensor_catalog)
        ratio = model.benefit_ratio([placed_group])
        assert 0 < ratio < 1

    def test_singleton_group_no_benefit(self, sensor_catalog, star_tree):
        optimizer = GroupingOptimizer(sensor_catalog, CostModel())
        optimizer.add(q("SELECT T.temperature FROM Temp T", "solo"))
        placement = GroupPlacement(optimizer.groups[0], 1, {"solo": 3})
        model = DeliveryCostModel(star_tree, sensor_catalog)
        assert model.shared_cost(placement) == pytest.approx(
            model.unshared_cost(placement)
        )
        assert model.benefit_ratio([placement]) == pytest.approx(0.0)

    def test_user_at_processor_costs_nothing(self, sensor_catalog, star_tree):
        optimizer = GroupingOptimizer(sensor_catalog, CostModel())
        optimizer.add(q("SELECT T.temperature FROM Temp T", "here"))
        placement = GroupPlacement(optimizer.groups[0], 1, {"here": 1})
        model = DeliveryCostModel(star_tree, sensor_catalog)
        assert model.unshared_cost(placement) == 0.0
        assert model.shared_cost(placement) == 0.0

    def test_divergent_edges_carry_member_rate(self, sensor_catalog, star_tree, placed_group):
        # On the star, edges 0-3 and 0-4 have exactly one member behind
        # them; only 1-0 is shared.  Shared cost must price the leaf
        # edges at the members' own rates.
        model = DeliveryCostModel(star_tree, sensor_catalog)
        cost_model = CostModel()
        group = placed_group.group
        rate = {m.name: cost_model.result_rate(m, sensor_catalog) for m in group.members}
        rep_rate = cost_model.result_rate(group.representative, sensor_catalog)
        expected = rate["a"] + rate["b"] + min(rep_rate, rate["a"] + rate["b"])
        assert model.shared_cost(placed_group) == pytest.approx(expected)

    def test_empty_placements(self, sensor_catalog, star_tree):
        model = DeliveryCostModel(star_tree, sensor_catalog)
        assert model.benefit_ratio([]) == 0.0


class TestMeasuredDelivery:
    def test_members_receive_retightened_feed(
        self, sensor_catalog, star_tree, placed_group
    ):
        from repro.cbn.datagram import Datagram
        from repro.system.delivery import measure_shared_delivery

        feed = [
            Datagram("rep:out", {"Temp.temperature": value}, float(index))
            for index, value in enumerate([15.0, 25.0, 30.0, 12.0])
        ]
        measured = measure_shared_delivery(
            placed_group, star_tree, sensor_catalog, feed, "rep:out"
        )
        # Member "a" keeps > 10 (all four tuples), member "b" re-tightens
        # to > 20 (two tuples) — the CBN narrows at the branch point.
        assert measured.delivered == {"a": 4, "b": 2}
        assert measured.stats.total_bytes() > 0

    def test_shared_link_carries_feed_once(
        self, sensor_catalog, star_tree, placed_group
    ):
        from repro.cbn.datagram import Datagram
        from repro.system.delivery import measure_shared_delivery

        feed = [Datagram("rep:out", {"Temp.temperature": 25.0}, 0.0)]
        measured = measure_shared_delivery(
            placed_group, star_tree, sensor_catalog, feed, "rep:out"
        )
        # Processor 1 -> hub 0 is shared by both users: one message, not
        # one per member (the non-shared baseline would send two).
        assert measured.stats.usage(1, 0).messages == 1
        assert measured.stats.usage(0, 3).messages == 1
        assert measured.stats.usage(0, 4).messages == 1
