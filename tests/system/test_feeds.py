"""Live scheduled sources on the discrete-event simulator."""

import random

import pytest

from repro.cql.schema import Attribute, StreamSchema
from repro.system.cosmos import CosmosSystem
from repro.system.feeds import FeedError, LiveFeedRunner, ScheduledSource

SCHEMA = StreamSchema(
    "Temp",
    [Attribute("station", "int", 0, 9), Attribute("celsius", "float", -20, 40)],
    rate=1.0,
)


@pytest.fixture
def system(line_tree):
    sys_ = CosmosSystem(line_tree, processor_nodes=[2])
    sys_.add_source(SCHEMA, 0)
    return sys_


def constant_payload(celsius):
    def fn(now):
        return {"station": 1, "celsius": celsius}

    return fn


class TestScheduledSource:
    def test_positive_interval_required(self):
        with pytest.raises(FeedError):
            ScheduledSource("Temp", 0.0, constant_payload(1.0))

    def test_periodic_gap_constant(self):
        source = ScheduledSource("Temp", 5.0, constant_payload(1.0))
        rng = random.Random(0)
        assert source.next_gap(rng) == 5.0

    def test_poisson_gap_varies(self):
        source = ScheduledSource("Temp", 5.0, constant_payload(1.0), poisson=True)
        rng = random.Random(0)
        gaps = {source.next_gap(rng) for __ in range(5)}
        assert len(gaps) == 5


class TestLiveFeedRunner:
    def test_unknown_stream_rejected(self, system):
        with pytest.raises(FeedError):
            LiveFeedRunner(
                system, [ScheduledSource("Nope", 1.0, constant_payload(1.0))]
            )

    def test_periodic_emission_count(self, system):
        runner = LiveFeedRunner(
            system, [ScheduledSource("Temp", 10.0, constant_payload(25.0))]
        )
        stats = runner.run(60.0)
        assert stats["published"] == 6  # t = 10, 20, ..., 60

    def test_results_flow_to_queries(self, system):
        handle = system.submit(
            "SELECT T.celsius FROM Temp [Range 1 Hour] T WHERE T.celsius > 20",
            user_node=4,
            name="hot",
        )
        runner = LiveFeedRunner(
            system, [ScheduledSource("Temp", 5.0, constant_payload(30.0))]
        )
        stats = runner.run(30.0)
        assert handle.result_count == stats["published"] == 6
        assert stats["delivered"] == 6

    def test_filtered_tuples_not_delivered(self, system):
        system.submit(
            "SELECT T.celsius FROM Temp [Range 1 Hour] T WHERE T.celsius > 20",
            user_node=4,
            name="hot",
        )
        runner = LiveFeedRunner(
            system, [ScheduledSource("Temp", 5.0, constant_payload(10.0))]
        )
        stats = runner.run(30.0)
        assert stats["published"] == 6
        assert stats["delivered"] == 0

    def test_multiple_sources_interleave_in_order(self, line_tree):
        sys_ = CosmosSystem(line_tree, processor_nodes=[2])
        sys_.add_source(SCHEMA, 0)
        wind = StreamSchema(
            "Wind", [Attribute("speed", "float", 0, 50)], rate=1.0
        )
        sys_.add_source(wind, 1)
        sys_.submit("SELECT T.celsius FROM Temp T", user_node=4, name="t")
        sys_.submit("SELECT W.speed FROM Wind W", user_node=4, name="w")
        runner = LiveFeedRunner(
            sys_,
            [
                ScheduledSource("Temp", 3.0, constant_payload(25.0)),
                ScheduledSource(
                    "Wind", 4.0, lambda now: {"speed": 5.0}, phase=0.5
                ),
            ],
        )
        stats = runner.run(24.0)
        # The SPE enforces timestamp order; reaching here without an
        # out-of-order EngineError is the point of this test.
        assert stats["published"] == 8 + 5

    def test_poisson_reproducible(self, system):
        def build():
            sys_ = CosmosSystem(system.tree, processor_nodes=[2])
            sys_.add_source(SCHEMA, 0)
            runner = LiveFeedRunner(
                sys_,
                [ScheduledSource("Temp", 2.0, constant_payload(1.0), poisson=True)],
                rng=random.Random(7),
            )
            return runner.run(20.0)["published"]

        assert build() == build()
