"""The self-tuning loop: demands from live state, reorganisation."""

import random

import pytest

from repro.overlay.topology import Topology, barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.system.tuning import TuningError, reorganize_overlay, traffic_demands
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)


def square_topology():
    """0-1-2-3-0 ring plus chords: plenty of alternative trees."""
    t = Topology()
    for u, v in [(0, 1), (1, 2), (2, 3), (0, 3)]:
        t.add_edge(u, v, 1.0)
    t.add_edge(0, 2, 1.2)
    t.add_edge(1, 3, 1.2)
    return t


@pytest.fixture
def system():
    topo = square_topology()
    # Deliberately bad tree: traffic source at 0, heavy user at 2, but
    # the tree routes 0->2 the long way around through 1... wait — tree
    # is a path 1-0-3, 3-2: 0 to 2 goes 0-3-2.
    tree = DisseminationTree(
        [(0, 1), (0, 3), (3, 2)], {(0, 1): 1.0, (0, 3): 1.0, (2, 3): 1.0}
    )
    sys_ = CosmosSystem(tree, processor_nodes=[1], topology=topo)
    sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
    sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
    return sys_


class TestTrafficDemands:
    def test_empty_without_queries(self, system):
        assert traffic_demands(system) == []

    def test_demands_cover_both_directions(self, system):
        system.submit(TABLE1_Q1, user_node=2, name="q1")
        demands = traffic_demands(system)
        endpoints = {(src, dst) for src, dst, __ in demands}
        assert (0, 1) in endpoints  # sources at 0 -> processor at 1
        assert (1, 2) in endpoints  # results processor 1 -> user at 2

    def test_rates_positive(self, system):
        system.submit(TABLE1_Q1, user_node=2, name="q1")
        system.submit(TABLE1_Q2, user_node=3, name="q2")
        for __, __, rate in traffic_demands(system):
            assert rate > 0

    def test_merged_group_emits_one_source_demand_set(self, system):
        system.submit(TABLE1_Q1, user_node=2, name="q1")
        system.submit(TABLE1_Q2, user_node=3, name="q2")
        demands = traffic_demands(system)
        source_demands = [d for d in demands if d[0] == 0 and d[1] == 1]
        # One merged group: each of the two source streams contributes
        # exactly one flow to the processor.
        assert len(source_demands) == 2


class TestReorganize:
    def test_requires_topology(self, line_tree):
        sys_ = CosmosSystem(line_tree, processor_nodes=[2])
        with pytest.raises(TuningError):
            reorganize_overlay(sys_)

    def test_improves_and_preserves_delivery(self, system):
        h1 = system.submit(TABLE1_Q1, user_node=2, name="q1")
        system.publish(
            "OpenAuction",
            {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
            0.0,
        )
        system.publish(
            "ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 60.0}, 60.0
        )
        assert h1.result_count == 1
        report = reorganize_overlay(system)
        assert report.final_cost <= report.initial_cost
        # Delivery still works on the (possibly) new tree.
        system.publish(
            "OpenAuction",
            {"itemID": 2, "sellerID": 1, "start_price": 1.0, "timestamp": 120.0},
            120.0,
        )
        system.publish(
            "ClosedAuction", {"itemID": 2, "buyerID": 2, "timestamp": 180.0}, 180.0
        )
        assert h1.result_count == 2

    def test_noop_when_tree_already_good(self):
        topo = square_topology()
        tree = DisseminationTree(
            [(0, 1), (1, 2), (2, 3)], {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0}
        )
        sys_ = CosmosSystem(tree, processor_nodes=[1], topology=topo)
        sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
        sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
        sys_.submit(TABLE1_Q1, user_node=2, name="q1")
        before = sys_.network
        report = reorganize_overlay(sys_)
        if report.swaps == 0:
            assert sys_.network is before  # untouched

    def test_larger_system_round_trip(self):
        rng = random.Random(3)
        topo = barabasi_albert(40, 3, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        sys_ = CosmosSystem(tree, processor_nodes=[0], topology=topo)
        sys_.add_source(OPEN_AUCTION_SCHEMA, 5)
        sys_.add_source(CLOSED_AUCTION_SCHEMA, 6)
        handles = [
            sys_.submit(TABLE1_Q2, user_node=rng.randrange(40), name=f"q{i}")
            for i in range(5)
        ]
        reorganize_overlay(sys_, max_rounds=3)
        sys_.publish(
            "OpenAuction",
            {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
            0.0,
        )
        sys_.publish(
            "ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 60.0}, 60.0
        )
        assert all(h.result_count == 1 for h in handles)
