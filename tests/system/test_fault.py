"""Two-layer fault tolerance."""

import random

import pytest

from repro.overlay.topology import Topology, barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.system.fault import (
    FaultError,
    fail_broker,
    fail_node,
    fail_processor,
    repair_tree,
)
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)


def diamond_topology():
    """0-1, 1-2, 0-3, 3-2: two disjoint routes from 0 to 2."""
    t = Topology()
    t.add_edge(0, 1, 1.0)
    t.add_edge(1, 2, 1.0)
    t.add_edge(0, 3, 1.0)
    t.add_edge(3, 2, 1.0)
    return t


class TestRepairTree:
    def test_leaf_removal_trivial(self):
        topo = diamond_topology()
        tree = DisseminationTree([(0, 1), (1, 2), (0, 3)], {(0, 1): 1.0, (1, 2): 1.0, (0, 3): 1.0})
        repaired = repair_tree(tree, topo, 3)
        assert sorted(repaired.nodes) == [0, 1, 2]
        assert len(repaired.edges) == 2

    def test_interior_removal_reconnects(self):
        topo = diamond_topology()
        tree = DisseminationTree([(0, 1), (1, 2), (0, 3)], {(0, 1): 1.0, (1, 2): 1.0, (0, 3): 1.0})
        repaired = repair_tree(tree, topo, 1)
        assert sorted(repaired.nodes) == [0, 2, 3]
        assert repaired.path(0, 2)  # connected again

    def test_repair_avoids_failed_node_links(self):
        topo = diamond_topology()
        tree = DisseminationTree([(0, 1), (1, 2), (0, 3)], {(0, 1): 1.0, (1, 2): 1.0, (0, 3): 1.0})
        repaired = repair_tree(tree, topo, 1)
        for edge in repaired.edges:
            assert 1 not in edge

    def test_partition_detected(self):
        topo = Topology()
        topo.add_edge(0, 1, 1.0)
        topo.add_edge(1, 2, 1.0)
        tree = DisseminationTree([(0, 1), (1, 2)], {(0, 1): 1.0, (1, 2): 1.0})
        with pytest.raises(FaultError):
            repair_tree(tree, topo, 1)  # 1 is a physical cut vertex

    def test_random_tree_repair(self):
        rng = random.Random(5)
        topo = barabasi_albert(40, 2, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        # Remove an interior node (degree > 1).
        victim = max(tree.nodes, key=tree.degree)
        repaired = repair_tree(tree, topo, victim)
        assert len(repaired.nodes) == 39
        assert len(repaired.edges) == 38


@pytest.fixture
def running_system(auction_system_builder):
    # The shared builder: 20 nodes, processors {0, 1}, sources at 2,
    # users at 3 and 4 (so nodes 0-4 must never be failed as brokers).
    return auction_system_builder()


def publish_pair(system, item, open_ts, close_ts):
    system.publish(
        "OpenAuction",
        {"itemID": item, "sellerID": 1, "start_price": 1.0, "timestamp": open_ts},
        open_ts,
    )
    return system.publish(
        "ClosedAuction",
        {"itemID": item, "buyerID": 1, "timestamp": close_ts},
        close_ts,
    )


class TestBrokerFailure:
    def test_delivery_survives_broker_failure(self, running_system):
        system, h1, h2 = running_system
        publish_pair(system, 1, 0.0, 3600.0)
        before = (h1.result_count, h2.result_count)
        assert before == (1, 1)
        # Fail some pure broker that is not source/user/processor.
        protected = {0, 1, 2, 3, 4}
        victim = next(n for n in system.tree.nodes if n not in protected)
        fail_broker(system, victim)
        publish_pair(system, 2, 7200.0, 7200.0 + 3600.0)
        assert (h1.result_count, h2.result_count) == (2, 2)

    def test_failed_broker_gone_from_tree(self, running_system):
        system, __, __ = running_system
        protected = {0, 1, 2, 3, 4}
        victim = next(n for n in system.tree.nodes if n not in protected)
        repaired = fail_broker(system, victim)
        assert victim not in repaired

    def test_processor_cannot_fail_as_broker(self, running_system):
        system, __, __ = running_system
        with pytest.raises(FaultError):
            fail_broker(system, 0)

    def test_source_host_protected(self, running_system):
        system, __, __ = running_system
        with pytest.raises(FaultError):
            fail_broker(system, 2)

    def test_needs_topology(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[0])
        with pytest.raises(FaultError):
            fail_broker(system, 3)


class TestProcessorFailure:
    def test_queries_rehomed(self, running_system):
        system, h1, h2 = running_system
        victims = {h1.processor_node, h2.processor_node}
        assert len(victims) == 1  # stream affinity puts both together
        victim = victims.pop()
        rehomed = fail_processor(system, victim)
        assert sorted(rehomed) == ["q1", "q2"]
        survivors = {h.processor_node for h in system.queries}
        assert victim not in survivors

    def test_delivery_resumes_after_rehoming(self, running_system):
        system, h1, __ = running_system
        victim = h1.processor_node
        fail_processor(system, victim)
        new_h1 = system.query("q1")
        publish_pair(system, 5, 0.0, 1800.0)
        assert new_h1.result_count == 1

    def test_last_processor_protected(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        with pytest.raises(FaultError):
            fail_processor(system, 2)

    def test_non_processor_rejected(self, running_system):
        system, __, __ = running_system
        with pytest.raises(FaultError):
            fail_processor(system, 7)


class TestRehomingStateCarryOver:
    def test_results_preserved_in_chronological_order(self, running_system):
        system, h1, __ = running_system
        publish_pair(system, 1, 0.0, 3600.0)
        pre_failure = list(h1.results)
        assert pre_failure  # the fixture queries do match this pair
        fail_processor(system, h1.processor_node)
        new_h1 = system.query("q1")
        assert new_h1.results == pre_failure
        publish_pair(system, 2, 7200.0, 7200.0 + 3600.0)
        # Old results come first; new results are appended after them.
        assert new_h1.results[: len(pre_failure)] == pre_failure
        assert new_h1.result_count == len(pre_failure) + 1

    def test_submit_failure_does_not_abort_rehoming(self, running_system, monkeypatch):
        system, h1, h2 = running_system
        victim = h1.processor_node
        original = CosmosSystem.submit

        def flaky(self, query, user_node, name=None):
            if name == "q1":
                raise RuntimeError("injected submit failure")
            return original(self, query, user_node, name=name)

        monkeypatch.setattr(CosmosSystem, "submit", flaky)
        with pytest.raises(FaultError, match="q1"):
            fail_processor(system, victim)
        # q2 was still re-homed despite q1's failure...
        assert system.query("q2").processor_node != victim
        # ...and q1 left no dangling state behind.
        with pytest.raises(Exception):
            system.query("q1")
        assert "q1" not in system._user_subscriptions
        # The system still works end to end for the survivor.
        publish_pair(system, 3, 0.0, 1800.0)
        assert system.query("q2").result_count >= 1


class TestFailNode:
    def test_plain_broker_falls_through(self, running_system):
        system, __, __ = running_system
        protected = {0, 1, 2, 3, 4}
        victim = next(n for n in system.tree.nodes if n not in protected)
        assert fail_node(system, victim) == []
        assert victim not in system.tree

    def test_processor_node_loses_both_roles(self, running_system):
        system, h1, __ = running_system
        victim = h1.processor_node
        rehomed = fail_node(system, victim)
        assert sorted(rehomed) == ["q1", "q2"]
        assert victim not in system.processors
        assert victim not in system.tree
        # Delivery resumes end to end on the surviving processor.
        publish_pair(system, 9, 0.0, 1800.0)
        assert system.query("q1").result_count == 1

    def test_last_processor_still_protected(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        with pytest.raises(FaultError):
            fail_node(system, 2)
        # Nothing was torn down: the node keeps both roles.
        assert 2 in system.processors
        assert 2 in system.tree

    def test_partial_rehoming_still_removes_the_node(
        self, running_system, monkeypatch
    ):
        system, h1, __ = running_system
        victim = h1.processor_node
        original = CosmosSystem.submit

        def flaky(self, query, user_node, name=None):
            if name == "q1":
                raise RuntimeError("injected submit failure")
            return original(self, query, user_node, name=name)

        monkeypatch.setattr(CosmosSystem, "submit", flaky)
        # The processor layer's partial-failure error survives, but the
        # broker layer still runs: the node is gone from the tree.
        with pytest.raises(FaultError, match="q1"):
            fail_node(system, victim)
        assert victim not in system.processors
        assert victim not in system.tree
        assert system.query("q2").processor_node != victim


class TestPublishManyUnderFailure:
    """Batched and per-datagram publication stay identical while the
    tree is repeatedly repaired around failed brokers.

    The fast-path property suite only exercises fault-free
    interleavings; this regression drives twin systems through the same
    ``fail_broker`` sequence, publishing each round's feed per-datagram
    in one and via ``publish_many`` in the other.
    """

    @staticmethod
    def _snapshot(deliveries):
        return [(d.subscription_id, d.node, d.datagram) for d in deliveries]

    @staticmethod
    def _round_feed(round_index):
        from repro.cbn.datagram import Datagram

        base = 7200.0 * round_index
        out = []
        for item in range(3):
            out.append(
                Datagram(
                    "OpenAuction",
                    {
                        "itemID": round_index * 10 + item,
                        "sellerID": 1,
                        "start_price": 1.0,
                        "timestamp": base + item,
                    },
                    base + item,
                )
            )
            out.append(
                Datagram(
                    "ClosedAuction",
                    {
                        "itemID": round_index * 10 + item,
                        "buyerID": 2,
                        "timestamp": base + 1800.0 + item,
                    },
                    base + 1800.0 + item,
                )
            )
        return out

    def test_batched_equals_per_datagram_across_failures(
        self, auction_system_builder
    ):
        system_a, *_ = auction_system_builder()
        system_b, *_ = auction_system_builder()
        protected = {0, 1, 2, 3, 4}
        failed = set()
        for round_index in range(4):
            feed = self._round_feed(round_index)
            per_datagram = [system_a.network.publish(d, 2) for d in feed]
            batched = system_b.network.publish_many(feed, 2)
            assert [self._snapshot(per) for per in per_datagram] == [
                self._snapshot(per) for per in batched
            ]
            assert (
                system_a.network.data_stats.as_dict()
                == system_b.network.data_stats.as_dict()
            )
            assert (
                system_a.network.routing_state_size()
                == system_b.network.routing_state_size()
            )
            if round_index == 3:
                break
            # Fail the same (still-alive, unprotected) broker in both.
            for victim in system_a.tree.nodes:
                if victim in protected or victim in failed:
                    continue
                try:
                    fail_broker(system_a, victim)
                except FaultError:
                    continue  # physically partitioned: try the next one
                fail_broker(system_b, victim)
                failed.add(victim)
                break
            else:
                pytest.fail("no repairable victim left")
