"""The discrete-event simulator."""

import pytest

from repro.system.events import EventSimulator, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]

    def test_equal_times_fifo(self):
        sim = EventSimulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_past_scheduling_rejected(self):
        sim = EventSimulator(start=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_in(self):
        sim = EventSimulator(start=3.0)
        fired = []
        sim.schedule_in(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_run_until_bound(self):
        sim = EventSimulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        processed = sim.run(until=5.0)
        assert processed == 1
        assert log == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        log = []

        def first():
            log.append("first")
            sim.schedule_in(1.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "second"]

    def test_returns_processed_count(self):
        sim = EventSimulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        assert sim.run() == 5
