"""The discrete-event simulator."""

import pytest

from repro.system.events import EventSimulator, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]

    def test_equal_times_fifo(self):
        sim = EventSimulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_past_scheduling_rejected(self):
        sim = EventSimulator(start=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_in(self):
        sim = EventSimulator(start=3.0)
        fired = []
        sim.schedule_in(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_run_until_bound(self):
        sim = EventSimulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        processed = sim.run(until=5.0)
        assert processed == 1
        assert log == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        log = []

        def first():
            log.append("first")
            sim.schedule_in(1.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "second"]

    def test_returns_processed_count(self):
        sim = EventSimulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        assert sim.run() == 5


class TestRunUntilClock:
    """The documented ``until`` clock-advance semantics."""

    def test_until_advances_idle_clock(self):
        sim = EventSimulator()
        assert sim.run(until=5.0) == 0
        assert sim.now == 5.0

    def test_until_beyond_last_event_advances_clock(self):
        sim = EventSimulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=9.0) == 1
        assert sim.now == 9.0

    def test_until_in_the_past_never_rewinds(self):
        sim = EventSimulator(start=10.0)
        sim.schedule(12.0, lambda: None)
        assert sim.run(until=3.0) == 0
        assert sim.now == 10.0
        assert sim.pending == 1

    def test_consecutive_runs_accumulate(self):
        sim = EventSimulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(7.0, lambda: log.append(7))
        sim.run(until=5.0)
        assert (log, sim.now) == ([1], 5.0)
        sim.run(until=10.0)
        assert (log, sim.now) == ([1, 7], 10.0)


class TestStep:
    def test_step_processes_one_event(self):
        sim = EventSimulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        assert sim.step() == 1.0
        assert log == ["a"]
        assert sim.now == 1.0
        assert sim.pending == 1

    def test_step_on_empty_returns_none(self):
        sim = EventSimulator(start=4.0)
        assert sim.step() is None
        assert sim.now == 4.0

    def test_step_drains_in_time_order(self):
        sim = EventSimulator()
        log = []
        for t in (3.0, 1.0, 2.0):
            sim.schedule(t, lambda t=t: log.append(t))
        times = []
        while True:
            fired = sim.step()
            if fired is None:
                break
            times.append(fired)
        assert times == [1.0, 2.0, 3.0]
        assert log == [1.0, 2.0, 3.0]

    def test_step_sees_events_scheduled_by_events(self):
        sim = EventSimulator()
        log = []

        def first():
            log.append("first")
            sim.schedule_in(1.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        assert sim.step() == 1.0
        assert sim.step() == 2.0
        assert log == ["first", "second"]

    def test_step_and_run_interleave(self):
        sim = EventSimulator()
        log = []
        for t in range(4):
            sim.schedule(float(t), lambda t=t: log.append(t))
        assert sim.step() == 0.0
        assert sim.run() == 3
        assert log == [0, 1, 2, 3]
