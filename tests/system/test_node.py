"""Broker/processor node models."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.network import ContentBasedNetwork
from repro.cql.parser import parse_query
from repro.spe.wrappers import ListDataWrapper, TextQueryWrapper
from repro.system.node import Broker, Processor
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)


class TestBroker:
    def test_broker_is_not_processor(self):
        assert not Broker(3).is_processor


class TestStandaloneProcessor:
    def test_accept_and_process(self, auction_catalog):
        proc = Processor(1, auction_catalog)
        proc.accept(parse_query(TABLE1_Q1), name="q1")
        assert proc.query_count == 1
        results = proc.on_source_data(
            Datagram(
                "OpenAuction",
                {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
                0.0,
            )
        )
        assert results == []  # joins need the closing event
        results = proc.on_source_data(
            Datagram("ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 60.0}, 60.0)
        )
        assert len(results) == 1

    def test_group_scoped_feed(self, auction_catalog):
        proc = Processor(1, auction_catalog)
        sub = proc.accept(parse_query(TABLE1_Q1), name="q1")
        group_id = sub.group.group_id
        out = proc.on_source_data(
            Datagram("OpenAuction", {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0}, 0.0),
            group_id,
        )
        assert out == []
        # Unknown group ids are ignored (subscription raced a withdrawal).
        assert proc.on_source_data(
            Datagram("ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 1.0}, 1.0),
            "g-does-not-exist",
        ) == []


class TestNetworkedProcessor:
    def test_subscriptions_installed(self, line_tree, auction_catalog):
        network = ContentBasedNetwork(line_tree)
        network.advertise("OpenAuction", 0, OPEN_AUCTION_SCHEMA)
        network.advertise("ClosedAuction", 0, CLOSED_AUCTION_SCHEMA)
        proc = Processor(2, auction_catalog, network=network)
        proc.accept(parse_query(TABLE1_Q1), name="q1")
        # The processor's source subscription now routes auction data.
        deliveries = network.publish(
            Datagram("OpenAuction", {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0}, 0.0),
            0,
        )
        assert any(d.node == 2 for d in deliveries)

    def test_group_change_replaces_subscription(self, line_tree, auction_catalog):
        network = ContentBasedNetwork(line_tree)
        network.advertise("OpenAuction", 0, OPEN_AUCTION_SCHEMA)
        network.advertise("ClosedAuction", 0, CLOSED_AUCTION_SCHEMA)
        proc = Processor(2, auction_catalog, network=network)
        proc.accept(parse_query(TABLE1_Q1), name="q1")
        count_after_first = network.subscription_count
        proc.accept(parse_query(TABLE1_Q2), name="q2")
        # Same group: the source subscription was replaced, not added.
        assert network.subscription_count == count_after_first

    def test_result_stream_advertised(self, line_tree, auction_catalog):
        network = ContentBasedNetwork(line_tree)
        network.advertise("OpenAuction", 0, OPEN_AUCTION_SCHEMA)
        network.advertise("ClosedAuction", 0, CLOSED_AUCTION_SCHEMA)
        proc = Processor(2, auction_catalog, network=network)
        sub = proc.accept(parse_query(TABLE1_Q1), name="q1")
        assert network.publishers_of(sub.result_stream) == [2]


class TestWrapperIntegration:
    def test_text_query_wrapper_used(self, auction_catalog):
        proc = Processor(1, auction_catalog, query_wrapper=TextQueryWrapper())
        sub = proc.accept(parse_query(TABLE1_Q1), name="q1")
        assert sub.query.name == "q1"
        assert proc.query_count == 1

    def test_custom_data_wrapper_roundtrip(self, auction_catalog):
        wrapper = ListDataWrapper(["itemID", "sellerID", "start_price", "timestamp"])
        proc = Processor(1, auction_catalog, data_wrapper=wrapper)
        proc.accept(parse_query("SELECT O.itemID FROM OpenAuction O"), name="q")
        out = proc.on_source_data(
            Datagram(
                "OpenAuction",
                {"itemID": 5, "sellerID": 1, "start_price": 2.0, "timestamp": 0.0},
                0.0,
            )
        )
        assert len(out) == 1
        assert out[0].payload["OpenAuction.itemID"] == 5
