"""Adaptive load management: detector, placement, migration mechanics."""

import pytest

from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, StreamSchema
from repro.system.cosmos import CosmosSystem, QueryStatus
from repro.system.distribution import LeastLoadedDistribution
from repro.system.loadmgr import (
    GroupMigration,
    HotspotDetector,
    LoadManagementError,
    LoadParams,
    LoadState,
    MigrationChannel,
    MigrationState,
    attach_load_manager,
    capture_group_state,
    choose_target,
    cutover_group,
    placement_cost,
    quarantine_for_migration,
    resume_after_migration,
)
from repro.system.monitor import ProcessorLoad, SystemMonitor
from repro.system.node import Processor

TEMP = StreamSchema(
    "Temp",
    [
        Attribute("station", "int", 0, 9),
        Attribute("celsius", "float", -20.0, 40.0),
    ],
    rate=1.0,
)


def loads(*pairs):
    """ProcessorLoad snapshots from ``(node_id, merged_rate)`` pairs."""
    return [
        ProcessorLoad(node_id=node, queries=1, groups=1, merged_rate=rate)
        for node, rate in pairs
    ]


class TestHotspotDetector:
    def test_reports_newly_hot_once_and_latches(self):
        detector = HotspotDetector()
        assert detector.observe(loads((0, 10.0), (1, 1.0), (2, 1.0))) == [0]
        assert detector.hot == [0]
        # Still overloaded: latched, not re-reported.
        assert detector.observe(loads((0, 10.0), (1, 1.0), (2, 1.0))) == []
        assert detector.hot == [0]

    def test_hysteresis_clears_only_below_clear_ratio(self):
        detector = HotspotDetector()
        detector.observe(loads((0, 10.0), (1, 1.0), (2, 1.0)))
        # Ratio 5/4.33 = 1.15: below overload (1.25) but above clear
        # (1.05) — the latch holds.
        assert detector.observe(loads((0, 5.0), (1, 4.0), (2, 4.0))) == []
        assert detector.hot == [0]
        # Fully balanced: ratio 1.0 < 1.05 clears the latch.
        assert detector.observe(loads((0, 4.0), (1, 4.0), (2, 4.0))) == []
        assert detector.hot == []

    def test_between_thresholds_never_latches_fresh(self):
        detector = HotspotDetector()
        assert detector.observe(loads((0, 5.0), (1, 4.0), (2, 4.0))) == []
        assert detector.hot == []

    def test_single_processor_is_never_hot(self):
        detector = HotspotDetector()
        detector.observe(loads((0, 10.0), (1, 1.0), (2, 1.0)))
        assert detector.observe(loads((0, 10.0))) == []
        assert detector.hot == []

    def test_zero_mean_clears(self):
        detector = HotspotDetector()
        detector.observe(loads((0, 10.0), (1, 1.0), (2, 1.0)))
        assert detector.observe(loads((0, 0.0), (1, 0.0))) == []
        assert detector.hot == []

    def test_departed_processors_are_pruned(self):
        detector = HotspotDetector()
        detector.observe(loads((0, 10.0), (1, 1.0), (2, 1.0)))
        # Node 0 crashed: its snapshot vanishes and so must its latch.
        assert detector.observe(loads((1, 1.0), (2, 1.0))) == []
        assert detector.hot == []

    def test_custom_thresholds(self):
        detector = HotspotDetector(LoadParams(overload_ratio=2.0))
        assert detector.observe(loads((0, 5.0), (1, 4.0), (2, 4.0))) == []
        assert detector.observe(loads((0, 20.0), (1, 4.0), (2, 4.0))) == [0]


class TestMigrationStateMachine:
    def migration(self):
        return GroupMigration("m0", "G1", source_node=1, target_node=3)

    def test_happy_path(self):
        m = self.migration()
        assert m.state is MigrationState.PREPARING
        m.start_drain()
        m.cut_over()
        m.complete()
        assert m.state is MigrationState.COMPLETED

    def test_abort_from_every_in_flight_state(self):
        for advance in (0, 1, 2):
            m = self.migration()
            for step in (m.start_drain, m.cut_over)[:advance]:
                step()
            m.abort()
            assert m.state is MigrationState.ABORTED

    def test_out_of_order_transitions_raise(self):
        m = self.migration()
        with pytest.raises(LoadManagementError):
            m.cut_over()
        with pytest.raises(LoadManagementError):
            m.complete()
        m.start_drain()
        with pytest.raises(LoadManagementError):
            m.start_drain()

    def test_terminal_states_refuse_abort(self):
        m = self.migration()
        m.start_drain()
        m.cut_over()
        m.complete()
        with pytest.raises(LoadManagementError):
            m.abort()
        aborted = self.migration()
        aborted.abort()
        with pytest.raises(LoadManagementError):
            aborted.abort()

    def test_key_is_group_at_source(self):
        assert self.migration().key == "G1@n1"


class TestMigrationChannel:
    def test_empty_channel_closes_gap_free(self):
        assert MigrationChannel().close(0.0) == []

    def test_in_order_handoff_releases_everything(self):
        channel = MigrationChannel()
        released = [
            channel.send({"kind": "member", "name": f"q{i}"}, float(i))
            for i in range(3)
        ]
        assert released == [1, 1, 1]
        assert channel.transferred == 3
        assert channel.close(3.0) == []

    def test_lost_chunk_surfaces_as_gap(self):
        channel = MigrationChannel()
        channel.uplink.stamp({"kind": "header"}, 0.0)  # seq 0, never offered
        seq = channel.uplink.stamp({"kind": "member"}, 1.0)
        channel.receiver.offer(seq, {"kind": "member"}, 1.0)
        assert channel.close(2.0) == [0]


@pytest.fixture
def system(line_tree):
    """Two processors (1, 3) on the 0-1-2-3-4 line, source at 0."""
    sys_ = CosmosSystem(line_tree, processor_nodes=[1, 3])
    sys_.add_source(TEMP, 0)
    return sys_


def submit_pair(system):
    """Two identical queries from node 4 — they merge into one group."""
    qa = system.submit(
        "SELECT T.station FROM Temp [Now] T", user_node=4, name="qa"
    )
    qb = system.submit(
        "SELECT T.station FROM Temp [Now] T", user_node=4, name="qb"
    )
    assert qa.processor_node == qb.processor_node
    processor = system.processors[qa.processor_node]
    (group,) = processor.manager.groups
    return qa, qb, group


class TestPlacement:
    def test_cost_prices_source_pull_and_result_push(self, system):
        __, __, group = submit_pair(system)
        near_source = placement_cost(system, group, 1)
        near_user = placement_cost(system, group, 3)
        assert near_source > 0.0 and near_user > 0.0
        # Both processors pay the same 4-hop source->user span split
        # differently; the cheaper one wins in choose_target.
        best = choose_target(system, group, exclude=set())
        assert best in (1, 3)
        assert placement_cost(system, group, best) == min(near_source, near_user)

    def test_choose_target_honours_exclusions(self, system):
        __, __, group = submit_pair(system)
        best = choose_target(system, group, exclude=set())
        other = choose_target(system, group, exclude={best})
        assert other is not None and other != best
        assert choose_target(system, group, exclude={1, 3}) is None


class TestCaptureState:
    def test_header_plus_one_chunk_per_member(self, system):
        qa, __, group = submit_pair(system)
        chunks = capture_group_state(system, qa.processor_node, group.group_id)
        assert chunks[0]["kind"] == "header"
        assert chunks[0]["group"] == group.group_id
        assert chunks[0]["members"] == 2
        assert [c["name"] for c in chunks[1:]] == ["qa", "qb"]

    def test_gone_group_captures_empty(self, system):
        qa, __, group = submit_pair(system)
        assert capture_group_state(system, qa.processor_node, "nope") == []
        assert capture_group_state(system, 99, group.group_id) == []


class TestQuarantineResume:
    def test_quarantine_withdraws_users_and_degrades(self, system):
        qa, qb, group = submit_pair(system)
        names = quarantine_for_migration(system, qa.processor_node, group.group_id)
        assert names == ["qa", "qb"]
        assert qa.status is QueryStatus.DEGRADED
        assert qb.status is QueryStatus.DEGRADED
        assert "qa" not in system._user_subscriptions
        # Deliveries stop while the group is in motion.
        system.publish("Temp", {"station": 3, "celsius": 20.0}, 1.0)
        assert qa.result_count == 0

    def test_quarantine_is_idempotent_per_member(self, system):
        qa, __, group = submit_pair(system)
        quarantine_for_migration(system, qa.processor_node, group.group_id)
        # Already-degraded members belong to their first quarantiner.
        assert (
            quarantine_for_migration(system, qa.processor_node, group.group_id)
            == []
        )

    def test_quarantine_unknown_endpoints_raise(self, system):
        qa, __, group = submit_pair(system)
        with pytest.raises(LoadManagementError):
            quarantine_for_migration(system, 99, group.group_id)
        with pytest.raises(LoadManagementError):
            quarantine_for_migration(system, qa.processor_node, "nope")

    def test_resume_at_source_is_the_abort_path(self, system):
        qa, qb, group = submit_pair(system)
        node = qa.processor_node
        quarantine_for_migration(system, node, group.group_id)
        resumed = resume_after_migration(system, node, ["qa", "qb"])
        assert resumed == ["qa", "qb"]
        assert qa.status is QueryStatus.ACTIVE
        assert qb.status is QueryStatus.ACTIVE
        system.publish("Temp", {"station": 3, "celsius": 20.0}, 1.0)
        assert qa.result_count == 1 and qb.result_count == 1

    def test_resume_skips_members_it_does_not_own(self, system):
        qa, __, group = submit_pair(system)
        node = qa.processor_node
        # qa never quarantined: ACTIVE members are left untouched.
        assert resume_after_migration(system, node, ["qa", "ghost"]) == []


class TestCutover:
    def test_cutover_moves_group_and_keeps_delivering(self, system):
        qa, qb, group = submit_pair(system)
        source = qa.processor_node
        target = 3 if source == 1 else 1
        quarantine_for_migration(system, source, group.group_id)
        migration = GroupMigration(
            "m0", group.group_id, source, target, members=["qa", "qb"]
        )
        migration.start_drain()
        migration.cut_over()
        resumed = cutover_group(system, migration)
        migration.complete()
        assert resumed == ["qa", "qb"]
        assert qa.processor_node == target and qb.processor_node == target
        assert system.processors[source].group_count == 0
        assert system.processors[target].group_count == 1
        # Zero loss: post-move tuples flow to both members.
        system.publish("Temp", {"station": 5, "celsius": 21.0}, 2.0)
        assert qa.result_count == 1 and qb.result_count == 1

    def test_cutover_with_missing_endpoint_raises(self, system):
        qa, __, group = submit_pair(system)
        migration = GroupMigration("m0", group.group_id, qa.processor_node, 99)
        with pytest.raises(LoadManagementError):
            cutover_group(system, migration)

    def test_release_group_hands_back_members_intact(self, system):
        qa, __, group = submit_pair(system)
        processor = system.processors[qa.processor_node]
        members = processor.release_group(group.group_id)
        assert [m.name for m in members] == ["qa", "qb"]
        assert processor.group_count == 0
        with pytest.raises(KeyError):
            processor.release_group(group.group_id)


class TestLeastLoadedCountsGroups:
    def q(self, text):
        return parse_query(text)

    def test_merged_queries_count_as_one_group(self, sensor_catalog):
        processors = [Processor(node, sensor_catalog) for node in (0, 2)]
        # Two queries on node 0, but they merge into a single group.
        processors[0].accept(self.q("SELECT T.station FROM Temp [Now] T"), name="a")
        processors[0].accept(self.q("SELECT T.station FROM Temp [Now] T"), name="b")
        processors[1].accept(self.q("SELECT W.speed FROM Wind W"), name="c")
        assert processors[0].query_count == 2
        assert processors[0].group_count == 1
        # Group counts tie 1-1, so the node-id tie-break picks 0 — a
        # raw query count would have steered to node 2.
        chosen = LeastLoadedDistribution().choose(
            self.q("SELECT T.humidity FROM Temp T"), 0, processors
        )
        assert chosen.node_id == 0


class TestAttachLoadManager:
    def test_attach_creates_and_installs_state(self, system):
        state = attach_load_manager(system, LoadParams(overload_ratio=1.5))
        assert system.load is state
        assert state.params.overload_ratio == 1.5
        assert state.detector.params is state.params

    def test_twins_share_one_state(self, system, line_tree):
        twin = CosmosSystem(line_tree, processor_nodes=[1, 3])
        twin.add_source(TEMP, 0)
        state = attach_load_manager(system)
        assert attach_load_manager(twin, state=state) is state
        assert twin.load is system.load

    def test_health_exposes_load_keys_with_and_without_state(self, system):
        bare = SystemMonitor(system).health()
        attach_load_manager(system)
        system.load.counters.hotspots_detected = 2
        system.load.detector._hot.add(1)
        system.load.active["G1@n1"] = GroupMigration("m0", "G1", 1, 3)
        managed = SystemMonitor(system).health()
        assert set(bare) == set(managed)  # stable key set either way
        assert bare["migrations_in_flight"] == 0
        assert managed["hotspots_detected"] == 2
        assert managed["hot_processors"] == [1]
        assert managed["migrations_in_flight"] == 1


class TestLoadState:
    def test_post_init_builds_detector_from_params(self):
        params = LoadParams(clear_ratio=1.2)
        state = LoadState(params=params)
        assert state.detector.params is params
        assert state.active == {}
        assert state.counters.as_dict()["migrations_started"] == 0
