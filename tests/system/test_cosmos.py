"""The end-to-end COSMOS system facade."""

import pytest

from repro.system.cosmos import CosmosSystem, SystemError_
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)


@pytest.fixture
def system(line_tree):
    sys_ = CosmosSystem(line_tree, processor_nodes=[2])
    sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
    sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
    return sys_


def open_auction(system, item, ts, seller=1, price=10.0):
    return system.publish(
        "OpenAuction",
        {"itemID": item, "sellerID": seller, "start_price": price, "timestamp": ts},
        ts,
    )


def close_auction(system, item, ts, buyer=9):
    return system.publish(
        "ClosedAuction", {"itemID": item, "buyerID": buyer, "timestamp": ts}, ts
    )


class TestSubmission:
    def test_submit_text_query(self, system):
        handle = system.submit(TABLE1_Q1, user_node=4, name="q1")
        assert handle.processor_node == 2
        assert handle.result_stream.endswith(":results")

    def test_duplicate_name_rejected(self, system):
        system.submit(TABLE1_Q1, user_node=4, name="q1")
        with pytest.raises(SystemError_):
            system.submit(TABLE1_Q2, user_node=4, name="q1")

    def test_unknown_user_node(self, system):
        with pytest.raises(SystemError_):
            system.submit(TABLE1_Q1, user_node=77)

    def test_unknown_stream_source(self, system):
        with pytest.raises(SystemError_):
            system.source_node("Nope")

    def test_grouping_summary(self, system):
        system.submit(TABLE1_Q1, user_node=4, name="q1")
        system.submit(TABLE1_Q2, user_node=3, name="q2")
        summary = system.grouping_summary()
        assert summary["queries"] == 2.0
        assert summary["groups"] == 1.0
        assert summary["benefit_ratio"] > 0


class TestDataFlow:
    def test_end_to_end_delivery(self, system):
        h1 = system.submit(TABLE1_Q1, user_node=4, name="q1")
        open_auction(system, 1, 0.0)
        deliveries = close_auction(system, 1, 3600.0)
        assert len(deliveries) == 1
        assert h1.result_count == 1
        payload = dict(h1.results[0].payload)
        assert payload["OpenAuction.itemID"] == 1

    def test_window_split_between_members(self, system):
        h1 = system.submit(TABLE1_Q1, user_node=4, name="q1")
        h2 = system.submit(TABLE1_Q2, user_node=3, name="q2")
        open_auction(system, 1, 0.0)
        close_auction(system, 1, 2 * 3600.0)    # 2h: both
        open_auction(system, 2, 3 * 3600.0)
        close_auction(system, 2, 7.5 * 3600.0)  # 4.5h: only q2
        assert h1.result_count == 1
        assert h2.result_count == 2

    def test_projection_per_member(self, system):
        h2 = system.submit(TABLE1_Q2, user_node=3, name="q2")
        open_auction(system, 1, 0.0)
        close_auction(system, 1, 60.0)
        payload = dict(h2.results[0].payload)
        assert set(payload) == {
            "OpenAuction.itemID",
            "OpenAuction.timestamp",
            "ClosedAuction.buyerID",
            "ClosedAuction.timestamp",
        }

    def test_no_queries_no_delivery(self, system):
        assert open_auction(system, 1, 0.0) == []

    def test_replay_counts_deliveries(self, system):
        from repro.cbn.datagram import Datagram

        system.submit(TABLE1_Q2, user_node=4, name="q2")
        feed = [
            Datagram("OpenAuction", {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0}, 0.0),
            Datagram("ClosedAuction", {"itemID": 1, "buyerID": 1, "timestamp": 10.0}, 10.0),
        ]
        assert system.replay(feed) == 1

    def test_data_cost_accumulates(self, system):
        system.submit(TABLE1_Q1, user_node=4, name="q1")
        open_auction(system, 1, 0.0)
        close_auction(system, 1, 60.0)
        assert system.data_cost() > 0


class TestWithdraw:
    def test_withdraw_stops_delivery(self, system):
        system.submit(TABLE1_Q1, user_node=4, name="q1")
        system.withdraw("q1")
        open_auction(system, 1, 0.0)
        assert close_auction(system, 1, 60.0) == []

    def test_withdraw_member_keeps_other(self, system):
        system.submit(TABLE1_Q1, user_node=4, name="q1")
        h2 = system.submit(TABLE1_Q2, user_node=3, name="q2")
        system.withdraw("q1")
        open_auction(system, 1, 0.0)
        close_auction(system, 1, 60.0)
        assert h2.result_count == 1

    def test_withdraw_unknown(self, system):
        with pytest.raises(SystemError_):
            system.withdraw("zzz")


class TestMergingToggle:
    def test_non_merging_system_runs_queries_separately(self, line_tree):
        sys_ = CosmosSystem(line_tree, processor_nodes=[2], merging=False)
        sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
        sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
        sys_.submit(TABLE1_Q1, user_node=4, name="q1")
        sys_.submit(TABLE1_Q2, user_node=3, name="q2")
        assert sys_.grouping_summary()["groups"] == 2.0

    def test_merging_and_non_merging_agree_on_results(self, line_tree):
        def build(merging):
            sys_ = CosmosSystem(line_tree, processor_nodes=[2], merging=merging)
            sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
            sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
            h1 = sys_.submit(TABLE1_Q1, user_node=4, name="q1")
            h2 = sys_.submit(TABLE1_Q2, user_node=3, name="q2")
            open_auction(sys_, 1, 0.0)
            close_auction(sys_, 1, 3600.0)
            open_auction(sys_, 2, 4000.0)
            close_auction(sys_, 2, 4000.0 + 4 * 3600.0)
            return h1.result_count, h2.result_count

        assert build(True) == build(False) == (1, 2)


class TestProcessorPlacement:
    def test_processor_not_in_tree_rejected(self, line_tree):
        with pytest.raises(SystemError_):
            CosmosSystem(line_tree, processor_nodes=[99])

    def test_brokers_are_rest_of_nodes(self, system):
        assert set(system.brokers) == {0, 1, 3, 4}


class TestPerSourceTrees:
    def test_requires_topology(self, line_tree):
        from repro.system.cosmos import SystemError_

        with pytest.raises(SystemError_):
            CosmosSystem(line_tree, processor_nodes=[2], per_source_trees=True)

    def test_results_identical_with_source_trees(self):
        import random

        from repro.overlay.topology import barabasi_albert
        from repro.overlay.tree import DisseminationTree

        def build(per_source_trees):
            topo = barabasi_albert(30, 2, random.Random(21))
            tree = DisseminationTree.minimum_spanning(topo)
            system = CosmosSystem(
                tree,
                processor_nodes=[2],
                topology=topo,
                per_source_trees=per_source_trees,
            )
            system.add_source(OPEN_AUCTION_SCHEMA, 5)
            system.add_source(CLOSED_AUCTION_SCHEMA, 6)
            handle = system.submit(TABLE1_Q2, user_node=9, name="q2")
            system.publish(
                "OpenAuction",
                {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
                0.0,
            )
            system.publish(
                "ClosedAuction",
                {"itemID": 1, "buyerID": 2, "timestamp": 3600.0},
                3600.0,
            )
            payloads = sorted(
                tuple(sorted(r.payload.items())) for r in handle.results
            )
            return payloads, system.data_cost()

        flat_results, flat_cost = build(False)
        src_results, src_cost = build(True)
        assert flat_results == src_results
        # Shortest-path trees from each source never cost more (delay
        # weighted) than the shared MST for source dissemination.
        assert src_cost <= flat_cost * 1.05


class TestWithdrawRefreshesSurvivors:
    def test_surviving_member_keeps_receiving(self, line_tree):
        """Regression: withdrawing a member narrows the representative;
        the survivors' result subscriptions must be recomposed or their
        old re-tightening filters reference attributes the new result
        stream no longer carries."""
        from repro.cql.schema import Attribute, StreamSchema

        schema = StreamSchema(
            "Temp",
            [
                Attribute("station", "int", 0, 9),
                Attribute("humidity", "float", 0, 100),
                Attribute("temperature", "float", -20, 40),
            ],
            rate=1.0,
        )
        sys_ = CosmosSystem(line_tree, processor_nodes=[2])
        sys_.add_source(schema, 0)
        sys_.submit(
            "SELECT T.station, T.humidity FROM Temp T WHERE T.temperature >= 10",
            user_node=4,
            name="a",
        )
        hb = sys_.submit(
            "SELECT T.station, T.humidity FROM Temp T WHERE T.temperature >= 12",
            user_node=3,
            name="b",
        )
        assert sys_.grouping_summary()["groups"] == 1  # they merged
        sys_.publish("Temp", {"station": 1, "humidity": 50.0, "temperature": 35.0}, 0.0)
        assert hb.result_count == 1
        sys_.withdraw("a")
        sys_.publish("Temp", {"station": 2, "humidity": 51.0, "temperature": 36.0}, 1.0)
        sys_.publish("Temp", {"station": 3, "humidity": 52.0, "temperature": 11.0}, 2.0)
        assert hb.result_count == 2  # got the hot one, not the 11° one
        payloads = [dict(r.payload) for r in hb.results]
        assert all(set(p) == {"Temp.station", "Temp.humidity"} for p in payloads)
