"""Query distribution policies."""

import pytest

from repro.cql.parser import parse_query
from repro.system.distribution import (
    DistributionError,
    LeastLoadedDistribution,
    ProximityDistribution,
    RoundRobinDistribution,
    StreamAffinityDistribution,
)
from repro.system.node import Processor


@pytest.fixture
def processors(sensor_catalog):
    return [Processor(node, sensor_catalog) for node in (0, 2, 4)]


def q(text):
    return parse_query(text)


class TestRoundRobin:
    def test_cycles(self, processors):
        policy = RoundRobinDistribution()
        query = q("SELECT T.temperature FROM Temp T")
        chosen = [policy.choose(query, 0, processors).node_id for __ in range(6)]
        assert chosen == [0, 2, 4, 0, 2, 4]

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            RoundRobinDistribution().choose(q("SELECT T.a FROM T"), 0, [])


class TestLeastLoaded:
    def test_prefers_idle_processor(self, processors):
        policy = LeastLoadedDistribution()
        processors[0].accept(q("SELECT T.temperature FROM Temp T"), name="a")
        chosen = policy.choose(q("SELECT T.humidity FROM Temp T"), 0, processors)
        assert chosen.node_id == 2

    def test_tie_breaks_by_node_id(self, processors):
        policy = LeastLoadedDistribution()
        assert policy.choose(q("SELECT T.temperature FROM Temp T"), 0, processors).node_id == 0


class TestProximity:
    def test_nearest_on_tree(self, line_tree, sensor_catalog):
        processors = [Processor(0, sensor_catalog), Processor(4, sensor_catalog)]
        policy = ProximityDistribution(line_tree)
        assert policy.choose(q("SELECT T.a FROM T"), 1, processors).node_id == 0
        assert policy.choose(q("SELECT T.a FROM T"), 3, processors).node_id == 4


class TestStreamAffinity:
    def test_same_from_set_same_processor(self, processors):
        policy = StreamAffinityDistribution()
        a = policy.choose(q("SELECT T.temperature FROM Temp T"), 0, processors)
        b = policy.choose(q("SELECT x.humidity FROM Temp x"), 7, processors)
        assert a.node_id == b.node_id

    def test_deterministic_across_instances(self, processors):
        query = q("SELECT T.temperature FROM Temp T")
        a = StreamAffinityDistribution().choose(query, 0, processors)
        b = StreamAffinityDistribution().choose(query, 0, processors)
        assert a.node_id == b.node_id

    def test_join_order_irrelevant(self, processors):
        policy = StreamAffinityDistribution()
        a = policy.choose(
            q("SELECT T.station FROM Temp T, Wind W WHERE T.station = W.station"),
            0,
            processors,
        )
        b = policy.choose(
            q("SELECT W.station FROM Wind W, Temp T WHERE T.station = W.station"),
            0,
            processors,
        )
        assert a.node_id == b.node_id


class TestCapacityAware:
    def test_full_processor_skipped(self, processors):
        from repro.system.distribution import CapacityAwareDistribution

        policy = CapacityAwareDistribution(
            LeastLoadedDistribution(), {0: 0}
        )
        chosen = policy.choose(q("SELECT T.temperature FROM Temp T"), 0, processors)
        assert chosen.node_id != 0

    def test_unlisted_processors_unconstrained(self, processors):
        from repro.system.distribution import CapacityAwareDistribution

        policy = CapacityAwareDistribution(LeastLoadedDistribution(), {})
        chosen = policy.choose(q("SELECT T.temperature FROM Temp T"), 0, processors)
        assert chosen.node_id == 0

    def test_all_full_falls_back_to_least_loaded(self, processors):
        from repro.system.distribution import CapacityAwareDistribution

        processors[0].accept(q("SELECT T.temperature FROM Temp T"), name="x")
        policy = CapacityAwareDistribution(
            LeastLoadedDistribution(), {0: 0, 2: 0, 4: 0}
        )
        chosen = policy.choose(q("SELECT T.humidity FROM Temp T"), 0, processors)
        assert chosen.node_id == 2  # least loaded among the (full) set

    def test_capacity_respected_under_load(self, sensor_catalog):
        from repro.system.distribution import CapacityAwareDistribution

        procs = [Processor(node, sensor_catalog) for node in (0, 1)]
        policy = CapacityAwareDistribution(LeastLoadedDistribution(), {0: 2})
        for index in range(6):
            chosen = policy.choose(
                q("SELECT T.temperature FROM Temp T"), 0, procs
            )
            chosen.accept(q("SELECT T.temperature FROM Temp T"), name=f"q{index}")
        assert procs[0].query_count <= 2
        assert procs[1].query_count >= 4


class TestCostAware:
    def test_prefers_on_path_over_detour(self, star_tree, sensor_catalog):
        from repro.system.distribution import CostAwareDistribution

        # Star: source at 1, user at 3; processor 0 (the hub) is on the
        # path, processor 4 is a two-hop detour.
        procs = [Processor(0, sensor_catalog), Processor(4, sensor_catalog)]
        policy = CostAwareDistribution(
            star_tree, sensor_catalog, {"Temp": 1, "Wind": 1}
        )
        chosen = policy.choose(
            q("SELECT T.temperature FROM Temp T"), 3, procs
        )
        assert chosen.node_id == 0

    def test_heavy_result_pulls_processor_toward_user(self, line_tree, sensor_catalog):
        from repro.system.distribution import CostAwareDistribution

        procs = [Processor(1, sensor_catalog), Processor(3, sensor_catalog)]
        policy = CostAwareDistribution(
            line_tree, sensor_catalog, {"Temp": 0, "Wind": 0}
        )
        # Unfiltered wide query: result stream as heavy as the source;
        # the midpoint placements tie on total flow, node id breaks it —
        # but a *filtered* query has a light result, pulling the
        # processor toward the source.
        light_result = policy.choose(
            q("SELECT T.station FROM Temp T WHERE T.temperature >= 38"),
            4,
            procs,
        )
        assert light_result.node_id == 1

    def test_deterministic(self, line_tree, sensor_catalog):
        from repro.system.distribution import CostAwareDistribution

        procs = [Processor(0, sensor_catalog), Processor(2, sensor_catalog)]
        policy = CostAwareDistribution(
            line_tree, sensor_catalog, {"Temp": 0, "Wind": 0}
        )
        query = q("SELECT T.temperature FROM Temp T")
        assert (
            policy.choose(query, 4, procs).node_id
            == policy.choose(query, 4, procs).node_id
        )
