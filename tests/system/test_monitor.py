"""The system monitor."""

import pytest

from repro.system.cosmos import CosmosSystem
from repro.system.monitor import SystemMonitor
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)


@pytest.fixture
def busy_system(line_tree):
    system = CosmosSystem(line_tree, processor_nodes=[2])
    system.add_source(OPEN_AUCTION_SCHEMA, 0)
    system.add_source(CLOSED_AUCTION_SCHEMA, 0)
    system.submit(TABLE1_Q1, user_node=4, name="q1")
    system.submit(TABLE1_Q2, user_node=3, name="q2")
    system.publish(
        "OpenAuction",
        {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
        0.0,
    )
    system.publish(
        "ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 60.0}, 60.0
    )
    return system


class TestProcessorLoads:
    def test_counts(self, busy_system):
        monitor = SystemMonitor(busy_system)
        (load,) = monitor.processor_loads()
        assert load.node_id == 2
        assert load.queries == 2
        assert load.groups == 1
        assert load.grouping_ratio == 0.5
        assert load.merged_rate > 0

    def test_imbalance_single_processor(self, busy_system):
        assert SystemMonitor(busy_system).load_imbalance() == 1.0

    def test_imbalance_empty_system(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        assert SystemMonitor(system).load_imbalance() == 1.0


class TestDataLayer:
    def test_hottest_links_ordered(self, busy_system):
        spots = SystemMonitor(busy_system).hottest_links()
        assert spots
        sizes = [s.bytes for s in spots]
        assert sizes == sorted(sizes, reverse=True)

    def test_routing_pressure_keys(self, busy_system):
        pressure = SystemMonitor(busy_system).routing_pressure()
        assert pressure["subscriptions"] >= 3  # 2 users + 1 source profile
        assert pressure["data_bytes"] > 0
        assert pressure["routing_entries"] > 0


class TestHealth:
    def test_unmonitored_system_is_trivially_healthy(self, busy_system):
        health = SystemMonitor(busy_system).health()
        assert health["retransmits"] == 0
        assert health["suspected_nodes"] == []
        assert health["quarantined_queries"] == []
        assert health["degraded_queries"] == 0

    def test_reliability_state_is_surfaced(self, busy_system):
        from repro.system.reliability import attach_reliability

        state = attach_reliability(busy_system)
        state.counters.retransmits = 3
        state.counters.duplicates_suppressed = 2
        state.detector.register(7, 0.0)
        state.detector.check(100.0)
        state.quarantined["q2"] = 3
        health = SystemMonitor(busy_system).health()
        assert health["retransmits"] == 3
        assert health["duplicates_suppressed"] == 2
        assert health["suspected_nodes"] == [7]
        assert health["quarantined_queries"] == ["q2"]

    def test_degraded_queries_counted_from_handles(self, busy_system):
        from repro.system.cosmos import QueryStatus

        busy_system.query("q1").status = QueryStatus.DEGRADED
        assert SystemMonitor(busy_system).health()["degraded_queries"] == 1


class TestReport:
    def test_report_contains_sections(self, busy_system):
        report = SystemMonitor(busy_system).report()
        assert "Query layer" in report
        assert "Hottest links" in report
        assert "Data layer" in report

    def test_report_on_idle_system(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        report = SystemMonitor(system).report()
        assert "Query layer" in report
        assert "Hottest links" not in report  # no traffic yet

    def test_report_has_reliability_section(self, busy_system):
        from repro.system.reliability import attach_reliability

        attach_reliability(busy_system)
        report = SystemMonitor(busy_system).report()
        assert "Reliability" in report
        assert "retransmits" in report
