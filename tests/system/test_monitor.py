"""The system monitor."""

import pytest

from repro.system.cosmos import CosmosSystem
from repro.system.monitor import SystemMonitor
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)


@pytest.fixture
def busy_system(line_tree):
    system = CosmosSystem(line_tree, processor_nodes=[2])
    system.add_source(OPEN_AUCTION_SCHEMA, 0)
    system.add_source(CLOSED_AUCTION_SCHEMA, 0)
    system.submit(TABLE1_Q1, user_node=4, name="q1")
    system.submit(TABLE1_Q2, user_node=3, name="q2")
    system.publish(
        "OpenAuction",
        {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
        0.0,
    )
    system.publish(
        "ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 60.0}, 60.0
    )
    return system


class TestProcessorLoads:
    def test_counts(self, busy_system):
        monitor = SystemMonitor(busy_system)
        (load,) = monitor.processor_loads()
        assert load.node_id == 2
        assert load.queries == 2
        assert load.groups == 1
        assert load.grouping_ratio == 0.5
        assert load.merged_rate > 0

    def test_imbalance_single_processor(self, busy_system):
        assert SystemMonitor(busy_system).load_imbalance() == 1.0

    def test_imbalance_empty_system(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        assert SystemMonitor(system).load_imbalance() == 1.0


class TestDataLayer:
    def test_hottest_links_ordered(self, busy_system):
        spots = SystemMonitor(busy_system).hottest_links()
        assert spots
        sizes = [s.bytes for s in spots]
        assert sizes == sorted(sizes, reverse=True)

    def test_routing_pressure_keys(self, busy_system):
        pressure = SystemMonitor(busy_system).routing_pressure()
        assert pressure["subscriptions"] >= 3  # 2 users + 1 source profile
        assert pressure["data_bytes"] > 0
        assert pressure["routing_entries"] > 0


class TestReport:
    def test_report_contains_sections(self, busy_system):
        report = SystemMonitor(busy_system).report()
        assert "Query layer" in report
        assert "Hottest links" in report
        assert "Data layer" in report

    def test_report_on_idle_system(self, line_tree):
        system = CosmosSystem(line_tree, processor_nodes=[2])
        report = SystemMonitor(system).report()
        assert "Query layer" in report
        assert "Hottest links" not in report  # no traffic yet
