"""Routing-state rebuild over a new tree (shared by fault & tuning)."""

import pytest

from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.system.rebuild import RebuildError, rebuild_network
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
)


def line(nodes):
    edges = list(zip(nodes, nodes[1:]))
    return DisseminationTree(edges, {tuple(sorted(e)): 1.0 for e in edges})


@pytest.fixture
def system(line_tree):
    sys_ = CosmosSystem(line_tree, processor_nodes=[2])
    sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
    sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
    sys_.submit(TABLE1_Q1, user_node=4, name="q1")
    return sys_


class TestRebuild:
    def test_delivery_works_on_new_tree(self, system):
        # Re-wire the same five nodes in a different order.
        rebuild_network(system, line([0, 2, 1, 3, 4]))
        system.publish(
            "OpenAuction",
            {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
            0.0,
        )
        deliveries = system.publish(
            "ClosedAuction", {"itemID": 1, "buyerID": 2, "timestamp": 60.0}, 60.0
        )
        assert len(deliveries) == 1

    def test_statistics_carry_over(self, system):
        system.publish(
            "OpenAuction",
            {"itemID": 1, "sellerID": 1, "start_price": 1.0, "timestamp": 0.0},
            0.0,
        )
        before = system.network.data_stats.total_bytes()
        assert before > 0
        rebuild_network(system, line([0, 2, 1, 3, 4]))
        assert system.network.data_stats.total_bytes() == before

    def test_missing_user_node_rejected(self, system):
        with pytest.raises(RebuildError):
            rebuild_network(system, line([0, 1, 2, 3]))  # drops user node 4

    def test_missing_processor_rejected(self, line_tree):
        sys_ = CosmosSystem(line_tree, processor_nodes=[4])
        sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
        with pytest.raises(RebuildError):
            rebuild_network(sys_, line([0, 1, 2, 3]))

    def test_missing_source_rejected(self, line_tree):
        sys_ = CosmosSystem(line_tree, processor_nodes=[1])
        sys_.add_source(OPEN_AUCTION_SCHEMA, 4)
        with pytest.raises(RebuildError):
            rebuild_network(sys_, line([0, 1, 2, 3]))

    def test_flags_preserved(self, line_tree):
        sys_ = CosmosSystem(line_tree, processor_nodes=[2], use_subsumption=True)
        sys_.add_source(OPEN_AUCTION_SCHEMA, 0)
        sys_.add_source(CLOSED_AUCTION_SCHEMA, 0)
        rebuild_network(sys_, line([0, 2, 1, 3, 4]))
        assert sys_.network.use_subsumption
