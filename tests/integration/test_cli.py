"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "split reproduces direct execution: True" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "results identical: True" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Query layer" in out
        assert "delivered" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
