"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "split reproduces direct execution: True" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "results identical: True" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Query layer" in out
        assert "delivered" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestChaosCli:
    def test_smoke_sweep_passes(self, capsys):
        assert main(["chaos", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos totals:" in out

    def test_recovery_sweep_reports_convergence(self, capsys, tmp_path):
        artifact = tmp_path / "rec.json"
        assert main(
            ["chaos", "--seeds", "2", "--recovery", "--json", str(artifact)]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery (converged t=" in out
        assert "retransmits=" in out
        import json

        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["seeds"][0]["reliability"]["retransmits"] >= 0
        assert "convergence_time" in payload["seeds"][0]

    def test_conform_sweep_records_transition_counts(self, capsys, tmp_path):
        artifact = tmp_path / "conform.json"
        assert main(
            [
                "chaos",
                "--seeds",
                "2",
                "--recovery",
                "--conform",
                "--json",
                str(artifact),
            ]
        ) == 0
        import json

        payload = json.loads(artifact.read_text())
        for record in payload["seeds"]:
            assert record["conformance_violations"] == []
            transitions = record["conformance_transitions"]
            assert "uplink-receiver" in transitions
            for bucket in transitions.values():
                for key, count in bucket.items():
                    label, _, arrow = key.partition(" ")
                    assert label and "->" in arrow
                    assert count >= 1

    def test_sweep_exits_nonzero_when_any_seed_fails(
        self, capsys, monkeypatch
    ):
        # Regression gate: one bad seed in a sweep must fail the whole
        # invocation (CI keys off the exit code).
        import repro.sim as sim

        real = sim.run_schedule

        def rigged(config, events):
            report = real(config, events)
            if config.seed == 1:
                report.violations.append("rigged: injected failure")
            return report

        monkeypatch.setattr(sim, "run_schedule", rigged)
        assert main(["chaos", "--seeds", "2", "--no-shrink"]) == 1
        out = capsys.readouterr().out
        assert "violations=1" in out


class TestModelCli:
    def test_text_mode_clean(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "exhausted" in out
        assert "0 error(s), 0 warning(s)" in out

    def test_json_payload_shape(self, capsys):
        assert main(["model", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        model = payload["model"]
        assert model["exhausted"] is True
        assert model["dropped_rules"] == []
        assert model["uncertified"] == []
        assert {c["name"] for c in model["components"]} == {
            "slot", "channel", "detector", "node", "query", "migration"
        }

    def test_dot_mode(self, capsys):
        assert main(["model", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph product {")

    def test_depth_bound(self, capsys):
        assert main(["model", "--depth", "2"]) == 0
        assert "TRUNCATED" in capsys.readouterr().out

    def test_coverage_over_fresh_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "sweep.json"
        assert main(
            [
                "chaos",
                "--seeds",
                "2",
                "--recovery",
                "--migrate",
                "--conform",
                "--json",
                str(artifact),
            ]
        ) == 0
        capsys.readouterr()
        # Two seeds cannot exercise everything: without the baseline
        # the cold remainder must surface as COS905 warnings (exit 0,
        # exit 1 under --strict).
        assert main(
            ["model", "--coverage", str(artifact), "--no-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "COS905" in out
        assert main(
            [
                "model",
                "--coverage",
                str(artifact),
                "--no-baseline",
                "--strict",
            ]
        ) == 1
        capsys.readouterr()

    def test_coverage_with_baseline_ledger(self, capsys, tmp_path):
        artifact = tmp_path / "sweep.json"
        assert main(
            [
                "chaos",
                "--seeds",
                "2",
                "--recovery",
                "--conform",
                "--json",
                str(artifact),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["model", "--coverage", str(artifact), "--no-baseline", "--json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        cold = [
            d for d in payload["diagnostics"] if d["code"] == "COS905"
        ]
        assert cold
        # Ledger every cold transition: the strict run must go green
        # and the payload must account for the forgiven findings.
        ledger = tmp_path / "baseline.txt"
        lines = {}
        for diag in cold:
            lines[diag["file"]] = lines.get(diag["file"], 0) + 1
        ledger.write_text(
            "\n".join(
                f"{rel} COS905 {count}" for rel, count in sorted(lines.items())
            )
            + "\n"
        )
        assert main(
            [
                "model",
                "--coverage",
                str(artifact),
                "--baseline",
                str(ledger),
                "--strict",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["warnings"] == 0
        assert payload["forgiven"] == len(cold)
        assert payload["coverage"]["coverage_gated"] == 1.0
