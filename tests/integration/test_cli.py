"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "split reproduces direct execution: True" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "results identical: True" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Query layer" in out
        assert "delivered" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestChaosCli:
    def test_smoke_sweep_passes(self, capsys):
        assert main(["chaos", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos totals:" in out

    def test_recovery_sweep_reports_convergence(self, capsys, tmp_path):
        artifact = tmp_path / "rec.json"
        assert main(
            ["chaos", "--seeds", "2", "--recovery", "--json", str(artifact)]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery (converged t=" in out
        assert "retransmits=" in out
        import json

        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["seeds"][0]["reliability"]["retransmits"] >= 0
        assert "convergence_time" in payload["seeds"][0]

    def test_sweep_exits_nonzero_when_any_seed_fails(
        self, capsys, monkeypatch
    ):
        # Regression gate: one bad seed in a sweep must fail the whole
        # invocation (CI keys off the exit code).
        import repro.sim as sim

        real = sim.run_schedule

        def rigged(config, events):
            report = real(config, events)
            if config.seed == 1:
                report.violations.append("rigged: injected failure")
            return report

        monkeypatch.setattr(sim, "run_schedule", rigged)
        assert main(["chaos", "--seeds", "2", "--no-shrink"]) == 1
        out = capsys.readouterr().out
        assert "violations=1" in out
