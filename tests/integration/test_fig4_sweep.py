"""Smoke-scale Figure 4 sweep: the qualitative trends must hold."""

import pytest

from repro.experiments.fig4 import Fig4Config, run_fig4


@pytest.fixture(scope="module")
def result():
    config = Fig4Config(
        query_counts=(150, 400),
        skews=(0.0, 2.0),
        repetitions=2,
        topology_nodes=200,
        n_processors=4,
        seed=21,
    )
    return run_fig4(config)


class TestShape:
    def test_all_points_present(self, result):
        assert len(result.points) == 4

    def test_ratios_in_unit_interval(self, result):
        for point in result.points:
            assert 0.0 <= point.benefit_ratio <= 1.0
            assert 0.0 < point.grouping_ratio <= 1.0

    def test_benefit_grows_with_queries(self, result):
        for skew in (0.0, 2.0):
            series = result.series(skew)
            assert series[-1].benefit_ratio >= series[0].benefit_ratio

    def test_grouping_ratio_falls_with_queries(self, result):
        for skew in (0.0, 2.0):
            series = result.series(skew)
            assert series[-1].grouping_ratio <= series[0].grouping_ratio

    def test_skew_increases_benefit(self, result):
        n = 400
        assert (
            result.point(2.0, n).benefit_ratio
            > result.point(0.0, n).benefit_ratio
        )

    def test_skew_decreases_grouping_ratio(self, result):
        n = 400
        assert (
            result.point(2.0, n).grouping_ratio
            < result.point(0.0, n).grouping_ratio
        )

    def test_labels(self, result):
        assert result.point(0.0, 150).label == "uniform"
        assert result.point(2.0, 150).label == "zipf2"
