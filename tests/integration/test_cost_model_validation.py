"""Validating the C(q) estimator against measured result rates.

The grouping decisions hinge on the cost model, so its estimates should
track reality on workloads matching its assumptions (uniform values,
independent attributes).  These tests feed uniform synthetic streams
through the SPE and compare measured result-tuple rates against
:meth:`CostModel.result_tuple_rate`.
"""

import random

import pytest

from repro.cbn.datagram import Datagram
from repro.core.cost import CostModel
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.spe.engine import StreamProcessingEngine

RATE = 5.0  # tuples per second
DURATION = 400.0

CATALOG = Catalog(
    [
        StreamSchema(
            "U",
            [Attribute("k", "int", 0, 9), Attribute("v", "float", 0.0, 100.0)],
            rate=RATE,
        ),
        StreamSchema(
            "W",
            [Attribute("k", "int", 0, 9), Attribute("z", "float", 0.0, 100.0)],
            rate=RATE,
        ),
    ]
)


def uniform_feed(rng, streams=("U",)):
    events = []
    for stream in streams:
        t = 0.0
        payload_attr = "v" if stream == "U" else "z"
        while t < DURATION:
            t += rng.expovariate(RATE)
            events.append(
                Datagram(
                    stream,
                    {"k": rng.randrange(10), payload_attr: rng.uniform(0, 100)},
                    t,
                )
            )
    events.sort(key=lambda d: d.timestamp)
    return events


def measured_tuple_rate(query, feed):
    spe = StreamProcessingEngine(CATALOG)
    spe.register(query, "q")
    count = sum(len(spe.push(d)) for d in feed)
    return count / DURATION


class TestSingleStreamEstimates:
    @pytest.mark.parametrize(
        "where,expected_rel_err",
        [
            ("", 0.15),
            ("WHERE U.v >= 50", 0.2),
            ("WHERE U.v >= 25 AND U.v <= 75", 0.2),
            ("WHERE U.k = 3", 0.4),
        ],
    )
    def test_estimate_tracks_measurement(self, where, expected_rel_err):
        query = parse_query(f"SELECT U.v FROM U [Range 60] U {where}".strip())
        model = CostModel()
        estimate = model.result_tuple_rate(query, CATALOG)
        measured = measured_tuple_rate(query, uniform_feed(random.Random(3)))
        assert measured == pytest.approx(estimate, rel=expected_rel_err)


class TestJoinEstimate:
    def test_window_join_within_factor_two(self):
        query = parse_query(
            "SELECT U.v, W.z FROM U [Range 20] U, W [Range 20] W "
            "WHERE U.k = W.k"
        )
        model = CostModel()
        estimate = model.result_tuple_rate(query, CATALOG)
        measured = measured_tuple_rate(
            query, uniform_feed(random.Random(5), streams=("U", "W"))
        )
        assert estimate / 2 <= measured <= estimate * 2

    def test_rate_ordering_preserved(self):
        """Even if absolute estimates drift, the *ordering* the greedy
        relies on must match measurements."""
        texts = [
            "SELECT U.v FROM U [Range 60] U",
            "SELECT U.v FROM U [Range 60] U WHERE U.v >= 50",
            "SELECT U.v FROM U [Range 60] U WHERE U.v >= 90",
        ]
        model = CostModel()
        feed = uniform_feed(random.Random(7))
        estimates = []
        measures = []
        for text in texts:
            query = parse_query(text)
            estimates.append(model.result_tuple_rate(query, CATALOG))
            measures.append(measured_tuple_rate(query, feed))
        assert estimates == sorted(estimates, reverse=True)
        assert measures == sorted(measures, reverse=True)
