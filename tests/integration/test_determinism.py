"""Everything is seeded: identical configurations reproduce exactly.

Reproducibility is a first-class requirement for an experiments
package — every random choice flows through explicit seeds, so two
runs of any experiment must agree bit-for-bit.
"""

import random

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.table1 import run_table1


class TestExperimentDeterminism:
    def test_fig4_reproducible(self):
        config = Fig4Config(
            query_counts=(80,), skews=(0.0, 1.5), repetitions=2,
            topology_nodes=120, seed=33,
        )
        a = run_fig4(config)
        b = run_fig4(config)
        for pa, pb in zip(a.points, b.points):
            assert pa == pb

    def test_fig4_seed_changes_results(self):
        base = Fig4Config(
            query_counts=(80,), skews=(1.5,), repetitions=1,
            topology_nodes=120, seed=33,
        )
        other = Fig4Config(
            query_counts=(80,), skews=(1.5,), repetitions=1,
            topology_nodes=120, seed=34,
        )
        a = run_fig4(base).points[0]
        b = run_fig4(other).points[0]
        assert (a.benefit_ratio, a.grouping_ratio) != (
            b.benefit_ratio,
            b.grouping_ratio,
        )

    def test_fig3_reproducible(self):
        a = run_fig3(n_items=80, seed=4)
        b = run_fig3(n_items=80, seed=4)
        assert a == b

    def test_table1_reproducible(self):
        a = run_table1(n_items=80, seed=4)
        b = run_table1(n_items=80, seed=4)
        assert a == b


class TestSystemDeterminism:
    def test_full_system_replay_reproducible(self):
        from repro.overlay.topology import barabasi_albert
        from repro.overlay.tree import DisseminationTree
        from repro.system.cosmos import CosmosSystem
        from repro.workload.queries import QueryWorkload, WorkloadConfig
        from repro.workload.sensorscope import (
            SensorScopeReplayer,
            sensorscope_catalog,
        )

        def run():
            rng = random.Random(5)
            catalog = sensorscope_catalog(4, rng=random.Random(5))
            topo = barabasi_albert(25, 2, rng)
            tree = DisseminationTree.minimum_spanning(topo)
            system = CosmosSystem(tree, processor_nodes=[0, 1])
            for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
                system.add_source(schema, 5 + index)
            workload = QueryWorkload(
                catalog, WorkloadConfig(skew=1.0, join_fraction=0.0, seed=6)
            )
            for query in workload.generate(15):
                system.submit(query, user_node=rng.randrange(25))
            feed = SensorScopeReplayer(catalog, random.Random(7)).feed(15.0)
            delivered = system.replay(feed)
            return delivered, system.data_cost(), system.grouping_summary()

        assert run() == run()
