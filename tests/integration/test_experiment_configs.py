"""Experiment configuration helpers and doctest hygiene."""

import doctest

import pytest

from repro.experiments.fig4 import Fig4Config


class TestFig4Config:
    def test_defaults_are_scaled(self):
        config = Fig4Config()
        assert max(config.query_counts) <= 4000
        assert config.repetitions <= 5

    def test_paper_scale(self):
        config = Fig4Config.paper_scale()
        assert config.query_counts == (2000, 4000, 6000, 8000, 10000)
        assert config.repetitions == 20
        assert config.topology_nodes == 1000
        assert config.n_streams == 63

    def test_smoke_is_tiny(self):
        config = Fig4Config.smoke()
        assert max(config.query_counts) <= 500
        assert config.repetitions <= 2


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.cql.parser",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
