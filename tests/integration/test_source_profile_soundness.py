"""Source profiles never lose data the query needs.

The processor only receives what its source profile admits (filters +
projections applied inside the CBN).  For any query, running the SPE on
the *profile-filtered* feed must produce exactly the same results as
running it on the raw feed — the profile is a sound pre-filter.
"""

import random

import pytest

from repro.cbn.datagram import Datagram
from repro.core.profiles import source_profile
from repro.cql.parser import parse_query
from repro.spe.engine import StreamProcessingEngine
from repro.workload.auction import AuctionWorkload, auction_catalog
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import SensorScopeReplayer, sensorscope_catalog


def run_results(catalog, query, feed):
    spe = StreamProcessingEngine(catalog)
    spe.register(query.canonical(catalog), "q")
    out = []
    for datagram in feed:
        out.extend(r.datagram for r in spe.push(datagram))
    return sorted((d.timestamp, tuple(sorted(d.payload.items()))) for d in out)


def filtered_feed(profile, feed):
    out = []
    for datagram in feed:
        projected = profile.apply(datagram)
        if projected is not None:
            out.append(projected)
    return out


class TestAuctionQueries:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
            "WHERE O.itemID = C.itemID",
            "SELECT O.itemID FROM OpenAuction [Range 5 Hour] O, "
            "ClosedAuction [Now] C WHERE O.itemID = C.itemID "
            "AND O.start_price >= 500",
            "SELECT O.itemID, O.start_price FROM OpenAuction O "
            "WHERE O.start_price <= 100",
        ],
    )
    def test_profile_filtered_feed_gives_identical_results(self, text):
        catalog = auction_catalog()
        query = parse_query(text, name="q")
        profile = source_profile(query, catalog)
        feed = AuctionWorkload(random.Random(13)).feed(200)
        raw = run_results(catalog, query, feed)
        filtered = run_results(catalog, query, filtered_feed(profile, feed))
        assert raw == filtered
        assert raw  # non-degenerate workload

    def test_profile_actually_filters_something(self):
        catalog = auction_catalog()
        query = parse_query(
            "SELECT O.itemID FROM OpenAuction O WHERE O.start_price >= 900",
            name="q",
        )
        profile = source_profile(query, catalog)
        feed = AuctionWorkload(random.Random(13)).feed(200)
        kept = filtered_feed(profile, feed)
        assert len(kept) < len(feed)


class TestRandomSensorQueries:
    def test_random_queries_survive_profile_prefiltering(self):
        catalog = sensorscope_catalog(5, rng=random.Random(2))
        workload = QueryWorkload(
            catalog, WorkloadConfig(skew=1.0, join_fraction=0.3, seed=6)
        )
        feed = SensorScopeReplayer(catalog, random.Random(7)).feed(25.0)
        checked = 0
        nonempty = 0
        for query in workload.generate(25):
            profile = source_profile(query, catalog)
            raw = run_results(catalog, query, feed)
            filtered = run_results(catalog, query, filtered_feed(profile, feed))
            assert raw == filtered, f"profile lost data for {query.name}"
            checked += 1
            if raw:
                nonempty += 1
        assert checked == 25
        assert nonempty > 0
