"""Figure 3 measured end to end: sharing saves on the common link."""

import pytest

from repro.experiments.fig3 import run_fig3


@pytest.fixture(scope="module")
def result():
    return run_fig3(n_items=150, seed=11)


class TestCorrectness:
    def test_both_modes_deliver_identical_results(self, result):
        assert result.results_identical

    def test_results_nonempty(self, result):
        assert result.q1_results > 0
        assert result.q2_results > result.q1_results


class TestSaving:
    def test_shared_link_carries_less_with_merging(self, result):
        assert result.shared_link_bytes_share < result.shared_link_bytes_nonshare

    def test_total_bytes_not_worse(self, result):
        assert result.total_bytes_share <= result.total_bytes_nonshare

    def test_saving_fraction_positive(self, result):
        assert 0 < result.shared_link_saving < 1
