"""The experiment runner's reporting helpers."""

import pytest

from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Config, Fig4Point, Fig4Result
from repro.experiments.runner import (
    fig3_report,
    fig4_report,
    render_table,
    table1_report,
)
from repro.experiments.table1 import Table1Result


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line}) == 1  # all equal width

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456]])
        assert "0.123" in text and "0.1234" not in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFig4Report:
    def test_contains_both_subfigures(self):
        config = Fig4Config(query_counts=(10,), skews=(0.0, 2.0), repetitions=1)
        points = [
            Fig4Point(0.0, 10, 0.1, 0.9),
            Fig4Point(2.0, 10, 0.5, 0.3),
        ]
        text = fig4_report(Fig4Result(config, points))
        assert "Figure 4(a)" in text and "Figure 4(b)" in text
        assert "uniform" in text and "zipf2" in text

    def test_point_lookup(self):
        config = Fig4Config(query_counts=(10,), skews=(0.0,), repetitions=1)
        result = Fig4Result(config, [Fig4Point(0.0, 10, 0.1, 0.9)])
        assert result.point(0.0, 10).benefit_ratio == 0.1
        with pytest.raises(KeyError):
            result.point(1.0, 10)

    def test_series_sorted(self):
        config = Fig4Config(query_counts=(10, 20), skews=(0.0,), repetitions=1)
        result = Fig4Result(
            config,
            [Fig4Point(0.0, 20, 0.2, 0.8), Fig4Point(0.0, 10, 0.1, 0.9)],
        )
        assert [p.n_queries for p in result.series(0.0)] == [10, 20]


class TestFig3Report:
    def test_summary_line(self):
        result = Fig3Result(
            n_items=10,
            q1_results=5,
            q2_results=8,
            results_identical=True,
            shared_link_bytes_nonshare=100.0,
            shared_link_bytes_share=80.0,
            total_bytes_nonshare=200.0,
            total_bytes_share=180.0,
        )
        text = fig3_report(result)
        assert "20.0%" in text
        assert "True" in text

    def test_zero_division_guard(self):
        result = Fig3Result(0, 0, 0, True, 0.0, 0.0, 0.0, 0.0)
        assert result.shared_link_saving == 0.0
        assert result.total_saving == 0.0


class TestTable1Report:
    def test_mentions_profiles(self):
        result = Table1Result(
            representative_cql="SELECT ...",
            matches_paper_q3=True,
            contains_q1=True,
            contains_q2=True,
            p1_projection=("OpenAuction.itemID",),
            p1_filter="f1",
            p2_projection=("ClosedAuction.buyerID",),
            p2_filter="TRUE",
            q1_direct=3,
            q1_via_split=3,
            q2_direct=4,
            q2_via_split=4,
            split_reproduces_direct=True,
        )
        text = table1_report(result)
        assert "p1:" in text and "p2:" in text
        assert "direct=3" in text
