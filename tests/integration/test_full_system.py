"""A larger scenario: sensors, many queries, several processors."""

import random

import pytest

from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import SensorScopeReplayer, sensorscope_catalog


@pytest.fixture(scope="module")
def scenario():
    rng = random.Random(17)
    catalog = sensorscope_catalog(6, rng=random.Random(17))
    topo = barabasi_albert(40, 2, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    system = CosmosSystem(tree, processor_nodes=[0, 1, 2], topology=topo)
    for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
        system.add_source(schema, 10 + index)
    workload = QueryWorkload(catalog, WorkloadConfig(skew=1.0, join_fraction=0.0, seed=5))
    handles = [
        system.submit(query, user_node=rng.randrange(40))
        for query in workload.generate(25)
    ]
    feed = SensorScopeReplayer(catalog, random.Random(23)).feed(20.0)
    system.replay(feed)
    return system, handles, feed, catalog


class TestScenario:
    def test_queries_distributed_across_processors(self, scenario):
        system, handles, __, __ = scenario
        assert {h.processor_node for h in handles} <= {0, 1, 2}

    def test_merging_happened(self, scenario):
        system, __, __, __ = scenario
        summary = system.grouping_summary()
        assert summary["groups"] < summary["queries"]

    def test_deliveries_respect_member_filters(self, scenario):
        # Delivered payloads are projected to the member's SELECT list,
        # so only the predicate parts over *delivered* attributes can be
        # re-checked here (full equivalence with an unmerged reference
        # system is asserted separately below).
        system, handles, __, catalog = scenario
        checked = 0
        for handle in handles:
            canonical = handle.query.canonical(catalog)
            for result in handle.results:
                visible = canonical.predicate.restrict_to(result.payload.keys())
                assert visible.evaluate(result.payload)
                checked += 1
        assert checked > 0

    def test_deliveries_have_member_projection(self, scenario):
        system, handles, __, catalog = scenario
        for handle in handles:
            canonical = handle.query.canonical(catalog)
            expected = set(canonical.output_attribute_names(catalog))
            for result in handle.results:
                assert set(result.payload) <= expected

    def test_results_match_unmerged_reference_system(self, scenario):
        system, handles, feed, catalog = scenario
        rng = random.Random(17)
        topo = barabasi_albert(40, 2, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        reference = CosmosSystem(tree, processor_nodes=[0, 1, 2], merging=False)
        for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
            reference.add_source(schema, 10 + index)
        ref_handles = {
            h.query_id: reference.submit(h.query, user_node=h.user_node)
            for h in handles
        }
        reference.replay(feed)
        for handle in handles:
            ref = ref_handles[handle.query_id]
            mine = sorted(
                (r.timestamp, tuple(sorted(r.payload.items()))) for r in handle.results
            )
            theirs = sorted(
                (r.timestamp, tuple(sorted(r.payload.items()))) for r in ref.results
            )
            assert mine == theirs, f"divergence for {handle.query_id}"

    def test_merged_system_byte_overhead_bounded(self, scenario):
        # With only ~2 members per group and users scattered randomly,
        # measured sharing wins are small and residual-attribute
        # overhead can even flip the sign slightly; the invariant at
        # this scale is "no blow-up" (the Figure 3/4 tests exercise the
        # regimes where sharing wins outright).
        system, handles, feed, catalog = scenario
        rng = random.Random(17)
        topo = barabasi_albert(40, 2, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        reference = CosmosSystem(tree, processor_nodes=[0, 1, 2], merging=False)
        for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
            reference.add_source(schema, 10 + index)
        for h in handles:
            reference.submit(h.query, user_node=h.user_node)
        reference.replay(feed)
        merged = system.network.data_stats.total_bytes()
        unmerged = reference.network.data_stats.total_bytes()
        assert merged <= 1.10 * unmerged

    def test_clustered_users_make_sharing_win_measurably(self, scenario):
        __, __, feed, catalog = scenario

        def build(merging):
            rng = random.Random(17)
            topo = barabasi_albert(40, 2, rng)
            tree = DisseminationTree.minimum_spanning(topo)
            system = CosmosSystem(
                tree, processor_nodes=[0, 1, 2], topology=topo, merging=merging
            )
            for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
                system.add_source(schema, 10 + index)
            workload = QueryWorkload(
                catalog, WorkloadConfig(skew=2.0, join_fraction=0.0, seed=5)
            )
            pool = (33, 34, 35, 36, 37, 38, 39)
            for query in workload.generate(80):
                system.submit(query, user_node=rng.choice(pool))
            system.replay(feed)
            return system.network.data_stats.total_bytes()

        assert build(True) <= build(False)
