"""Table 1 verified end to end — the paper's central claim.

Running the representative q3 once and splitting its result stream with
the re-tightening profiles must reproduce exactly what running q1 and
q2 individually produces.
"""

import pytest

from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def result():
    return run_table1(n_items=300, seed=3)


class TestRepresentative:
    def test_matches_paper_q3(self, result):
        assert result.matches_paper_q3

    def test_contains_both_members(self, result):
        assert result.contains_q1
        assert result.contains_q2


class TestProfiles:
    def test_p1_shape(self, result):
        # p1 = <{s3}, {O.*}, {-3h <= O.ts - C.ts <= 0}> from section 4.
        assert result.p1_projection == (
            "OpenAuction.itemID",
            "OpenAuction.sellerID",
            "OpenAuction.start_price",
            "OpenAuction.timestamp",
        )
        assert "10800" in result.p1_filter

    def test_p2_shape(self, result):
        assert result.p2_projection == (
            "ClosedAuction.buyerID",
            "ClosedAuction.timestamp",
            "OpenAuction.itemID",
            "OpenAuction.timestamp",
        )
        assert result.p2_filter == "TRUE"


class TestSplitCorrectness:
    def test_split_reproduces_direct_execution(self, result):
        assert result.split_reproduces_direct

    def test_counts_match(self, result):
        assert result.q1_direct == result.q1_via_split
        assert result.q2_direct == result.q2_via_split

    def test_q2_superset_of_q1(self, result):
        # 5h window catches at least everything the 3h window catches.
        assert result.q2_direct >= result.q1_direct

    def test_nontrivial_workload(self, result):
        assert result.q1_direct > 0
        assert result.q2_direct > result.q1_direct  # some auctions in (3h, 5h]
