"""The incremental greedy grouping optimizer."""

import pytest

from repro.core.containment import contains
from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.cql.parser import parse_query


def q(text, name):
    return parse_query(text, name=name)


@pytest.fixture
def optimizer(sensor_catalog):
    return GroupingOptimizer(sensor_catalog, CostModel())


class TestBasicGrouping:
    def test_first_query_founds_group(self, optimizer):
        decision = optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        assert decision.created_group
        assert optimizer.group_count == 1

    def test_identical_queries_share_group(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "a"))
        decision = optimizer.add(
            q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "b")
        )
        assert not decision.created_group
        assert decision.benefit_delta > 0
        assert optimizer.group_count == 1

    def test_incompatible_queries_separate_groups(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        optimizer.add(q("SELECT W.speed FROM Wind W", "b"))
        assert optimizer.group_count == 2

    def test_unprofitable_merge_rejected(self, optimizer):
        optimizer.add(
            q(
                "SELECT T.temperature FROM Temp T "
                "WHERE T.temperature >= -20 AND T.temperature <= -15",
                "cold",
            )
        )
        optimizer.add(
            q(
                "SELECT T.temperature FROM Temp T "
                "WHERE T.temperature >= 35 AND T.temperature <= 40",
                "hot",
            )
        )
        assert optimizer.group_count == 2

    def test_duplicate_name_rejected(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        with pytest.raises(ValueError):
            optimizer.add(q("SELECT T.humidity FROM Temp T", "a"))

    def test_unnamed_query_rejected(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.add(parse_query("SELECT T.temperature FROM Temp T"))

    def test_group_of(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        group = optimizer.group_of("a")
        assert group is not None
        assert group.member_names() == ["a"]
        assert optimizer.group_of("zzz") is None


class TestInvariants:
    def test_members_always_contained_in_representative(self, optimizer, sensor_catalog):
        queries = [
            q("SELECT T.temperature FROM Temp [Range 1 Hour] T WHERE T.temperature > 30", "a"),
            q("SELECT T.temperature FROM Temp [Range 2 Hour] T WHERE T.temperature > 20", "b"),
            q("SELECT T.humidity, T.temperature FROM Temp [Range 1 Hour] T", "c"),
            q("SELECT W.speed FROM Wind W WHERE W.speed > 10", "d"),
            q("SELECT W.speed FROM Wind W WHERE W.speed > 30", "e"),
        ]
        for query in queries:
            optimizer.add(query)
        for group in optimizer.groups:
            for member in group.members:
                assert contains(member, group.representative, sensor_catalog)

    def test_query_count_and_ratio(self, optimizer):
        assert optimizer.grouping_ratio() == 1.0
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        optimizer.add(q("SELECT T.temperature FROM Temp T", "b"))
        optimizer.add(q("SELECT W.speed FROM Wind W", "c"))
        assert optimizer.query_count == 3
        assert optimizer.group_count == 2
        assert optimizer.grouping_ratio() == pytest.approx(2 / 3)

    def test_benefit_accounting(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "a"))
        optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "b"))
        assert optimizer.total_benefit() == pytest.approx(
            optimizer.total_unmerged_rate() - optimizer.total_merged_rate()
        )
        assert 0 < optimizer.benefit_ratio() < 1

    def test_representative_rate_cached_consistently(self, optimizer, sensor_catalog):
        model = optimizer.cost_model
        optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 30", "a"))
        optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 10", "b"))
        for group in optimizer.groups:
            assert group.representative_rate == pytest.approx(
                model.result_rate(group.representative, sensor_catalog)
            )


class TestThreshold:
    def test_infinite_threshold_disables_merging(self, sensor_catalog):
        optimizer = GroupingOptimizer(
            sensor_catalog, CostModel(), merge_threshold=float("inf")
        )
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        optimizer.add(q("SELECT T.temperature FROM Temp T", "b"))
        assert optimizer.group_count == 2
        assert optimizer.benefit_ratio() == 0.0


class TestRemoval:
    def test_remove_query_recomposes(self, optimizer, sensor_catalog):
        optimizer.add(q("SELECT T.temperature FROM Temp [Range 1 Hour] T", "a"))
        optimizer.add(q("SELECT T.temperature FROM Temp [Range 9 Hour] T", "b"))
        assert optimizer.group_count == 1
        optimizer.remove("b")
        group = optimizer.group_of("a")
        assert group.representative.window_of("Temp").size == 3600

    def test_remove_last_member_deletes_group(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        optimizer.remove("a")
        assert optimizer.group_count == 0
        assert optimizer.query_count == 0

    def test_remove_unknown_raises(self, optimizer):
        with pytest.raises(KeyError):
            optimizer.remove("nope")

    def test_readd_after_remove(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        optimizer.remove("a")
        optimizer.add(q("SELECT T.temperature FROM Temp T", "a"))
        assert optimizer.query_count == 1


class TestReoptimize:
    def test_preserves_queries(self, optimizer):
        optimizer.add(q("SELECT T.temperature FROM Temp T WHERE T.temperature > 30", "a"))
        optimizer.add(q("SELECT T.humidity FROM Temp T", "b"))
        optimizer.add(q("SELECT W.speed FROM Wind W", "c"))
        optimizer.reoptimize()
        assert optimizer.query_count == 3
        for name in ("a", "b", "c"):
            assert optimizer.group_of(name) is not None

    def test_never_increases_groups_on_trivial_sets(self, optimizer):
        for index in range(6):
            optimizer.add(
                q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", f"q{index}")
            )
        before = optimizer.group_count
        delta = optimizer.reoptimize()
        assert optimizer.group_count <= before
        assert delta == before - optimizer.group_count

    def test_members_still_contained(self, optimizer, sensor_catalog):
        from repro.core.containment import contains

        optimizer.add(q("SELECT T.temperature FROM Temp [Range 1 Hour] T WHERE T.temperature > 30", "a"))
        optimizer.add(q("SELECT T.temperature FROM Temp [Range 2 Hour] T WHERE T.temperature > 10", "b"))
        optimizer.add(q("SELECT T.humidity FROM Temp [Range 1 Hour] T", "c"))
        optimizer.reoptimize()
        for group in optimizer.groups:
            for member in group.members:
                assert contains(member, group.representative, sensor_catalog)

    def test_can_improve_order_sensitive_grouping(self, sensor_catalog):
        """A workload where insertion order leaves benefit on the table."""
        import random

        from repro.workload.queries import QueryWorkload, WorkloadConfig
        from repro.workload.sensorscope import sensorscope_catalog

        catalog = sensorscope_catalog(8, rng=random.Random(1))
        workload = QueryWorkload(
            catalog, WorkloadConfig(skew=1.0, join_fraction=0.0, seed=5)
        )
        from repro.core.cost import CostModel
        from repro.core.grouping import GroupingOptimizer

        optimizer = GroupingOptimizer(catalog, CostModel())
        for query in workload.generate(200):
            optimizer.add(query)
        before = optimizer.benefit_ratio()
        optimizer.reoptimize()
        assert optimizer.benefit_ratio() >= before - 1e-9
