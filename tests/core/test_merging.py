"""Representative-query composition."""

import pytest

from repro.core.containment import contains
from repro.core.merging import (
    MergeError,
    mergeable,
    merge_queries,
    representative,
    residual_atoms,
    window_residuals,
)
from repro.cql.parser import parse_query
from repro.cql.predicates import Interval


def q(text, name=None):
    return parse_query(text, name=name)


class TestMergeable:
    def test_same_stream_spj(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp T")
        b = q("SELECT T.humidity FROM Temp T")
        assert mergeable(a, b, sensor_catalog)

    def test_different_streams(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp T")
        b = q("SELECT W.speed FROM Wind W")
        assert not mergeable(a, b, sensor_catalog)

    def test_spj_vs_aggregate(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp T")
        b = q("SELECT AVG(T.temperature) FROM Temp T GROUP BY T.station")
        assert not mergeable(a, b, sensor_catalog)

    def test_aggregates_need_same_signature(self, sensor_catalog):
        a = q("SELECT AVG(T.temperature) FROM Temp T GROUP BY T.station")
        b = q("SELECT MAX(T.temperature) FROM Temp T GROUP BY T.station")
        assert not mergeable(a, b, sensor_catalog)

    def test_aggregates_need_same_windows(self, sensor_catalog):
        a = q("SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T GROUP BY T.station")
        b = q("SELECT AVG(T.temperature) FROM Temp [Range 2 Hour] T GROUP BY T.station")
        assert not mergeable(a, b, sensor_catalog)

    def test_self_join_not_mergeable(self, sensor_catalog):
        a = q("SELECT x.temperature FROM Temp x, Temp y WHERE x.station = y.station")
        assert not mergeable(a, a, sensor_catalog)


class TestSPJMerging:
    def test_windows_take_maximum(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp [Range 1 Hour] T", "a")
        b = q("SELECT T.temperature FROM Temp [Range 3 Hour] T", "b")
        rep = merge_queries(a, b, sensor_catalog)
        assert rep.window_of("Temp").size == 3 * 3600

    def test_predicate_hull(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp T WHERE T.temperature >= 0 AND T.temperature <= 10", "a")
        b = q("SELECT T.temperature FROM Temp T WHERE T.temperature >= 5 AND T.temperature <= 20", "b")
        rep = merge_queries(a, b, sensor_catalog)
        assert rep.predicate.intervals["Temp.temperature"] == Interval(0, 20)

    def test_projection_unions_outputs(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp T", "a")
        b = q("SELECT T.humidity FROM Temp T", "b")
        rep = merge_queries(a, b, sensor_catalog)
        outputs = set(rep.output_attribute_names(sensor_catalog))
        assert {"Temp.temperature", "Temp.humidity"} <= outputs

    def test_residual_attributes_added_to_projection(self, sensor_catalog):
        # b's filter on humidity is loosened away; humidity must be
        # carried for the re-tightening even though nobody selects it.
        a = q("SELECT T.temperature FROM Temp T", "a")
        b = q("SELECT T.temperature FROM Temp T WHERE T.humidity > 50", "b")
        rep = merge_queries(a, b, sensor_catalog)
        assert "Temp.humidity" in rep.output_attribute_names(sensor_catalog)

    def test_members_contained_in_rep(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp [Range 1 Hour] T WHERE T.temperature > 20", "a")
        b = q("SELECT T.humidity FROM Temp [Range 2 Hour] T WHERE T.humidity < 30", "b")
        rep = merge_queries(a, b, sensor_catalog)
        assert contains(a, rep, sensor_catalog)
        assert contains(b, rep, sensor_catalog)

    def test_join_windows_need_timestamps(self, auction_catalog, q1, q2):
        rep = merge_queries(q1, q2, auction_catalog)
        outputs = set(rep.output_attribute_names(auction_catalog))
        assert "OpenAuction.timestamp" in outputs
        assert "ClosedAuction.timestamp" in outputs

    def test_incompatible_queries_raise(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp T", "a")
        b = q("SELECT W.speed FROM Wind W", "b")
        with pytest.raises(MergeError):
            merge_queries(a, b, sensor_catalog)

    def test_empty_group_raises(self, sensor_catalog):
        with pytest.raises(MergeError):
            representative([], sensor_catalog)

    def test_singleton_group_is_canonical_member(self, sensor_catalog):
        a = q("SELECT x.temperature FROM Temp x", "a")
        rep = representative([a], sensor_catalog)
        assert rep.reference_names == ("Temp",)

    def test_three_way_merge(self, sensor_catalog):
        queries = [
            q("SELECT T.temperature FROM Temp [Range 1 Hour] T WHERE T.temperature > 30", "a"),
            q("SELECT T.temperature FROM Temp [Range 2 Hour] T WHERE T.temperature > 20", "b"),
            q("SELECT T.humidity FROM Temp [Range 3 Hour] T WHERE T.temperature > 10", "c"),
        ]
        rep = representative(queries, sensor_catalog)
        for member in queries:
            assert contains(member, rep, sensor_catalog)

    def test_incremental_composition_contains_members(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp [Range 1 Hour] T WHERE T.temperature > 30", "a")
        b = q("SELECT T.humidity FROM Temp [Range 2 Hour] T WHERE T.humidity < 40", "b")
        c = q("SELECT T.station FROM Temp [Range 3 Hour] T WHERE T.station <= 5", "c")
        incremental = representative(
            [representative([a, b], sensor_catalog), c], sensor_catalog
        )
        for member in (a, b, c):
            assert contains(member, incremental, sensor_catalog)


class TestAggregateMerging:
    def test_group_attribute_filters_hull(self, sensor_catalog):
        a = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.station <= 3 GROUP BY T.station",
            "a",
        )
        b = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.station <= 6 GROUP BY T.station",
            "b",
        )
        rep = merge_queries(a, b, sensor_catalog)
        assert rep.predicate.intervals["Temp.station"].hi == 6
        assert contains(a, rep, sensor_catalog)
        assert contains(b, rep, sensor_catalog)

    def test_non_group_filters_block_merge(self, sensor_catalog):
        a = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.temperature > 0 GROUP BY T.station",
            "a",
        )
        b = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "GROUP BY T.station",
            "b",
        )
        with pytest.raises(MergeError):
            merge_queries(a, b, sensor_catalog)

    def test_identical_non_group_filters_merge(self, sensor_catalog):
        a = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.temperature > 0 AND T.station <= 3 GROUP BY T.station",
            "a",
        )
        b = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.temperature > 0 AND T.station <= 7 GROUP BY T.station",
            "b",
        )
        rep = merge_queries(a, b, sensor_catalog)
        assert contains(a, rep, sensor_catalog)
        assert contains(b, rep, sensor_catalog)


class TestResiduals:
    def test_residual_atoms_of_tighter_member(self, sensor_catalog):
        member = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "m").canonical(sensor_catalog)
        rep = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 0", "r").canonical(sensor_catalog)
        atoms = residual_atoms(member, rep.predicate)
        assert len(atoms) == 1
        assert "20" in str(atoms[0])

    def test_no_residual_when_identical(self, sensor_catalog):
        member = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", "m").canonical(sensor_catalog)
        assert residual_atoms(member, member.predicate) == []

    def test_window_residuals_for_widened_join(self, auction_catalog, q1, q2):
        rep = merge_queries(q1, q2, auction_catalog)
        constraints = window_residuals(q1.canonical(auction_catalog), rep)
        assert len(constraints) == 1
        (constraint,) = constraints
        assert constraint.left == "ClosedAuction.timestamp"
        assert constraint.right == "OpenAuction.timestamp"
        assert constraint.interval.hi == 3 * 3600

    def test_no_window_residuals_for_single_stream(self, sensor_catalog):
        a = q("SELECT T.temperature FROM Temp [Range 1 Hour] T", "a").canonical(sensor_catalog)
        rep = q("SELECT T.temperature FROM Temp [Range 9 Hour] T", "r").canonical(sensor_catalog)
        assert window_residuals(a, rep) == []

    def test_no_window_residuals_when_windows_equal(self, auction_catalog, q2, q3):
        assert window_residuals(q2.canonical(auction_catalog), q3.canonical(auction_catalog)) == []
