"""Continuous query containment: Lemma 1, Theorem 1, Theorem 2."""

import pytest

from repro.core.containment import contains, equivalent, unbounded_contains
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, Catalog, StreamSchema


@pytest.fixture
def catalog(sensor_catalog):
    return sensor_catalog


def q(text):
    return parse_query(text)


class TestUnboundedContainment:
    def test_tighter_selection_contained(self, catalog):
        narrow = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 30")
        broad = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 10")
        assert unbounded_contains(narrow, broad, catalog)
        assert not unbounded_contains(broad, narrow, catalog)

    def test_projection_must_be_subset(self, catalog):
        small = q("SELECT T.temperature FROM Temp T")
        big = q("SELECT T.temperature, T.humidity FROM Temp T")
        assert unbounded_contains(small, big, catalog)
        assert not unbounded_contains(big, small, catalog)

    def test_different_streams_not_contained(self, catalog):
        a = q("SELECT T.temperature FROM Temp T")
        b = q("SELECT W.speed FROM Wind W")
        assert not unbounded_contains(a, b, catalog)

    def test_join_vs_single_stream(self, catalog):
        single = q("SELECT T.temperature FROM Temp T")
        join = q(
            "SELECT T.temperature FROM Temp T, Wind W WHERE T.station = W.station"
        )
        assert not unbounded_contains(single, join, catalog)
        assert not unbounded_contains(join, single, catalog)

    def test_alias_irrelevant(self, catalog):
        a = q("SELECT x.temperature FROM Temp x WHERE x.temperature > 5")
        b = q("SELECT y.temperature FROM Temp y WHERE y.temperature > 0")
        assert unbounded_contains(a, b, catalog)

    def test_join_predicates_must_be_implied(self, catalog):
        with_join = q(
            "SELECT T.temperature FROM Temp T, Wind W WHERE T.station = W.station"
        )
        cross = q("SELECT T.temperature FROM Temp T, Wind W")
        assert unbounded_contains(with_join, cross, catalog)
        assert not unbounded_contains(cross, with_join, catalog)

    def test_self_join_never_compared(self, catalog):
        a = q(
            "SELECT x.temperature FROM Temp x, Temp y WHERE x.station = y.station"
        )
        b = q("SELECT T.temperature FROM Temp T")
        assert not unbounded_contains(a, b, catalog)


class TestTheorem1Windows:
    def test_smaller_window_contained(self, catalog):
        small = q("SELECT T.temperature FROM Temp [Range 1 Hour] T")
        big = q("SELECT T.temperature FROM Temp [Range 5 Hour] T")
        assert contains(small, big, catalog)
        assert not contains(big, small, catalog)

    def test_equal_windows_contained(self, catalog):
        a = q("SELECT T.temperature FROM Temp [Range 1 Hour] T")
        assert contains(a, a, catalog)

    def test_per_stream_window_comparison(self, catalog):
        q1 = q(
            "SELECT T.temperature FROM Temp [Range 3 Hour] T, Wind [Now] W "
            "WHERE T.station = W.station"
        )
        q2 = q(
            "SELECT T.temperature FROM Temp [Range 5 Hour] T, Wind [Now] W "
            "WHERE T.station = W.station"
        )
        assert contains(q1, q2, catalog)
        assert not contains(q2, q1, catalog)

    def test_mixed_window_directions_not_contained(self, catalog):
        q1 = q(
            "SELECT T.temperature FROM Temp [Range 3 Hour] T, Wind [Range 2 Hour] W "
            "WHERE T.station = W.station"
        )
        q2 = q(
            "SELECT T.temperature FROM Temp [Range 5 Hour] T, Wind [Range 1 Hour] W "
            "WHERE T.station = W.station"
        )
        assert not contains(q1, q2, catalog)
        assert not contains(q2, q1, catalog)

    def test_both_conditions_required(self, catalog):
        # Window OK but selection looser: not contained.
        q1 = q("SELECT T.temperature FROM Temp [Range 1 Hour] T")
        q2 = q(
            "SELECT T.temperature FROM Temp [Range 5 Hour] T "
            "WHERE T.temperature > 0"
        )
        assert not contains(q1, q2, catalog)


class TestTheorem2Aggregates:
    def test_equal_windows_required(self, catalog):
        a = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "GROUP BY T.station"
        )
        b = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 2 Hour] T "
            "GROUP BY T.station"
        )
        assert not contains(a, b, catalog)
        assert contains(a, a, catalog)

    def test_group_attribute_selection_may_tighten(self, catalog):
        narrow = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.station <= 3 GROUP BY T.station"
        )
        broad = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "GROUP BY T.station"
        )
        assert contains(narrow, broad, catalog)

    def test_non_group_selection_blocks_containment(self, catalog):
        # Filtering on the aggregated attribute changes group values.
        filtered = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "WHERE T.temperature > 0 GROUP BY T.station"
        )
        unfiltered = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T "
            "GROUP BY T.station"
        )
        assert not contains(filtered, unfiltered, catalog)

    def test_different_aggregate_functions(self, catalog):
        a = q("SELECT AVG(T.temperature) FROM Temp T GROUP BY T.station")
        b = q("SELECT MAX(T.temperature) FROM Temp T GROUP BY T.station")
        assert not contains(a, b, catalog)

    def test_different_grouping(self, catalog):
        a = q("SELECT AVG(T.temperature) FROM Temp T GROUP BY T.station")
        b = q("SELECT AVG(T.temperature) FROM Temp T")
        assert not contains(a, b, catalog)

    def test_aggregate_vs_spj(self, catalog):
        agg = q("SELECT AVG(T.temperature) FROM Temp T GROUP BY T.station")
        spj = q("SELECT T.temperature FROM Temp T")
        assert not contains(agg, spj, catalog)
        assert not contains(spj, agg, catalog)


class TestTable1(object):
    def test_q1_q2_contained_by_q3(self, q1, q2, q3, auction_catalog):
        assert contains(q1, q3, auction_catalog)
        assert contains(q2, q3, auction_catalog)

    def test_q3_not_contained_by_members(self, q1, q2, q3, auction_catalog):
        assert not contains(q3, q1, auction_catalog)
        assert not contains(q3, q2, auction_catalog)

    def test_q1_q2_incomparable(self, q1, q2, auction_catalog):
        assert not contains(q1, q2, auction_catalog)
        assert not contains(q2, q1, auction_catalog)


class TestEquivalence:
    def test_reflexive(self, catalog):
        a = q("SELECT T.temperature FROM Temp [Range 1 Hour] T")
        assert equivalent(a, a, catalog)

    def test_alias_renaming_equivalent(self, catalog):
        a = q("SELECT x.temperature FROM Temp [Range 1 Hour] x")
        b = q("SELECT y.temperature FROM Temp [Range 1 Hour] y")
        assert equivalent(a, b, catalog)

    def test_range_vs_equality_forms(self, catalog):
        a = q("SELECT T.temperature FROM Temp T WHERE T.station >= 3 AND T.station <= 3")
        b = q("SELECT T.temperature FROM Temp T WHERE T.station = 3")
        assert equivalent(a, b, catalog)
