"""Profile composition: source, direct-result, re-tightening."""

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES
from repro.core.merging import merge_queries
from repro.core.profiles import (
    ProfileCompositionError,
    direct_result_profile,
    result_profile,
    source_profile,
)
from repro.cql.parser import parse_query
from repro.cql.schema import Attribute, Catalog, StreamSchema


@pytest.fixture
def rs_catalog():
    """The R/S example of section 4."""
    return Catalog(
        [
            StreamSchema(
                "R",
                [Attribute("A", "float", 0, 100), Attribute("B", "int", 0, 9), Attribute("D", "float")],
            ),
            StreamSchema(
                "S",
                [Attribute("B", "int", 0, 9), Attribute("C", "float"), Attribute("E", "float")],
            ),
        ]
    )


class TestSourceProfile:
    def test_paper_example(self, rs_catalog):
        """Section 4: S={R,S}, P={R.A,R.B,S.B,S.C}, F={R.A>10}."""
        query = parse_query(
            "SELECT R.A, S.C FROM R [Now], S [Now] "
            "WHERE R.B = S.B AND R.A > 10"
        )
        profile = source_profile(query, rs_catalog)
        assert profile.streams == frozenset({"R", "S"})
        assert profile.projection_for("R") == frozenset({"A", "B"})
        assert profile.projection_for("S") == frozenset({"B", "C"})
        r_filter = profile.filters_for("R")[0]
        assert r_filter.covers(Datagram("R", {"A": 11, "B": 1}))
        assert not r_filter.covers(Datagram("R", {"A": 9, "B": 1}))

    def test_join_predicates_not_in_filters(self, rs_catalog):
        query = parse_query("SELECT R.A FROM R, S WHERE R.B = S.B")
        profile = source_profile(query, rs_catalog)
        for flt in profile.filters:
            assert not flt.condition.links

    def test_unfiltered_stream_requested_unconditionally(self, rs_catalog):
        query = parse_query("SELECT R.A, S.C FROM R, S WHERE R.A > 10")
        profile = source_profile(query, rs_catalog)
        s_filters = profile.filters_for("S")
        assert all(f.condition.is_true for f in s_filters)

    def test_aliases_stripped(self, rs_catalog):
        query = parse_query("SELECT x.A FROM R x WHERE x.A > 10")
        profile = source_profile(query, rs_catalog)
        assert profile.streams == frozenset({"R"})
        flt = profile.filters_for("R")[0]
        assert flt.covers(Datagram("R", {"A": 11}))

    def test_group_by_attributes_projected(self, rs_catalog):
        query = parse_query("SELECT AVG(R.A) FROM R GROUP BY R.B")
        profile = source_profile(query, rs_catalog)
        assert profile.projection_for("R") == frozenset({"A", "B"})

    def test_star_projects_everything(self, rs_catalog):
        query = parse_query("SELECT R.* FROM R")
        profile = source_profile(query, rs_catalog)
        assert profile.projection_for("R") == frozenset({"A", "B", "D"})


class TestDirectResultProfile:
    def test_no_filter_no_projection(self):
        profile = direct_result_profile("q0:results", subscriber="u")
        assert profile.streams == frozenset({"q0:results"})
        assert profile.projection_for("q0:results") == ALL_ATTRIBUTES
        assert profile.filters == ()
        assert profile.covers(Datagram("q0:results", {"anything": 1}))


class TestResultProfile:
    def test_table1_p1(self, auction_catalog, q1, q2):
        rep = merge_queries(q1, q2, auction_catalog, name="q3")
        p1 = result_profile(q1, rep, auction_catalog, "s3", subscriber="u1")
        assert p1.streams == frozenset({"s3"})
        assert p1.projection_for("s3") == frozenset(
            {
                "OpenAuction.itemID",
                "OpenAuction.sellerID",
                "OpenAuction.start_price",
                "OpenAuction.timestamp",
            }
        )
        flt = p1.filters[0]
        # Result at the window edge: closed exactly 3h after opening.
        edge = Datagram(
            "s3",
            {"OpenAuction.timestamp": 0.0, "ClosedAuction.timestamp": 10800.0},
            10800.0,
        )
        beyond = Datagram(
            "s3",
            {"OpenAuction.timestamp": 0.0, "ClosedAuction.timestamp": 10801.0},
            10801.0,
        )
        assert flt.condition.evaluate(edge.payload)
        assert not flt.condition.evaluate(beyond.payload)

    def test_table1_p2_unfiltered(self, auction_catalog, q1, q2):
        rep = merge_queries(q1, q2, auction_catalog, name="q3")
        p2 = result_profile(q2, rep, auction_catalog, "s3")
        assert p2.filters[0].condition.is_true
        assert p2.projection_for("s3") == frozenset(
            {
                "OpenAuction.itemID",
                "OpenAuction.timestamp",
                "ClosedAuction.buyerID",
                "ClosedAuction.timestamp",
            }
        )

    def test_selection_residual_refilters(self, sensor_catalog):
        a = parse_query("SELECT T.temperature FROM Temp T WHERE T.temperature > 30", name="a")
        b = parse_query("SELECT T.temperature FROM Temp T WHERE T.temperature > 10", name="b")
        rep = merge_queries(a, b, sensor_catalog)
        pa = result_profile(a, rep, sensor_catalog, "out")
        assert pa.covers(Datagram("out", {"Temp.temperature": 35.0}))
        assert not pa.covers(Datagram("out", {"Temp.temperature": 20.0}))

    def test_identical_member_gets_trivial_filter(self, sensor_catalog):
        a = parse_query("SELECT T.temperature FROM Temp T", name="a")
        b = parse_query("SELECT T.temperature FROM Temp T", name="b")
        rep = merge_queries(a, b, sensor_catalog)
        pa = result_profile(a, rep, sensor_catalog, "out")
        assert pa.filters[0].condition.is_true

    def test_unrecoverable_member_raises(self, sensor_catalog):
        # Hand-build a bogus representative lacking the residual attr.
        member = parse_query(
            "SELECT T.temperature FROM Temp T WHERE T.humidity > 50", name="m"
        )
        bogus_rep = parse_query("SELECT T.temperature FROM Temp T", name="r")
        with pytest.raises(ProfileCompositionError):
            result_profile(member, bogus_rep, sensor_catalog, "out")

    def test_member_output_missing_raises(self, sensor_catalog):
        member = parse_query("SELECT T.humidity FROM Temp T", name="m")
        bogus_rep = parse_query("SELECT T.temperature FROM Temp T", name="r")
        with pytest.raises(ProfileCompositionError):
            result_profile(member, bogus_rep, sensor_catalog, "out")
