"""The per-processor query manager."""

import pytest

from repro.cbn.datagram import Datagram
from repro.core.grouping import GroupingOptimizer
from repro.core.manager import QueryManager
from repro.core.cost import CostModel
from repro.cql.parser import parse_query
from repro.workload.auction import TABLE1_Q1, TABLE1_Q2


@pytest.fixture
def manager(auction_catalog):
    return QueryManager(auction_catalog)


class TestSubmission:
    def test_first_submission_creates_group(self, manager):
        sub = manager.submit(parse_query(TABLE1_Q1), name="q1")
        assert sub.created_group
        assert sub.result_stream.endswith(":results")
        assert sub.query.name == "q1"

    def test_overlapping_query_joins_group(self, manager):
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        sub = manager.submit(parse_query(TABLE1_Q2), name="q2")
        assert not sub.created_group
        assert sub.benefit_delta > 0
        assert len(manager.groups) == 1

    def test_updated_profiles_cover_all_members(self, manager):
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        sub = manager.submit(parse_query(TABLE1_Q2), name="q2")
        assert set(sub.updated_profiles) == {"q1", "q2"}

    def test_spe_runs_single_representative(self, manager):
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        manager.submit(parse_query(TABLE1_Q2), name="q2")
        assert len(manager.spe.query_names) == 1

    def test_source_profile_covers_inputs(self, manager):
        sub = manager.submit(parse_query(TABLE1_Q1), name="q1")
        assert sub.source_profile.streams == frozenset(
            {"OpenAuction", "ClosedAuction"}
        )

    def test_result_schema_provided(self, manager):
        sub = manager.submit(parse_query(TABLE1_Q1), name="q1")
        assert sub.result_schema.name == sub.result_stream
        assert sub.result_schema.has_attribute("OpenAuction.itemID")

    def test_auto_naming(self, manager):
        sub = manager.submit(parse_query(TABLE1_Q1))
        assert sub.query.name is not None

    def test_invalid_query_rejected(self, manager):
        with pytest.raises(Exception):
            manager.submit(parse_query("SELECT X.a FROM X"), name="bad")


class TestEndToEndThroughManager:
    def test_split_profiles_reproduce_member_results(self, manager, auction_catalog):
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        sub = manager.submit(parse_query(TABLE1_Q2), name="q2")
        p1 = sub.updated_profiles["q1"]
        p2 = sub.updated_profiles["q2"]

        feed = [
            Datagram("OpenAuction", {"itemID": 1, "sellerID": 2, "start_price": 5.0, "timestamp": 0.0}, 0.0),
            Datagram("ClosedAuction", {"itemID": 1, "buyerID": 7, "timestamp": 7200.0}, 7200.0),   # 2h: q1+q2
            Datagram("OpenAuction", {"itemID": 2, "sellerID": 2, "start_price": 5.0, "timestamp": 8000.0}, 8000.0),
            Datagram("ClosedAuction", {"itemID": 2, "buyerID": 8, "timestamp": 23000.0}, 23000.0),  # ~4.2h: q2 only
        ]
        split = {"q1": 0, "q2": 0}
        for datagram in feed:
            for result in manager.spe.push(datagram):
                out = result.datagram.relabel(sub.result_stream)
                for name, profile in (("q1", p1), ("q2", p2)):
                    if profile.apply(out) is not None:
                        split[name] += 1
        assert split == {"q1": 1, "q2": 2}


class TestWithdraw:
    def test_withdraw_last_member_removes_group(self, manager):
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        assert manager.withdraw("q1") is None
        assert manager.groups == []
        assert manager.spe.query_names == []

    def test_withdraw_member_recomposes(self, manager):
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        manager.submit(parse_query(TABLE1_Q2), name="q2")
        group = manager.withdraw("q2")
        assert group is not None
        assert group.member_names() == ["q1"]
        # The SPE now runs the recomposed (narrower) representative.
        assert len(manager.spe.query_names) == 1

    def test_withdraw_unknown_raises(self, manager):
        with pytest.raises(KeyError):
            manager.withdraw("zzz")


class TestMergingDisabled:
    def test_infinite_threshold_keeps_groups_apart(self, auction_catalog):
        manager = QueryManager(
            auction_catalog,
            grouping=GroupingOptimizer(
                auction_catalog, CostModel(), merge_threshold=float("inf")
            ),
        )
        manager.submit(parse_query(TABLE1_Q1), name="q1")
        manager.submit(parse_query(TABLE1_Q2), name="q2")
        assert len(manager.groups) == 2
        assert len(manager.spe.query_names) == 2
