"""The C(q) rate estimator."""

import math

import pytest

from repro.core.cost import CostModel
from repro.cql.parser import parse_query
from repro.cql.predicates import Interval
from repro.cql.schema import Attribute, Catalog, StreamSchema


@pytest.fixture
def catalog(sensor_catalog):
    return sensor_catalog


def q(text):
    return parse_query(text)


class TestSelectivity:
    def test_unfiltered_stream_full_rate(self, catalog):
        model = CostModel()
        query = q("SELECT T.temperature FROM Temp T")
        # Temp rate 2.0, width of temperature = 8.
        assert model.result_rate(query, catalog) == pytest.approx(16.0)

    def test_half_range_halves_rate(self, catalog):
        model = CostModel()
        query = q("SELECT T.temperature FROM Temp T WHERE T.temperature >= 10")
        # Domain [-20, 40] -> [10, 40] keeps 30/60 = 0.5.
        assert model.result_rate(query, catalog) == pytest.approx(8.0)

    def test_interval_selectivity_clamps_to_domain(self):
        model = CostModel()
        attr = Attribute("a", "float", 0, 10)
        assert model.interval_selectivity(Interval(-100, 5), attr) == pytest.approx(0.5)
        assert model.interval_selectivity(Interval(-100, 100), attr) == pytest.approx(1.0)

    def test_empty_interval_zero(self):
        model = CostModel()
        attr = Attribute("a", "float", 0, 10)
        assert model.interval_selectivity(Interval(5, 1), attr) == 0.0

    def test_point_on_int_domain(self):
        model = CostModel()
        attr = Attribute("a", "int", 0, 9)
        assert model.equality_selectivity(attr) == pytest.approx(0.1)

    def test_unknown_domain_uses_default(self):
        model = CostModel(default_equality_selectivity=0.05)
        assert model.equality_selectivity(Attribute("a", "float")) == 0.05

    def test_unknown_domain_interval_halves_per_side(self):
        model = CostModel()
        attr = Attribute("a", "float")  # no domain
        assert model.interval_selectivity(Interval(lo=0), attr) == 0.5
        assert model.interval_selectivity(Interval(0, 1), attr) == 0.25

    def test_tighter_predicate_cheaper(self, catalog):
        model = CostModel()
        loose = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 0")
        tight = q("SELECT T.temperature FROM Temp T WHERE T.temperature > 30")
        assert model.result_rate(tight, catalog) < model.result_rate(loose, catalog)


class TestWidth:
    def test_width_sums_projection(self, catalog):
        model = CostModel()
        narrow = q("SELECT T.station FROM Temp T")
        wide = q("SELECT T.station, T.temperature, T.humidity FROM Temp T")
        assert model.result_width(narrow, catalog) == 4.0
        assert model.result_width(wide, catalog) == 20.0

    def test_aggregate_width(self, catalog):
        model = CostModel()
        query = q("SELECT AVG(T.temperature) FROM Temp T GROUP BY T.station")
        assert model.result_width(query, catalog) == 4.0 + 8.0

    def test_implicit_timestamp_width(self, catalog):
        model = CostModel()
        query = q("SELECT T.timestamp FROM Temp T")
        assert model.result_width(query, catalog) == 8.0


class TestJoinRate:
    def test_window_sum_scaling(self, catalog):
        model = CostModel()
        small = q(
            "SELECT T.station FROM Temp [Range 10] T, Wind [Range 10] W "
            "WHERE T.station = W.station"
        )
        big = q(
            "SELECT T.station FROM Temp [Range 100] T, Wind [Range 100] W "
            "WHERE T.station = W.station"
        )
        assert model.result_tuple_rate(big, catalog) == pytest.approx(
            10 * model.result_tuple_rate(small, catalog)
        )

    def test_join_selectivity_from_domain(self, catalog):
        model = CostModel()
        query = q(
            "SELECT T.station FROM Temp T, Wind W WHERE T.station = W.station"
        )
        # station domain 0..9 -> selectivity 1/10.
        assert model.join_selectivity(query, catalog) == pytest.approx(0.1)

    def test_cross_product_no_join_discount(self, catalog):
        model = CostModel()
        cross = q("SELECT T.station FROM Temp [Range 10] T, Wind [Range 10] W")
        joined = q(
            "SELECT T.station FROM Temp [Range 10] T, Wind [Range 10] W "
            "WHERE T.station = W.station"
        )
        assert model.result_tuple_rate(cross, catalog) > model.result_tuple_rate(
            joined, catalog
        )

    def test_now_window_priced_with_epsilon(self, catalog):
        model = CostModel(now_epsilon=2.0)
        assert model.effective_window(0.0) == 2.0

    def test_unbounded_capped_at_horizon(self, catalog):
        model = CostModel(horizon=1000.0)
        assert model.effective_window(math.inf) == 1000.0

    def test_aggregate_rate_is_filtered_arrival_rate(self, catalog):
        model = CostModel()
        query = q(
            "SELECT AVG(T.temperature) FROM Temp [Range 1 Hour] T GROUP BY T.station"
        )
        assert model.result_tuple_rate(query, catalog) == pytest.approx(2.0)


class TestMergingEconomics:
    def test_identical_queries_merge_halves_rate(self, catalog):
        from repro.core.merging import merge_queries

        model = CostModel()
        a = parse_query("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", name="a")
        b = parse_query("SELECT T.temperature FROM Temp T WHERE T.temperature > 20", name="b")
        rep = merge_queries(a, b, catalog)
        c_rep = model.result_rate(rep, catalog)
        c_sum = model.result_rate(a, catalog) + model.result_rate(b, catalog)
        assert c_rep == pytest.approx(c_sum / 2)

    def test_disjoint_filters_make_merging_unattractive(self, catalog):
        from repro.core.merging import merge_queries

        model = CostModel()
        a = parse_query(
            "SELECT T.temperature FROM Temp T "
            "WHERE T.temperature >= -20 AND T.temperature <= -15",
            name="a",
        )
        b = parse_query(
            "SELECT T.temperature FROM Temp T "
            "WHERE T.temperature >= 35 AND T.temperature <= 40",
            name="b",
        )
        rep = merge_queries(a, b, catalog)
        c_rep = model.result_rate(rep, catalog)
        c_sum = model.result_rate(a, catalog) + model.result_rate(b, catalog)
        # The hull covers the whole gap: merging would cost more.
        assert c_rep > c_sum


class TestSourceFlowRate:
    def test_projection_shrinks_flow(self, catalog):
        model = CostModel()
        narrow = q("SELECT T.station FROM Temp T")
        wide = q("SELECT T.station, T.temperature, T.humidity FROM Temp T")
        assert model.source_flow_rate(narrow, "Temp", catalog) < model.source_flow_rate(
            wide, "Temp", catalog
        )

    def test_filter_attributes_included_in_flow(self, catalog):
        model = CostModel()
        plain = q("SELECT T.station FROM Temp T")
        filtered = q("SELECT T.station FROM Temp T WHERE T.temperature > 0")
        # The filter costs selectivity but adds the filtered attribute
        # to the wire; here selectivity (2/3) times the doubled width
        # still beats the unfiltered narrow flow.
        assert model.source_flow_rate(filtered, "Temp", catalog) != model.source_flow_rate(
            plain, "Temp", catalog
        )

    def test_selectivity_reduces_flow(self, catalog):
        model = CostModel()
        loose = q("SELECT T.station, T.temperature FROM Temp T WHERE T.temperature > 0")
        tight = q("SELECT T.station, T.temperature FROM Temp T WHERE T.temperature > 30")
        assert model.source_flow_rate(tight, "Temp", catalog) < model.source_flow_rate(
            loose, "Temp", catalog
        )
