"""The auction workload (Table 1 application)."""

import random

import pytest

from repro.cql.parser import parse_query
from repro.workload.auction import (
    AuctionWorkload,
    TABLE1_Q1,
    TABLE1_Q2,
    TABLE1_Q3,
    auction_catalog,
)


class TestSchemas:
    def test_catalog_contents(self):
        catalog = auction_catalog()
        assert "OpenAuction" in catalog
        assert "ClosedAuction" in catalog
        assert catalog.get("OpenAuction").has_attribute("start_price")

    def test_table1_queries_parse_and_validate(self):
        catalog = auction_catalog()
        for text in (TABLE1_Q1, TABLE1_Q2, TABLE1_Q3):
            parse_query(text).validate(catalog)


class TestWorkload:
    def test_every_item_opens_and_closes(self):
        feed = AuctionWorkload(random.Random(0)).feed(50)
        opens = [d for d in feed if d.stream == "OpenAuction"]
        closes = [d for d in feed if d.stream == "ClosedAuction"]
        assert len(opens) == len(closes) == 50
        assert {d.payload["itemID"] for d in opens} == set(range(50))

    def test_timestamp_ordered(self):
        feed = AuctionWorkload(random.Random(1)).feed(100)
        timestamps = [d.timestamp for d in feed]
        assert timestamps == sorted(timestamps)

    def test_close_after_open(self):
        feed = AuctionWorkload(random.Random(2)).feed(80)
        open_time = {}
        for datagram in feed:
            item = datagram.payload["itemID"]
            if datagram.stream == "OpenAuction":
                open_time[item] = datagram.timestamp
            else:
                assert datagram.timestamp >= open_time[item]

    def test_mean_duration_controls_close_fraction(self):
        fast = AuctionWorkload(random.Random(3), mean_duration=600.0).feed(200)
        slow = AuctionWorkload(random.Random(3), mean_duration=10 * 3600.0).feed(200)

        def within_3h(feed):
            opens = {
                d.payload["itemID"]: d.timestamp
                for d in feed
                if d.stream == "OpenAuction"
            }
            return sum(
                1
                for d in feed
                if d.stream == "ClosedAuction"
                and d.timestamp - opens[d.payload["itemID"]] <= 3 * 3600
            )

        assert within_3h(fast) > within_3h(slow)

    def test_seeded_reproducibility(self):
        a = AuctionWorkload(random.Random(7)).feed(30)
        b = AuctionWorkload(random.Random(7)).feed(30)
        assert a == b

    def test_payload_matches_schema(self):
        catalog = auction_catalog()
        for datagram in AuctionWorkload(random.Random(4)).feed(20):
            schema = catalog.get(datagram.stream)
            for name in datagram.payload:
                assert schema.has_attribute(name)
