"""The synthetic SensorScope catalog and replayer."""

import random

import pytest

from repro.workload.sensorscope import (
    CHANNELS,
    SensorScopeReplayer,
    sensorscope_catalog,
    stream_name,
)


class TestCatalog:
    def test_63_streams_by_default(self):
        catalog = sensorscope_catalog()
        assert len(catalog) == 63

    def test_stream_naming(self):
        assert stream_name(0) == "ss00"
        assert stream_name(62) == "ss62"

    def test_schema_channels(self):
        catalog = sensorscope_catalog(5)
        schema = catalog.get("ss00")
        for name, __, __, __ in CHANNELS:
            assert schema.has_attribute(name)

    def test_rates_within_bounds(self):
        catalog = sensorscope_catalog(20, rng=random.Random(1), min_rate=0.5, max_rate=4.0)
        for schema in catalog:
            assert 0.5 <= schema.rate <= 4.0

    def test_seeded_rates_reproducible(self):
        a = sensorscope_catalog(10, rng=random.Random(3))
        b = sensorscope_catalog(10, rng=random.Random(3))
        assert [s.rate for s in a] == [s.rate for s in b]

    def test_domains_declared(self):
        catalog = sensorscope_catalog(1)
        attr = catalog.get("ss00").attribute("ambient_temperature")
        assert attr.lo == -20.0 and attr.hi == 45.0


class TestReplayer:
    def test_feed_is_timestamp_ordered(self):
        catalog = sensorscope_catalog(5, rng=random.Random(2))
        feed = SensorScopeReplayer(catalog, random.Random(2)).feed(30.0)
        timestamps = [d.timestamp for d in feed]
        assert timestamps == sorted(timestamps)

    def test_feed_respects_duration(self):
        catalog = sensorscope_catalog(3, rng=random.Random(2))
        feed = SensorScopeReplayer(catalog, random.Random(2)).feed(10.0)
        assert all(0 <= d.timestamp < 10.0 for d in feed)

    def test_values_within_domains(self):
        catalog = sensorscope_catalog(4, rng=random.Random(4))
        feed = SensorScopeReplayer(catalog, random.Random(4)).feed(50.0)
        for datagram in feed:
            schema = catalog.get(datagram.stream)
            for name, value in datagram.payload.items():
                attr = schema.attribute(name)
                if attr.lo is not None:
                    assert attr.lo <= value <= attr.hi

    def test_station_matches_stream(self):
        catalog = sensorscope_catalog(4, rng=random.Random(5))
        feed = SensorScopeReplayer(catalog, random.Random(5)).feed(20.0)
        for datagram in feed:
            assert datagram.payload["station"] == int(datagram.stream[2:])

    def test_rate_controls_density(self):
        catalog = sensorscope_catalog(2, rng=random.Random(6), min_rate=1.0, max_rate=1.0)
        feed = SensorScopeReplayer(catalog, random.Random(6)).feed(100.0)
        per_stream = {}
        for datagram in feed:
            per_stream[datagram.stream] = per_stream.get(datagram.stream, 0) + 1
        for count in per_stream.values():
            assert count == pytest.approx(100, abs=2)
