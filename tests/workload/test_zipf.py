"""Zipf sampling."""

import random
from collections import Counter

import pytest

from repro.workload.zipf import ZipfSampler


class TestZipfSampler:
    def test_skew_zero_is_uniform(self):
        sampler = ZipfSampler(4, 0.0, random.Random(0))
        counts = Counter(sampler.sample() for __ in range(8000))
        for rank in range(4):
            assert counts[rank] == pytest.approx(2000, rel=0.15)

    def test_high_skew_concentrates_on_rank_zero(self):
        sampler = ZipfSampler(10, 2.0, random.Random(1))
        counts = Counter(sampler.sample() for __ in range(5000))
        assert counts[0] > 0.55 * 5000

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(7, 1.5)
        assert sum(sampler.probability(r) for r in range(7)) == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(5, 1.0)
        probs = [sampler.probability(r) for r in range(5)]
        assert probs == sorted(probs, reverse=True)

    def test_samples_in_range(self):
        sampler = ZipfSampler(3, 1.0, random.Random(2))
        assert all(0 <= sampler.sample() < 3 for __ in range(1000))

    def test_sample_item(self):
        sampler = ZipfSampler(3, 0.0, random.Random(3))
        assert sampler.sample_item(["a", "b", "c"]) in {"a", "b", "c"}

    def test_sample_item_length_mismatch(self):
        with pytest.raises(ValueError):
            ZipfSampler(3, 0.0).sample_item(["a"])

    def test_seeded_reproducibility(self):
        a = [ZipfSampler(10, 1.0, random.Random(5)).sample() for __ in range(1)]
        b = [ZipfSampler(10, 1.0, random.Random(5)).sample() for __ in range(1)]
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0)

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            ZipfSampler(3, 1.0).probability(3)
