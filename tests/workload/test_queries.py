"""The random query generator."""

import random
from collections import Counter

import pytest

from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import sensorscope_catalog


@pytest.fixture
def catalog():
    return sensorscope_catalog(10, rng=random.Random(0))


class TestGeneration:
    def test_queries_validate(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(skew=1.0, seed=1))
        for query in workload.generate(50):
            query.validate(catalog)

    def test_names_unique_and_sequential(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(seed=2))
        names = [q.name for q in workload.generate(10)]
        assert names == [f"q{i}" for i in range(10)]

    def test_seeded_reproducibility(self, catalog):
        a = QueryWorkload(catalog, WorkloadConfig(skew=1.5, seed=3)).generate(20)
        b = QueryWorkload(catalog, WorkloadConfig(skew=1.5, seed=3)).generate(20)
        assert [str(x) for x in a] == [str(x) for x in b]

    def test_windows_from_menu(self, catalog):
        config = WorkloadConfig(seed=4)
        workload = QueryWorkload(catalog, config)
        for query in workload.generate(40):
            for ref in query.streams:
                assert ref.window.size in config.window_choices

    def test_join_fraction_zero_means_single_stream(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(join_fraction=0.0, seed=5))
        assert all(len(q.streams) == 1 for q in workload.generate(40))

    def test_join_queries_have_join_predicate(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(join_fraction=1.0, seed=6))
        for query in workload.generate(20):
            assert len(query.streams) == 2
            assert query.predicate.links

    def test_join_streams_ordered_canonically(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(join_fraction=1.0, seed=7))
        for query in workload.generate(20):
            assert list(query.stream_names) == sorted(query.stream_names)

    def test_filters_always_present(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(join_fraction=0.0, seed=8))
        for query in workload.generate(30):
            assert not query.predicate.is_true

    def test_aggregate_fraction(self, catalog):
        workload = QueryWorkload(
            catalog,
            WorkloadConfig(join_fraction=0.0, aggregate_fraction=1.0, seed=9),
        )
        queries = workload.generate(10)
        assert all(q.is_aggregate for q in queries)
        for query in queries:
            query.validate(catalog)


class TestSkewEffect:
    def test_skew_concentrates_streams(self, catalog):
        def spread(skew):
            workload = QueryWorkload(catalog, WorkloadConfig(skew=skew, seed=10))
            counts = Counter(
                q.stream_names[0] for q in workload.generate(300)
            )
            return max(counts.values())

        assert spread(2.0) > spread(0.0)

    def test_uniform_covers_many_streams(self, catalog):
        workload = QueryWorkload(catalog, WorkloadConfig(skew=0.0, seed=11))
        streams = {q.stream_names[0] for q in workload.generate(200)}
        assert len(streams) >= 9  # of 10

    def test_empty_catalog_rejected(self):
        from repro.cql.schema import Catalog

        with pytest.raises(ValueError):
            QueryWorkload(Catalog())
