"""Table 1: the example queries and their representative, verified.

Regenerates the paper's running example (q1, q2, the composed q3 and
the split profiles p1/p2) and checks that executing the representative
once and splitting through the CBN reproduces direct execution exactly.
Also times the query-layer primitives the example exercises.
"""

import pytest

from repro.core.containment import contains
from repro.core.merging import merge_queries
from repro.cql.parser import parse_query
from repro.experiments.runner import table1_report
from repro.experiments.table1 import run_table1
from repro.workload.auction import TABLE1_Q1, TABLE1_Q2, auction_catalog


def test_table1_end_to_end(benchmark, report):
    result = benchmark.pedantic(
        run_table1, kwargs={"n_items": 500, "seed": 3}, rounds=1, iterations=1
    )
    report("table1_queries", table1_report(result))

    assert result.matches_paper_q3
    assert result.contains_q1 and result.contains_q2
    assert result.split_reproduces_direct
    assert result.q1_direct == result.q1_via_split > 0
    assert result.q2_direct == result.q2_via_split > result.q1_direct
    assert "10800" in result.p1_filter  # the -3h window re-tightening
    assert result.p2_filter == "TRUE"


def test_table1_merge_throughput(benchmark):
    """Microbenchmark: composing the Table 1 representative."""
    catalog = auction_catalog()
    q1 = parse_query(TABLE1_Q1, name="q1")
    q2 = parse_query(TABLE1_Q2, name="q2")
    rep = benchmark(merge_queries, q1, q2, catalog)
    assert contains(q1, rep, catalog)


def test_table1_containment_throughput(benchmark):
    """Microbenchmark: the Theorem 1 containment decision."""
    catalog = auction_catalog()
    q1 = parse_query(TABLE1_Q1, name="q1")
    rep = merge_queries(q1, parse_query(TABLE1_Q2, name="q2"), catalog)
    assert benchmark(contains, q1, rep, catalog)
