"""Figure 3: shared vs non-shared result stream delivery, measured.

Runs the motivating example end to end on the Figure 3 overlay (queries
q1/q2 of Table 1 at n3/n4, SPE at n1) in both modes and reports the
bytes measured on the shared n1-n2 link.  The expected shape: the
overlapping result contents cross the shared link once instead of
twice, while both users receive identical results.
"""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.runner import fig3_report, render_table


def test_fig3_shared_vs_nonshared_delivery(benchmark, report):
    result = benchmark.pedantic(
        run_fig3, kwargs={"n_items": 400, "seed": 11}, rounds=1, iterations=1
    )
    report("fig3_result_delivery", fig3_report(result))

    # Correctness first: sharing must not change what users receive.
    assert result.results_identical

    # The shared link carries strictly less with merging.
    assert result.shared_link_bytes_share < result.shared_link_bytes_nonshare
    assert 0.05 < result.shared_link_saving < 1.0

    # Total result traffic does not regress (the last hops are equal).
    assert result.total_bytes_share <= result.total_bytes_nonshare

    # The workload actually exercises the overlap: some auctions close
    # within 3h (q1 ∩ q2) and some only within 5h (q2 \ q1).
    assert 0 < result.q1_results < result.q2_results


def test_fig3_saving_grows_with_overlap(benchmark, report):
    """Ablation on the Figure 3 scenario: the shared-link saving grows
    with the fraction of q2's results that q1 shares (controlled by the
    mean auction duration)."""
    import random

    from repro.experiments import fig3 as fig3mod
    from repro.workload.auction import AuctionWorkload

    def run_with_duration(mean_hours):
        feed = AuctionWorkload(
            random.Random(5), mean_duration=mean_hours * 3600.0
        ).feed(300)
        system = fig3mod._build_system(merging=True)
        system.submit(fig3mod.TABLE1_Q1, user_node=fig3mod.N3, name="q1")
        system.submit(fig3mod.TABLE1_Q2, user_node=fig3mod.N4, name="q2")
        system.replay(feed)
        share = system.network.data_stats.usage(fig3mod.N1, fig3mod.N2).bytes

        baseline = fig3mod._build_system(merging=False)
        baseline.submit(fig3mod.TABLE1_Q1, user_node=fig3mod.N3, name="q1")
        baseline.submit(fig3mod.TABLE1_Q2, user_node=fig3mod.N4, name="q2")
        baseline.replay(feed)
        nonshare = baseline.network.data_stats.usage(fig3mod.N1, fig3mod.N2).bytes
        return 1.0 - share / nonshare if nonshare else 0.0

    savings = benchmark.pedantic(
        lambda: [run_with_duration(h) for h in (8.0, 3.0, 1.0)],
        rounds=1,
        iterations=1,
    )
    rows = [[f"{h:g}h", s] for h, s in zip((8.0, 3.0, 1.0), savings)]
    report(
        "fig3_overlap_sweep",
        render_table(
            ["mean auction duration", "shared-link saving"],
            rows,
            "Figure 3 ablation: saving vs result overlap",
        ),
    )
    # Shorter auctions -> more of q2's results also belong to q1 ->
    # more overlap -> larger saving.
    assert savings[2] > savings[0]
