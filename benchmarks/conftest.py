"""Shared benchmark helpers.

Every figure/table benchmark renders its reproduction as a plain-text
table, prints it (visible with ``pytest -s``) and archives it under
``benchmarks/results/`` so the EXPERIMENTS.md numbers can be traced to
a concrete run.

Set the ``REPRO_FULL_SCALE`` environment variable to run the Figure 4
sweep at the paper's original parameters (10000 queries, 20
repetitions — tens of minutes); the default is a scaled-down sweep that
preserves every qualitative trend.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return bool(os.environ.get("REPRO_FULL_SCALE"))


@pytest.fixture
def mst_builder():
    """The shared topology/tree builder (``tests/conftest.py``).

    Benchmarks used to grow their own ``barabasi_albert`` + MST
    boilerplate; the canonical builder now lives in one place.
    """
    from tests.conftest import build_mst

    return build_mst


@pytest.fixture(scope="session")
def report():
    """Callable: report(name, text) — print and archive a report."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write
