"""Ablations of the design choices DESIGN.md calls out.

These are our additions beyond the paper's own evaluation: each
benchmark isolates one mechanism of the architecture and quantifies
what it buys.

1. early projection in the CBN (on/off) — data bytes moved;
2. greedy grouping vs no grouping vs duplicates-only grouping —
   estimated output rate;
3. routing-table subsumption aggregation (on/off) — routing state;
4. flooded vs DHT schema distribution — control traffic;
5. overlay optimizer (on/off) — delay-weighted tree cost.
"""

import random

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cbn.schema_registry import DHTSchemaRegistry, FloodedSchemaRegistry
from repro.core.containment import equivalent
from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.cql.predicates import Comparison, Conjunction
from repro.experiments.runner import render_table
from repro.overlay.optimizer import OverlayOptimizer
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import SensorScopeReplayer, sensorscope_catalog


# ---------------------------------------------------------------------------
# 1. Early projection
# ---------------------------------------------------------------------------


def _projection_scenario(early_projection: bool) -> float:
    """Bytes moved delivering narrow subscriptions of a wide stream."""
    rng = random.Random(3)
    catalog = sensorscope_catalog(1, rng=random.Random(3))
    schema = catalog.get("ss00")
    topo = barabasi_albert(60, 2, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    net = ContentBasedNetwork(tree, catalog)
    net.advertise("ss00", 0, schema)
    for index in range(8):
        if early_projection:
            projection = frozenset({"station", "ambient_temperature"})
        else:
            projection = ALL_ATTRIBUTES
        net.subscribe(
            Profile({"ss00": projection}), rng.randrange(1, 60), f"u{index}"
        )
    feed = SensorScopeReplayer(catalog, random.Random(4)).feed(30.0)
    net.publish_many(feed, 0)
    return net.data_stats.total_bytes()


def test_ablation_early_projection(benchmark, report):
    with_projection = _projection_scenario(True)
    without = benchmark.pedantic(
        _projection_scenario, args=(False,), rounds=1, iterations=1
    )
    report(
        "ablation_early_projection",
        render_table(
            ["mode", "data bytes"],
            [["projection (P sets)", with_projection], ["full datagrams", without]],
            "Ablation: early projection in the CBN",
        ),
    )
    # The paper's motivation for extending CBN with projections: a large
    # fraction of the bytes never needed to travel.
    assert with_projection < 0.5 * without


# ---------------------------------------------------------------------------
# 2. Grouping policies
# ---------------------------------------------------------------------------


class _DuplicatesOnlyOptimizer(GroupingOptimizer):
    """Merging restricted to semantically equivalent queries.

    Isolates how much of the benefit needs the paper's *containment*
    machinery (window widening, predicate hulls) versus plain duplicate
    elimination.
    """

    def add(self, query):
        query = query.canonical(self.catalog)
        key = self._structure_key(query)
        for group_id in self._index.get(key, ()):
            group = self._groups[group_id]
            if equivalent(group.representative, query, self.catalog):
                group.members.append(query)
                self._group_of_query[query.name] = group.group_id
                from repro.core.grouping import GroupingDecision

                return GroupingDecision(query, group, False, 0.0)
        rate = self.cost_model.result_rate(query, self.catalog)
        group = self._new_group(query, rate)
        from repro.core.grouping import GroupingDecision

        return GroupingDecision(query, group, True, 0.0)


def _grouping_policy_run(policy: str, n: int = 600, skew: float = 1.5) -> float:
    catalog = sensorscope_catalog(rng=random.Random(1))
    workload = QueryWorkload(
        catalog, WorkloadConfig(skew=skew, join_fraction=0.0, seed=9)
    )
    if policy == "none":
        optimizer = GroupingOptimizer(
            catalog, CostModel(), merge_threshold=float("inf")
        )
    elif policy == "duplicates":
        optimizer = _DuplicatesOnlyOptimizer(catalog, CostModel())
    else:
        optimizer = GroupingOptimizer(catalog, CostModel())
    for query in workload.generate(n):
        optimizer.add(query)
    return optimizer.benefit_ratio()


def test_ablation_grouping_policies(benchmark, report):
    greedy = benchmark.pedantic(
        _grouping_policy_run, args=("greedy",), rounds=1, iterations=1
    )
    duplicates = _grouping_policy_run("duplicates")
    none = _grouping_policy_run("none")
    report(
        "ablation_grouping_policies",
        render_table(
            ["policy", "benefit ratio"],
            [
                ["no grouping", none],
                ["duplicates only", duplicates],
                ["greedy containment merging (paper)", greedy],
            ],
            "Ablation: grouping policy",
        ),
    )
    assert none == 0.0
    assert greedy > duplicates > 0.0


# ---------------------------------------------------------------------------
# 3. Subsumption aggregation
# ---------------------------------------------------------------------------


def _routing_state(use_subsumption: bool) -> int:
    rng = random.Random(6)
    catalog = sensorscope_catalog(4, rng=random.Random(6))
    topo = barabasi_albert(80, 2, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    net = ContentBasedNetwork(tree, catalog, use_subsumption=use_subsumption)
    for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
        net.advertise(schema.name, index, schema)
    for index in range(60):
        stream = f"ss{rng.randrange(4):02d}"
        threshold = rng.choice([0.0, 10.0, 20.0])
        profile = Profile(
            {stream: ALL_ATTRIBUTES},
            [
                Filter(
                    stream,
                    Conjunction.from_atoms(
                        [Comparison("ambient_temperature", ">=", threshold)]
                    ),
                )
            ],
        )
        net.subscribe(profile, rng.randrange(80), f"u{index}")
    return net.routing_state_size()


def test_ablation_subsumption_routing_state(benchmark, report):
    aggregated = benchmark.pedantic(
        _routing_state, args=(True,), rounds=1, iterations=1
    )
    plain = _routing_state(False)
    report(
        "ablation_subsumption",
        render_table(
            ["mode", "routing entries"],
            [["per-subscription", plain], ["covering aggregation", aggregated]],
            "Ablation: routing-table subsumption",
        ),
    )
    assert aggregated < plain


# ---------------------------------------------------------------------------
# 4. Schema distribution
# ---------------------------------------------------------------------------


def _schema_traffic(kind: str, n_streams: int, n_lookups: int) -> float:
    rng = random.Random(8)
    topo = barabasi_albert(120, 2, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    registry = (
        FloodedSchemaRegistry(tree) if kind == "flooded" else DHTSchemaRegistry(tree)
    )
    catalog = sensorscope_catalog(n_streams, rng=random.Random(8))
    for schema in catalog:
        registry.register(schema, rng.randrange(120))
    for __ in range(n_lookups):
        name = f"ss{rng.randrange(n_streams):02d}"
        registry.lookup(name, rng.randrange(120))
    return registry.stats.total_bytes()


def test_ablation_schema_distribution(benchmark, report):
    """The paper's rule: flood when streams are few, DHT otherwise."""
    rows = []
    for n_streams, n_lookups in ((5, 50), (63, 50)):
        flooded = _schema_traffic("flooded", n_streams, n_lookups)
        dht = _schema_traffic("dht", n_streams, n_lookups)
        rows.append([f"{n_streams} streams", flooded, dht])
    benchmark.pedantic(
        _schema_traffic, args=("dht", 63, 50), rounds=1, iterations=1
    )
    report(
        "ablation_schema_distribution",
        render_table(
            ["scenario", "flooded bytes", "DHT bytes"],
            rows,
            "Ablation: schema distribution",
        ),
    )
    # With many streams the DHT moves far fewer bytes than flooding.
    assert rows[1][2] < rows[1][1]


# ---------------------------------------------------------------------------
# 5. Overlay optimizer
# ---------------------------------------------------------------------------


def test_ablation_overlay_optimizer(benchmark, report):
    rng = random.Random(12)
    topo = barabasi_albert(60, 3, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    demands = [
        (rng.randrange(60), rng.randrange(60), rng.uniform(1.0, 10.0))
        for __ in range(25)
    ]
    optimizer = OverlayOptimizer(topo)
    before = optimizer.tree_cost(tree, demands)
    improved, opt_report = benchmark.pedantic(
        optimizer.optimize, args=(tree, demands), kwargs={"max_rounds": 6},
        rounds=1, iterations=1,
    )
    report(
        "ablation_overlay_optimizer",
        render_table(
            ["tree", "delay-weighted cost"],
            [["MST (static)", before], ["after local reorganisation", opt_report.final_cost]],
            "Ablation: adaptive overlay reorganisation",
        ),
    )
    assert opt_report.final_cost < before
    assert len(improved.edges) == len(tree.edges)


# ---------------------------------------------------------------------------
# 6. Incremental greedy vs periodic re-grouping
# ---------------------------------------------------------------------------


def test_ablation_periodic_regrouping(benchmark, report):
    """The paper's greedy is order-sensitive; periodic re-grouping
    (re-inserting all queries, largest flows first) recovers part of
    the loss at the cost of churning the running representatives."""
    catalog = sensorscope_catalog(rng=random.Random(1))
    workload = QueryWorkload(
        catalog, WorkloadConfig(skew=1.0, join_fraction=0.0, seed=5)
    )
    queries = workload.generate(800)

    def run():
        optimizer = GroupingOptimizer(catalog, CostModel())
        for query in queries:
            optimizer.add(query)
        incremental = optimizer.benefit_ratio()
        optimizer.reoptimize()
        return incremental, optimizer.benefit_ratio()

    incremental, regrouped = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_periodic_regrouping",
        render_table(
            ["policy", "benefit ratio"],
            [
                ["incremental greedy (paper)", incremental],
                ["+ periodic re-grouping", regrouped],
            ],
            "Ablation: incremental greedy vs periodic re-grouping",
        ),
    )
    assert regrouped >= incremental


# ---------------------------------------------------------------------------
# 7. Containment strictness: Theorem 1 window widening vs equal windows only
# ---------------------------------------------------------------------------


class _EqualWindowsOptimizer(GroupingOptimizer):
    """Greedy merging restricted to members with identical windows.

    Disables the Theorem 1 direction (windows may widen to the
    per-stream maximum) to quantify how much benefit window widening
    itself contributes.
    """

    def add(self, query):
        query = query.canonical(self.catalog)
        original = GroupingOptimizer.add
        # Temporarily shrink the candidate set: only groups whose
        # representative has exactly this query's windows can host it.
        key = self._structure_key(query)
        compatible = []
        for group_id in self._index.get(key, ()):
            group = self._groups[group_id]
            rep_windows = {r.stream: r.window for r in group.representative.streams}
            q_windows = {r.stream: r.window for r in query.streams}
            if rep_windows == q_windows:
                compatible.append(group_id)
        saved = self._index.get(key)
        self._index[key] = compatible
        try:
            return original(self, query)
        finally:
            if saved is not None:
                if self._group_of_query.get(query.name) is not None:
                    new_gid = self._group_of_query[query.name]
                    if new_gid not in saved:
                        saved = saved + [new_gid]
                self._index[key] = saved


def test_ablation_window_widening(benchmark, report):
    catalog = sensorscope_catalog(rng=random.Random(1))
    workload = QueryWorkload(
        catalog, WorkloadConfig(skew=1.5, join_fraction=0.0, seed=11)
    )
    queries = workload.generate(600)

    def run(cls):
        optimizer = cls(catalog, CostModel())
        for query in queries:
            optimizer.add(query)
        return optimizer.benefit_ratio(), optimizer.grouping_ratio()

    full_benefit, full_grouping = benchmark.pedantic(
        run, args=(GroupingOptimizer,), rounds=1, iterations=1
    )
    strict_benefit, strict_grouping = run(_EqualWindowsOptimizer)
    report(
        "ablation_window_widening",
        render_table(
            ["policy", "benefit ratio", "grouping ratio"],
            [
                ["equal windows only", strict_benefit, strict_grouping],
                ["Theorem 1 window widening (paper)", full_benefit, full_grouping],
            ],
            "Ablation: containment strictness",
        ),
    )
    # Widening merges across window sizes: fewer groups, more benefit.
    assert full_grouping <= strict_grouping
    assert full_benefit >= strict_benefit


# ---------------------------------------------------------------------------
# 8. Query distribution policy: affinity vs cost-aware placement
# ---------------------------------------------------------------------------


def test_ablation_placement_policy(benchmark, report):
    """Stream-affinity placement concentrates same-FROM queries on one
    processor (maximum merging); per-query cost-aware placement (the
    operator-placement paradigm) shortens paths but splits groups.
    The ablation quantifies both effects on one workload."""
    from repro.system.cosmos import CosmosSystem
    from repro.system.distribution import (
        CostAwareDistribution,
        RoundRobinDistribution,
        StreamAffinityDistribution,
    )
    from repro.workload.sensorscope import SensorScopeReplayer

    def run(policy_name):
        rng = random.Random(31)
        catalog = sensorscope_catalog(6, rng=random.Random(31))
        topo = barabasi_albert(60, 2, rng)
        tree = DisseminationTree.minimum_spanning(topo)
        source_nodes = {}
        system = CosmosSystem(tree, processor_nodes=[0, 1, 2, 3], topology=topo)
        for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
            system.add_source(schema, 20 + index)
            source_nodes[schema.name] = 20 + index
        if policy_name == "cost-aware":
            system.distribution = CostAwareDistribution(
                tree, catalog, source_nodes, CostModel()
            )
        elif policy_name == "round-robin":
            system.distribution = RoundRobinDistribution()
        else:
            system.distribution = StreamAffinityDistribution()
        workload = QueryWorkload(
            catalog, WorkloadConfig(skew=1.5, join_fraction=0.0, seed=8)
        )
        for query in workload.generate(120):
            system.submit(query, user_node=rng.randrange(60))
        feed = SensorScopeReplayer(catalog, random.Random(32)).feed(15.0)
        system.replay(feed)
        summary = system.grouping_summary()
        return summary["grouping_ratio"], system.network.data_stats.total_bytes()

    affinity = benchmark.pedantic(run, args=("affinity",), rounds=1, iterations=1)
    cost_aware = run("cost-aware")
    round_robin = run("round-robin")
    report(
        "ablation_placement",
        render_table(
            ["policy", "grouping ratio", "measured data bytes"],
            [
                ["stream affinity", affinity[0], affinity[1]],
                ["cost-aware placement", cost_aware[0], cost_aware[1]],
                ["round robin", round_robin[0], round_robin[1]],
            ],
            "Ablation: query distribution policy",
        ),
    )
    # Affinity always groups at least as tightly as the splitters.
    assert affinity[0] <= cost_aware[0] + 1e-9
    assert affinity[0] <= round_robin[0] + 1e-9
