"""Microbenchmarks of the per-operation primitives.

Not a paper figure — these quantify the substrate costs (parse, route,
match, join, group) that the system-level experiments are built on, and
guard against performance regressions.
"""

import random

import pytest

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.cql.parser import parse_query
from repro.cql.predicates import Comparison, Conjunction
from repro.experiments.runner import render_table
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.spe.engine import StreamProcessingEngine
from repro.workload.auction import TABLE1_Q3, auction_catalog
from repro.workload.bench import (
    best_of,
    group_feed,
    publish_batched,
    publish_batched_time,
    publish_loop,
    publish_loop_time,
    stats_equal,
)
from repro.workload.fastpath import build_fastpath_workload
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import sensorscope_catalog


def test_parse_query_throughput(benchmark):
    query = benchmark(parse_query, TABLE1_Q3)
    assert len(query.streams) == 2


def test_profile_coverage_throughput(benchmark):
    profile = Profile(
        {"S": frozenset({"a"})},
        [Filter("S", Conjunction.from_atoms([Comparison("a", ">", 10)]))],
    )
    datagram = Datagram("S", {"a": 20, "b": 1}, 0.0)
    assert benchmark(profile.covers, datagram)


def test_cbn_publish_throughput(benchmark):
    rng = random.Random(1)
    catalog = sensorscope_catalog(1, rng=random.Random(1))
    topo = barabasi_albert(200, 2, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    net = ContentBasedNetwork(tree, catalog)
    net.advertise("ss00", 0, catalog.get("ss00"))
    for index in range(20):
        net.subscribe(
            Profile({"ss00": frozenset({"station", "ambient_temperature"})}),
            rng.randrange(200),
            f"u{index}",
        )
    datagram = Datagram(
        "ss00", {"station": 0, "ambient_temperature": 20.0, "timestamp": 1.0}, 1.0
    )
    deliveries = benchmark(net.publish, datagram, 0)
    assert len(deliveries) == 20


def test_cbn_publish_many_throughput(benchmark):
    """Batched publication of a whole feed via ``publish_many``."""
    workload = build_fastpath_workload(
        fast_path=True, n_streams=8, n_subscriptions=200, n_nodes=80,
        n_datagrams=50, batch_size=10,
    )
    runs = group_feed(workload.feed)

    def run():
        return sum(
            len(deliveries)
            for batch, origin in runs
            for deliveries in workload.network.publish_many(batch, origin)
        )

    delivered = benchmark(run)
    assert delivered > 0


def test_cbn_columnar_batch_speedup(report):
    """The columnar batch path vs the scalar per-datagram fast path.

    Bursty feed (runs of 25 same-stream datagrams): grouping the runs
    through ``publish_many`` amortises plan lookup, column extraction
    and shared projection across each batch, and must stay
    byte-identical to publishing the feed one datagram at a time.
    """
    shape = dict(n_datagrams=200, batch_size=25)
    batched = build_fastpath_workload(fast_path=True, **shape)
    scalar = build_fastpath_workload(fast_path=True, **shape)
    runs = group_feed(batched.feed)

    batched_out = publish_batched(batched.network, runs)
    scalar_out = publish_loop(scalar.network, scalar.feed)
    batched_time, scalar_time = best_of(
        3,
        lambda: publish_batched_time(batched.network, runs),
        lambda: publish_loop_time(scalar.network, scalar.feed),
    )

    assert batched_out == scalar_out
    assert stats_equal(batched.network, scalar.network)

    speedup = scalar_time / batched_time
    report(
        "microbench_columnar",
        render_table(
            ["path", "datagrams/sec", "best rep (s)"],
            [
                ["scalar fast path", f"{len(scalar_out) / scalar_time:.0f}",
                 f"{scalar_time:.4f}"],
                ["columnar batches", f"{len(batched_out) / batched_time:.0f}",
                 f"{batched_time:.4f}"],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            "Microbench: CBN columnar batch path vs scalar fast path",
        ),
    )
    assert speedup >= 1.2


def test_cbn_fastpath_speedup(report):
    """The per-stream index + decision cache vs the naive scan.

    Matching-heavy workload (24 streams, 1200 subscriptions, 120
    brokers): the indexed path must be at least 3x faster while staying
    byte-identical — same deliveries in the same order, same per-link
    ``LinkStats`` totals.  Timed reps of the two paths are interleaved
    so both sample the same machine conditions.
    """
    fast = build_fastpath_workload(fast_path=True)
    slow = build_fastpath_workload(fast_path=False)

    fast_out = publish_loop(fast.network, fast.feed)
    slow_out = publish_loop(slow.network, slow.feed)
    fast_time, slow_time = best_of(
        3,
        lambda: publish_loop_time(fast.network, fast.feed),
        lambda: publish_loop_time(slow.network, slow.feed),
    )

    # Byte-identical outcomes: same subscribers, nodes and payloads in
    # the same order, and identical per-link message/byte totals.
    assert fast_out == slow_out
    assert stats_equal(fast.network, slow.network)

    speedup = slow_time / fast_time
    rate_fast = len(fast_out) / fast_time
    rate_slow = len(slow_out) / slow_time
    report(
        "microbench_fastpath",
        render_table(
            ["path", "datagrams/sec", "best rep (s)"],
            [
                ["naive scan", f"{rate_slow:.0f}", f"{slow_time:.4f}"],
                ["indexed fast path", f"{rate_fast:.0f}", f"{fast_time:.4f}"],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            "Microbench: CBN publish fast path vs naive scan",
        ),
    )
    assert speedup >= 3.0


def test_spe_join_throughput(benchmark):
    catalog = auction_catalog()
    feed = []
    for item in range(50):
        ts = float(item * 60)
        feed.append(
            Datagram(
                "OpenAuction",
                {"itemID": item, "sellerID": 1, "start_price": 1.0, "timestamp": ts},
                ts,
            )
        )
        feed.append(
            Datagram(
                "ClosedAuction",
                {"itemID": item, "buyerID": 2, "timestamp": ts + 30},
                ts + 30,
            )
        )
    feed.sort(key=lambda d: d.timestamp)

    def run():
        spe = StreamProcessingEngine(catalog)
        spe.register(parse_query(TABLE1_Q3), "q3")
        return sum(len(spe.push(d)) for d in feed)

    results = benchmark(run)
    assert results == 50


def test_grouping_add_throughput(benchmark):
    catalog = sensorscope_catalog(rng=random.Random(2))
    workload = QueryWorkload(
        catalog, WorkloadConfig(skew=1.0, join_fraction=0.0, seed=4)
    )
    queries = workload.generate(200)

    def run():
        optimizer = GroupingOptimizer(catalog, CostModel())
        for query in queries:
            optimizer.add(query)
        return optimizer.group_count

    groups = benchmark(run)
    assert 0 < groups < 200


def test_tree_path_throughput(benchmark):
    rng = random.Random(3)
    topo = barabasi_albert(1000, 2, rng)
    tree = DisseminationTree.minimum_spanning(topo)
    pairs = [(rng.randrange(1000), rng.randrange(1000)) for __ in range(100)]

    def run():
        return sum(len(tree.path(a, b)) for a, b in pairs)

    total = benchmark(run)
    assert total > 0
