"""Baseline comparison: unicast (existing systems) vs the CBN.

The paper's introduction motivates COSMOS with the cost of the unicast
paradigm: separately planned queries transfer their common content
separately, and "with a large number of user queries, such overhead
would be overwhelming".  This benchmark measures exactly that on
identical workloads: N subscribers with zipf-popular interests over
sensor streams, one feed, two substrates.

Expected shape: the CBN's advantage (unicast bytes / CBN bytes) grows
with the number of subscriptions.
"""

import random

import pytest

from repro.baselines.unicast import UnicastNetwork
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cql.predicates import Comparison, Conjunction
from repro.experiments.runner import render_table
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.workload.sensorscope import SensorScopeReplayer, sensorscope_catalog
from repro.workload.zipf import ZipfSampler


def _workload(seed=5, n_streams=8, duration=20.0):
    catalog = sensorscope_catalog(n_streams, rng=random.Random(seed))
    topo = barabasi_albert(150, 2, random.Random(seed))
    tree = DisseminationTree.minimum_spanning(topo)
    feed = SensorScopeReplayer(catalog, random.Random(seed + 1)).feed(duration)
    return catalog, tree, feed


def _subscriptions(catalog, rng, count, skew=1.2):
    streams = catalog.stream_names
    stream_sampler = ZipfSampler(len(streams), skew, rng)
    thresholds = [0.0, 10.0, 20.0, 30.0]
    subs = []
    for __ in range(count):
        stream = streams[stream_sampler.sample()]
        threshold = rng.choice(thresholds)
        profile = Profile(
            {stream: frozenset({"station", "ambient_temperature"})},
            [
                Filter(
                    stream,
                    Conjunction.from_atoms(
                        [Comparison("ambient_temperature", ">=", threshold)]
                    ),
                )
            ],
        )
        subs.append(profile)
    return subs


def _run(network_cls, catalog, tree, feed, profiles, placements):
    net = network_cls(tree, catalog)
    for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
        net.advertise(schema.name, index, schema)
    for index, (profile, node) in enumerate(zip(profiles, placements)):
        net.subscribe(profile, node, f"u{index}")
    batches = {}
    for datagram in feed:
        batches.setdefault(int(datagram.stream[2:]), []).append(datagram)
    delivered = sum(
        len(deliveries)
        for source, batch in batches.items()
        for deliveries in net.publish_many(batch, source)
    )
    return delivered, net.data_stats.total_bytes()


def test_unicast_vs_cbn_scaling(benchmark, report):
    catalog, tree, feed = _workload()
    rng = random.Random(9)
    rows = []
    ratios = []

    def sweep():
        rows.clear()
        ratios.clear()
        for count in (10, 80, 320):
            profiles = _subscriptions(catalog, random.Random(3), count)
            placements = [rng.randrange(150) for __ in profiles]
            cbn_delivered, cbn_bytes = _run(
                ContentBasedNetwork, catalog, tree, feed, profiles, placements
            )
            uni_delivered, uni_bytes = _run(
                UnicastNetwork, catalog, tree, feed, profiles, placements
            )
            assert cbn_delivered == uni_delivered  # identical semantics
            ratio = uni_bytes / cbn_bytes
            ratios.append(ratio)
            rows.append([count, f"{uni_bytes:.0f}", f"{cbn_bytes:.0f}", f"{ratio:.2f}x"])
        return ratios

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "baseline_unicast",
        render_table(
            ["#subscriptions", "unicast bytes", "CBN bytes", "CBN advantage"],
            rows,
            "Baseline: unicast (existing systems) vs content-based network",
        ),
    )
    # The CBN always wins and its advantage grows with subscription count.
    assert all(r >= 1.0 for r in ratios)
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 2.0
