"""Figure 4(b): grouping ratio (#groups / #queries).

The complementary view of Figure 4(a): with more queries — and more
skew — the incremental greedy algorithm packs queries into relatively
fewer groups, so the grouping ratio falls.  "Generally, the lower the
grouping ratio, the higher the benefit ratio could be."
"""

import pytest

from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.runner import fig4_report


def _config(full_scale: bool) -> Fig4Config:
    if full_scale:
        return Fig4Config.paper_scale()
    return Fig4Config(
        query_counts=(500, 1000, 2000),
        skews=(0.0, 1.0, 1.5, 2.0),
        repetitions=2,
        topology_nodes=500,
        seed=13,
    )


def test_fig4b_grouping_ratio(benchmark, report, full_scale):
    result = benchmark.pedantic(
        run_fig4, args=(_config(full_scale),), rounds=1, iterations=1
    )
    report("fig4b_grouping_ratio", fig4_report(result))

    counts = sorted({p.n_queries for p in result.points})
    first, last = counts[0], counts[-1]

    # Trend 1: the grouping ratio falls as queries accumulate.
    for skew in result.config.skews:
        assert (
            result.point(skew, last).grouping_ratio
            <= result.point(skew, first).grouping_ratio + 0.02
        ), f"grouping ratio not decreasing for skew {skew}"

    # Trend 2: skew packs queries into fewer groups.
    final = [result.point(skew, last).grouping_ratio for skew in (0.0, 1.0, 1.5, 2.0)]
    assert final[3] < final[0], "zipf2 should group tighter than uniform"

    # Trend 3 (the paper's cross-figure observation): lower grouping
    # ratio coincides with higher benefit ratio across the skews.
    benefits = [result.point(skew, last).benefit_ratio for skew in (0.0, 2.0)]
    groupings = [result.point(skew, last).grouping_ratio for skew in (0.0, 2.0)]
    assert (benefits[1] - benefits[0]) * (groupings[1] - groupings[0]) <= 0

    for value in final:
        assert 0.0 < value <= 1.0
