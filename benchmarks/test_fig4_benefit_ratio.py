"""Figure 4(a): benefit ratio of query merging.

Regenerates the paper's benefit-ratio curves: communication cost
reduced by query merging vs no merging, as the number of queries grows,
for uniform and zipf(1.0/1.5/2.0) query distributions over 63
SensorScope streams on a 1000-node power-law topology.

Expected shape (paper): the ratio grows with the number of queries and
with the skew; zipf2 is the highest curve, uniform the lowest.
"""

import pytest

from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.runner import fig4_report


def _config(full_scale: bool) -> Fig4Config:
    if full_scale:
        return Fig4Config.paper_scale()
    return Fig4Config(
        query_counts=(500, 1000, 2000),
        skews=(0.0, 1.0, 1.5, 2.0),
        repetitions=2,
        topology_nodes=1000,
        seed=7,
    )


def test_fig4a_benefit_ratio(benchmark, report, full_scale):
    result = benchmark.pedantic(
        run_fig4, args=(_config(full_scale),), rounds=1, iterations=1
    )
    report("fig4a_benefit_ratio", fig4_report(result))

    counts = sorted({p.n_queries for p in result.points})
    first, last = counts[0], counts[-1]

    # Trend 1: more queries -> more sharing opportunity (every curve).
    for skew in result.config.skews:
        assert (
            result.point(skew, last).benefit_ratio
            >= result.point(skew, first).benefit_ratio - 0.02
        ), f"benefit ratio not increasing for skew {skew}"

    # Trend 2: at the largest count the curves order by skew.
    final = [result.point(skew, last).benefit_ratio for skew in (0.0, 1.0, 1.5, 2.0)]
    assert final[3] > final[0], "zipf2 should beat uniform"
    assert final[2] > final[0], "zipf1.5 should beat uniform"

    # Magnitude sanity: merging recovers a substantial fraction for the
    # skewed distributions (the paper reports up to ~0.9 at 10k).
    assert final[3] > 0.3
    for value in final:
        assert 0.0 <= value <= 1.0
