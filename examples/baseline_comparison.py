"""Why a content-based network: unicast vs CBN on one workload.

The paper's introduction argues that the unicast paradigm of earlier
distributed stream systems transfers common content once *per query*,
and that "with a large number of user queries, such overhead would be
overwhelming".  This example runs the same sensor feed and the same
subscriptions through both substrates and prints the measured gap as
the subscription count grows.

Run:  python examples/baseline_comparison.py
"""

import random

from repro.baselines.unicast import UnicastNetwork
from repro.cbn.filters import Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cql.predicates import Comparison, Conjunction
from repro.overlay import DisseminationTree, barabasi_albert
from repro.workload import SensorScopeReplayer, ZipfSampler, sensorscope_catalog

catalog = sensorscope_catalog(8, rng=random.Random(5))
topology = barabasi_albert(150, 2, random.Random(5))
tree = DisseminationTree.minimum_spanning(topology)
feed = SensorScopeReplayer(catalog, random.Random(6)).feed(20.0)


def subscriptions(count, rng):
    streams = catalog.stream_names
    sampler = ZipfSampler(len(streams), 1.2, rng)
    for index in range(count):
        stream = streams[sampler.sample()]
        threshold = rng.choice([0.0, 10.0, 20.0, 30.0])
        profile = Profile(
            {stream: frozenset({"station", "ambient_temperature"})},
            [
                Filter(
                    stream,
                    Conjunction.from_atoms(
                        [Comparison("ambient_temperature", ">=", threshold)]
                    ),
                )
            ],
        )
        yield index, profile


def run(network_cls, count):
    net = network_cls(tree, catalog)
    placement_rng = random.Random(9)
    for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
        net.advertise(schema.name, index, schema)
    for index, profile in subscriptions(count, random.Random(3)):
        net.subscribe(profile, placement_rng.randrange(150), f"u{index}")
    batches = {}
    for datagram in feed:
        batches.setdefault(int(datagram.stream[2:]), []).append(datagram)
    delivered = sum(
        len(deliveries)
        for origin, batch in batches.items()
        for deliveries in net.publish_many(batch, origin)
    )
    return delivered, net.data_stats.total_bytes()


print(f"{'#subs':>6}  {'unicast B':>10}  {'CBN B':>10}  advantage")
for count in (10, 40, 160, 320):
    uni_delivered, uni_bytes = run(UnicastNetwork, count)
    cbn_delivered, cbn_bytes = run(ContentBasedNetwork, count)
    assert uni_delivered == cbn_delivered, "substrates must deliver identically"
    print(f"{count:>6}  {uni_bytes:>10.0f}  {cbn_bytes:>10.0f}  "
          f"{uni_bytes / cbn_bytes:.2f}x")

print("\nok: identical deliveries, growing unicast overhead — the paper's "
      "motivation, measured")
