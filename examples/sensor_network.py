"""A SensorScope-style deployment: 63 streams, hundreds of queries.

The scenario of the paper's evaluation (section 5): environmental
sensor streams on a wide-area power-law overlay, users across the
network submitting zipf-distributed continuous queries.  The example
shows what the query layer achieves at scale — grouping ratio, benefit
ratio — and then replays a short synthetic measurement feed end to end.

Run:  python examples/sensor_network.py
"""

import random

from repro.overlay import DisseminationTree, barabasi_albert
from repro.system import CosmosSystem
from repro.workload import (
    QueryWorkload,
    SensorScopeReplayer,
    WorkloadConfig,
    sensorscope_catalog,
)

rng = random.Random(42)

# 63 synthetic SensorScope stations on a 300-node power-law overlay.
catalog = sensorscope_catalog(rng=random.Random(42))
topology = barabasi_albert(300, 2, rng)
tree = DisseminationTree.minimum_spanning(topology)
system = CosmosSystem(tree, processor_nodes=[0, 1, 2, 3], topology=topology)
for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
    system.add_source(schema, node=10 + index)

# 300 zipf(1.5)-distributed queries from random users.
workload = QueryWorkload(
    catalog, WorkloadConfig(skew=1.5, join_fraction=0.0, seed=7)
)
handles = [
    system.submit(query, user_node=rng.randrange(300))
    for query in workload.generate(300)
]

summary = system.grouping_summary()
print(f"submitted {summary['queries']:.0f} queries "
      f"-> {summary['groups']:.0f} representative queries on the SPEs")
print(f"grouping ratio: {summary['grouping_ratio']:.2f}  "
      f"estimated benefit ratio: {summary['benefit_ratio']:.2f}")

# Replay 30 seconds of synthetic measurements through the whole system.
feed = SensorScopeReplayer(catalog, random.Random(9)).feed(30.0)
deliveries = system.replay(feed)
nonempty = sum(1 for h in handles if h.results)
print(f"replayed {len(feed)} measurements: {deliveries} deliveries "
      f"to {nonempty} of {len(handles)} queries")
print(f"delay-weighted communication cost: {system.data_cost():.0f}")

assert summary["groups"] < summary["queries"]
assert deliveries > 0
