"""The auction stream monitoring application of Table 1, end to end.

Reconstructs the paper's running example on the exact Figure 3 overlay:
the SPE sits at n1, users at n3 and n4 submit q1 ("auctions closed
within three hours") and q2 ("items and buyers closed within five
hours").  The query layer composes the representative q3 and the
re-tightening profiles p1/p2; the run compares the traffic on the
shared n1-n2 link against the non-shared baseline (Figure 3(a) vs (b)).

Run:  python examples/auction_monitoring.py
"""

import random

from repro.cql import parse_query, to_cql
from repro.core import merge_queries, result_profile
from repro.experiments.fig3 import run_fig3
from repro.workload.auction import TABLE1_Q1, TABLE1_Q2, auction_catalog

catalog = auction_catalog()
q1 = parse_query(TABLE1_Q1, name="q1")
q2 = parse_query(TABLE1_Q2, name="q2")

print("q1:", TABLE1_Q1)
print("q2:", TABLE1_Q2)

# The query layer composes the representative (the paper's q3) ...
q3 = merge_queries(q1, q2, catalog, name="q3")
print("\ncomposed representative q3:")
print(" ", to_cql(q3))

# ... and the profiles that split its result stream (p1 and p2).
p1 = result_profile(q1, q3, catalog, "s3", subscriber="n3")
p2 = result_profile(q2, q3, catalog, "s3", subscriber="n4")
for name, profile in (("p1", p1), ("p2", p2)):
    projection = sorted(profile.projection_for("s3"))
    condition = profile.filters[0].condition
    print(f"{name}: P = {projection}")
    print(f"    F = [{condition}]")

# Run both delivery modes of Figure 3 on one auction feed and compare.
result = run_fig3(n_items=400, seed=11)
print("\nFigure 3 measurement (400 auctions):")
print(f"  q1 delivered {result.q1_results} results, q2 {result.q2_results}")
print(f"  results identical across modes: {result.results_identical}")
print(
    f"  n1-n2 link: {result.shared_link_bytes_nonshare:.0f} B unshared -> "
    f"{result.shared_link_bytes_share:.0f} B shared "
    f"({result.shared_link_saving:.1%} saved)"
)

assert result.results_identical
assert result.shared_link_saving > 0
