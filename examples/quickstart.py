"""Quickstart: a five-node COSMOS deployment in ~40 lines.

Builds the smallest interesting system — one source, one processor, two
users with overlapping continuous queries — and shows the paper's core
mechanics at work: the queries are merged into one representative, the
SPE runs once, and the content-based network splits the result stream
back into per-user results.

Run:  python examples/quickstart.py
"""

from repro import Attribute, CosmosSystem, DisseminationTree, StreamSchema

# A line overlay: source -- broker -- processor -- broker -- users.
edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
tree = DisseminationTree(edges, {edge: 1.0 for edge in edges})
system = CosmosSystem(tree, processor_nodes=[2])

# One temperature stream published at node 0.
system.add_source(
    StreamSchema(
        "Temp",
        [
            Attribute("station", "int", 0, 9),
            Attribute("celsius", "float", -20.0, 40.0),
        ],
        rate=1.0,
    ),
    node=0,
)

# Two users with overlapping interests submit CQL queries.
hot = system.submit(
    "SELECT T.station, T.celsius FROM Temp [Range 1 Hour] T WHERE T.celsius >= 30",
    user_node=4,
    name="hot",
)
warm = system.submit(
    "SELECT T.station, T.celsius FROM Temp [Range 1 Hour] T WHERE T.celsius >= 20",
    user_node=3,
    name="warm",
)

summary = system.grouping_summary()
print(f"queries: {summary['queries']:.0f}, groups: {summary['groups']:.0f} "
      f"(the processor runs ONE representative query)")

# Publish a few readings and watch the split.
for ts, celsius in enumerate([15.0, 25.0, 31.0, 35.0, 18.0]):
    system.publish("Temp", {"station": 1, "celsius": celsius}, float(ts))

print(f"hot  user received: {[r.payload['Temp.celsius'] for r in hot.results]}")
print(f"warm user received: {[r.payload['Temp.celsius'] for r in warm.results]}")
print(f"delay-weighted bytes moved: {system.data_cost():.0f}")

assert [r.payload["Temp.celsius"] for r in hot.results] == [31.0, 35.0]
assert [r.payload["Temp.celsius"] for r in warm.results] == [25.0, 31.0, 35.0]
print("ok: the CBN split reproduced each user's own query exactly")
