"""Live sources on the discrete-event simulator.

Instead of replaying a pre-materialised feed, this example drives
COSMOS with *live* sources: a periodic weather station and a bursty
(Poisson) vibration sensor, scheduled on the discrete-event simulator.
Two dashboards watch overlapping slices of the data; COSMOS merges
them into one representative query per stream.

Run:  python examples/live_simulation.py
"""

import math
import random

from repro import Attribute, CosmosSystem, DisseminationTree, StreamSchema
from repro.system.feeds import LiveFeedRunner, ScheduledSource

edges = [(0, 1), (1, 2), (2, 3), (2, 4), (1, 5)]
tree = DisseminationTree(edges, {edge: 1.0 for edge in edges})
system = CosmosSystem(tree, processor_nodes=[1])

system.add_source(
    StreamSchema(
        "Weather",
        [Attribute("celsius", "float", -20, 40), Attribute("humidity", "float", 0, 100)],
        rate=0.2,
    ),
    node=0,
)
system.add_source(
    StreamSchema("Vibration", [Attribute("magnitude", "float", 0, 10)], rate=1.0),
    node=5,
)

freeze_watch = system.submit(
    "SELECT W.celsius FROM Weather [Range 10 Minute] W WHERE W.celsius <= 0",
    user_node=3,
    name="freeze-watch",
)
climate_log = system.submit(
    "SELECT W.celsius, W.humidity FROM Weather [Range 10 Minute] W "
    "WHERE W.celsius <= 15",
    user_node=4,
    name="climate-log",
)
shock_alarm = system.submit(
    "SELECT V.magnitude FROM Vibration [Range 1 Minute] V WHERE V.magnitude >= 7",
    user_node=3,
    name="shock-alarm",
)

rng = random.Random(11)


def weather(now):
    # A cooling front passes mid-simulation.
    celsius = 12.0 - now / 40.0 + rng.gauss(0.0, 1.0)
    return {"celsius": celsius, "humidity": 60.0 + rng.gauss(0, 5)}


def vibration(now):
    magnitude = abs(rng.gauss(2.0, 3.0))
    return {"magnitude": min(magnitude, 10.0)}


runner = LiveFeedRunner(
    system,
    [
        ScheduledSource("Weather", 5.0, weather),
        ScheduledSource("Vibration", 2.0, vibration, poisson=True),
    ],
    rng=random.Random(7),
)
stats = runner.run(600.0)

summary = system.grouping_summary()
print(f"simulated 600 s: {stats['published']} tuples published, "
      f"{stats['delivered']} results delivered")
print(f"{summary['queries']:.0f} queries -> {summary['groups']:.0f} groups "
      f"(the two Weather dashboards share one representative)")
print(f"freeze-watch: {freeze_watch.result_count} readings at or below 0°C")
print(f"climate-log:  {climate_log.result_count} readings at or below 15°C")
print(f"shock-alarm:  {shock_alarm.result_count} strong vibration events")

assert summary["groups"] == 2
assert climate_log.result_count >= freeze_watch.result_count
assert all(
    r.payload["Weather.celsius"] <= 0 for r in freeze_watch.results
)
print("ok")
