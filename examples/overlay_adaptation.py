"""Self-tuning behaviour: overlay reorganisation and failure recovery.

Demonstrates the two "self-tuning" mechanisms of COSMOS beyond query
merging:

1. the overlay network optimizer (section 3.2) locally reorganises a
   dissemination tree against the observed traffic, and
2. the data-layer fault tolerance repairs the tree around a failed
   broker while queries keep producing results.

Run:  python examples/overlay_adaptation.py
"""

import random

from repro.overlay import DisseminationTree, OverlayOptimizer, barabasi_albert
from repro.system import CosmosSystem
from repro.system.fault import fail_broker
from repro.workload.auction import (
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q2,
)

rng = random.Random(5)

# --- 1. adaptive tree reorganisation ---------------------------------------
topology = barabasi_albert(80, 3, rng)
tree = DisseminationTree.minimum_spanning(topology)
demands = [
    (rng.randrange(80), rng.randrange(80), rng.uniform(1.0, 10.0))
    for __ in range(30)
]
optimizer = OverlayOptimizer(topology)
improved, report = optimizer.optimize(tree, demands, max_rounds=8)
print("overlay optimizer:")
print(f"  initial delay-weighted cost: {report.initial_cost:.0f}")
print(f"  after {report.swaps} local edge swaps: {report.final_cost:.0f} "
      f"({report.improvement:.1%} better)")
assert report.final_cost <= report.initial_cost

# --- 2. broker failure and repair -------------------------------------------
topo2 = barabasi_albert(30, 2, random.Random(7))
tree2 = DisseminationTree.minimum_spanning(topo2)
system = CosmosSystem(tree2, processor_nodes=[0], topology=topo2)
system.add_source(OPEN_AUCTION_SCHEMA, 1)
system.add_source(CLOSED_AUCTION_SCHEMA, 1)
handle = system.submit(TABLE1_Q2, user_node=2, name="q2")

def auction(item, open_ts, close_ts):
    system.publish(
        "OpenAuction",
        {"itemID": item, "sellerID": 1, "start_price": 9.0, "timestamp": open_ts},
        open_ts,
    )
    system.publish(
        "ClosedAuction",
        {"itemID": item, "buyerID": 7, "timestamp": close_ts},
        close_ts,
    )

auction(1, 0.0, 3600.0)
print(f"\nbefore failure: q2 has {handle.result_count} result(s)")

victim = next(
    n for n in system.tree.nodes
    if n not in (0, 1, 2) and system.tree.degree(n) > 1
)
fail_broker(system, victim)
print(f"broker {victim} failed; tree repaired "
      f"({len(system.tree.nodes)} nodes remain)")

auction(2, 7200.0, 10800.0)
print(f"after repair:   q2 has {handle.result_count} result(s)")
assert handle.result_count == 2
print("ok: delivery survived the broker failure")
