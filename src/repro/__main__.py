"""``python -m repro`` — the command-line interface."""

from __future__ import annotations

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
