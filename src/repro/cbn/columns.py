"""Columnar batch evaluation for the CBN data plane.

The fast path of PR 2 evaluates filters datagram-at-a-time: every hop
re-enters every compiled entry with a single payload dict.  At the
10k-node / 100k-subscription scale the ROADMAP targets, the per-call
overhead (attribute lookups, method dispatch, short-lived dicts)
dominates.  This module supplies the batch primitives the routing layer
uses to evaluate each bucket's predicate plan **once per batch**:

* :class:`ColumnBatch` decomposes a same-stream run of datagrams into
  per-attribute *columns* (built lazily, one list per referenced term,
  with :data:`MISSING` marking absent attributes);
* :func:`compile_condition` turns a
  :class:`~repro.cql.predicates.Conjunction` into a closure mapping a
  batch to a boolean *match mask*, specialised per constraint kind so
  the inner loop is a plain list comprehension over a column;
* :func:`stream_shard` hashes stream names into a fixed shard space so
  routing caches can be invalidated per touched shard instead of
  wholesale (``zlib.crc32`` keeps the mapping stable across processes —
  builtin ``hash`` of strings is randomised per interpreter).

Everything here is observationally equivalent to per-datagram
``Conjunction.evaluate``: the property suite in
``tests/properties/test_batch_columnar.py`` holds the columnar path
byte-identical to the naive scan.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Sequence

from repro.cbn.datagram import Datagram
from repro.cql.predicates import Conjunction, Interval

#: Column sentinel for "attribute absent from this payload".  Distinct
#: from every payload value (including ``None``) by identity.
MISSING: object = object()

#: Number of stream shards for cache invalidation.  Small enough that a
#: broad mutation touches few buckets, large enough that unrelated
#: streams rarely collide.
N_STREAM_SHARDS: int = 64


def stream_shard(stream: str, n_shards: int = N_STREAM_SHARDS) -> int:
    """Deterministic shard index of a stream name.

    Uses ``zlib.crc32`` so the mapping is stable across interpreter
    runs (process-seeded ``hash(str)`` would make cache behaviour — and
    thus any bug it hides — unreproducible).
    """
    return zlib.crc32(stream.encode("utf-8")) % n_shards


class ColumnBatch:
    """A same-stream run of datagrams decomposed into attribute columns.

    Columns are materialised lazily: the first evaluator to reference a
    term pays one pass over the batch, later evaluators for the same
    term (other subscriptions in the bucket, other interfaces of the
    broker) reuse the list.  Absent attributes become :data:`MISSING`
    so evaluators can mirror ``Conjunction.evaluate``'s missing-term
    semantics without per-row ``in`` checks on the payload dict.
    """

    __slots__ = ("stream", "datagrams", "n", "_columns")

    def __init__(self, datagrams: Sequence[Datagram], stream: str) -> None:
        self.stream = stream
        self.datagrams = datagrams
        self.n = len(datagrams)
        self._columns: Dict[str, List[object]] = {}

    def column(self, term: str) -> List[object]:
        """The values of ``term`` across the batch (MISSING when absent)."""
        col = self._columns.get(term)
        if col is None:
            missing = MISSING
            col = [d.payload.get(term, missing) for d in self.datagrams]
            self._columns[term] = col
        return col


#: A compiled condition: batch -> per-datagram match mask.
Mask = List[bool]
BatchEvaluator = Callable[[ColumnBatch], Mask]


def _interval_check(interval: Interval) -> Callable[[object], bool]:
    """A per-value membership test equal to ``interval.contains_value``.

    The bound comparisons and the string/number type guard are folded
    into one closure so the column loop does no attribute access.
    """
    lo, hi = interval.lo, interval.hi
    lo_strict, hi_strict = interval.lo_strict, interval.hi_strict
    if lo is None and hi is None:
        return lambda value: True
    # An interval never mixes string and numeric bounds (__post_init__),
    # so one flag decides the type guard for both ends.
    stringly = isinstance(lo if lo is not None else hi, str)
    if lo is not None and hi is not None:
        if lo_strict and hi_strict:
            inside = lambda value: lo < value < hi  # noqa: E731
        elif lo_strict:
            inside = lambda value: lo < value <= hi  # noqa: E731
        elif hi_strict:
            inside = lambda value: lo <= value < hi  # noqa: E731
        else:
            inside = lambda value: lo <= value <= hi  # noqa: E731
    elif lo is not None:
        if lo_strict:
            inside = lambda value: value > lo  # noqa: E731
        else:
            inside = lambda value: value >= lo  # noqa: E731
    else:
        if hi_strict:
            inside = lambda value: value < hi  # noqa: E731
        else:
            inside = lambda value: value <= hi  # noqa: E731
    if stringly:
        return lambda value: isinstance(value, str) and inside(value)
    return lambda value: not isinstance(value, str) and inside(value)


def compile_condition(condition: Conjunction) -> BatchEvaluator:
    """Compile a conjunction into a vectorized batch evaluator.

    The returned closure produces, for a :class:`ColumnBatch`, the mask
    ``[condition.evaluate(d.payload) for d in batch.datagrams]`` —
    but via one list pass per constrained term.  Conjunctions with
    join links or difference constraints need two terms per row and
    fall back to the scalar evaluator (they never occur in single-
    stream CBN filters, which the routing layer compiles per stream).
    """
    if condition.is_true:
        return lambda batch: [True] * batch.n
    if condition.links or condition.diffs:
        evaluate = condition.evaluate

        def general(batch: ColumnBatch) -> Mask:
            return [evaluate(d.payload) for d in batch.datagrams]

        return general
    checks: List[tuple] = []
    for term, interval in sorted(condition.intervals.items()):
        checks.append((term, _interval_check(interval)))
    for term, vals in sorted(condition.excluded.items()):
        checks.append((term, lambda value, _vals=vals: value not in _vals))
    missing = MISSING
    if len(checks) == 1:
        term, check = checks[0]

        def single(batch: ColumnBatch) -> Mask:
            return [
                value is not missing and check(value)
                for value in batch.column(term)
            ]

        return single

    def conjoined(batch: ColumnBatch) -> Mask:
        mask: Mask = None  # type: ignore[assignment]
        for term, check in checks:
            column = batch.column(term)
            if mask is None:
                mask = [
                    value is not missing and check(value) for value in column
                ]
            else:
                mask = [
                    hit and value is not missing and check(value)
                    for hit, value in zip(mask, column)
                ]
        return mask

    return conjoined
