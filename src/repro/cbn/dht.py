"""A consistent-hashing ring for distributed schema storage.

Section 3: *"Otherwise, we use a DHT architecture to store the schema
information while using the unique stream name as the hashing key."*

The ring hashes node identifiers (with virtual replicas for balance)
and keys onto a 64-bit circle; a key is owned by the first node
clockwise from its hash.  ``replicas`` > 1 stores each key on that many
distinct successors for availability.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Set, Tuple, TypeVar

NodeId = int

T = TypeVar("T")


class DHTError(Exception):
    """Raised for operations on an empty ring or unknown nodes."""


def _hash64(value: str) -> int:
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Consistent hashing of string keys onto integer node ids."""

    def __init__(self, nodes: Iterable[NodeId] = (), vnodes: int = 16) -> None:
        if vnodes < 1:
            raise DHTError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._ring: List[Tuple[int, NodeId]] = []
        self._nodes: Set[NodeId] = set()
        for node in nodes:
            self.add_node(node)

    # -- membership ------------------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._vnodes):
            point = _hash64(f"node:{node}:{replica}")
            bisect.insort(self._ring, (point, node))

    def remove_node(self, node: NodeId) -> None:
        if node not in self._nodes:
            raise DHTError(f"node {node} is not in the ring")
        self._nodes.discard(node)
        self._ring = [(p, n) for p, n in self._ring if n != node]

    @property
    def nodes(self) -> Set[NodeId]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- lookup -------------------------------------------------------------------

    def owner(self, key: str) -> NodeId:
        """The primary node responsible for ``key``."""
        return self.owners(key, 1)[0]

    def owners(self, key: str, count: int) -> List[NodeId]:
        """The first ``count`` distinct nodes clockwise from the key's hash."""
        if not self._ring:
            raise DHTError("ring is empty")
        count = min(count, len(self._nodes))
        point = _hash64(f"key:{key}")
        index = bisect.bisect_right(self._ring, (point, 2**63))
        found: List[NodeId] = []
        seen: Set[NodeId] = set()
        for offset in range(len(self._ring)):
            __, node = self._ring[(index + offset) % len(self._ring)]
            if node not in seen:
                seen.add(node)
                found.append(node)
                if len(found) == count:
                    break
        return found


class DHTStore(Generic[T]):
    """A replicated key-value store layered on a hash ring.

    Values live on the key's owner nodes; node failures lose only the
    replicas stored there (re-registration restores them), mirroring
    how a real DHT would behave without implementing churn transfer.
    """

    def __init__(self, ring: ConsistentHashRing, replicas: int = 1) -> None:
        if replicas < 1:
            raise DHTError(f"replicas must be >= 1, got {replicas}")
        self._ring = ring
        self._replicas = replicas
        self._storage: Dict[NodeId, Dict[str, T]] = {}

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    def put(self, key: str, value: T) -> List[NodeId]:
        """Store ``value``; returns the nodes it was placed on."""
        owners = self._ring.owners(key, self._replicas)
        for node in owners:
            self._storage.setdefault(node, {})[key] = value
        return owners

    def get(self, key: str) -> Optional[T]:
        """Fetch from the first owner that still holds the key."""
        for node in self._ring.owners(key, self._replicas):
            value = self._storage.get(node, {}).get(key)
            if value is not None:
                return value
        return None

    def delete(self, key: str) -> None:
        for node in self._ring.owners(key, self._replicas):
            self._storage.get(node, {}).pop(key, None)

    def fail_node(self, node: NodeId) -> None:
        """Drop a node and everything it stored."""
        self._storage.pop(node, None)
        self._ring.remove_node(node)

    def keys_on(self, node: NodeId) -> Set[str]:
        return set(self._storage.get(node, {}))
