"""Distribution of stream schema information.

Section 3: *"Each stream is assigned a unique name in COSMOS. In our
current system, if the number of streams is small, the schema
information of the streams will be flooded to every node upon its
arrival. Otherwise, we use a DHT architecture to store the schema
information while using the unique stream name as the hashing key."*

Both strategies share the :class:`SchemaRegistry` interface and account
for the control traffic they generate on a dissemination tree, so the
flooding-vs-DHT trade-off can be measured (see
``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cbn.dht import ConsistentHashRing, DHTStore
from repro.cql.schema import Catalog, SchemaError, StreamSchema
from repro.overlay.metrics import LinkStats
from repro.overlay.tree import DisseminationTree
from repro.overlay.topology import NodeId

#: Approximate wire size of one schema advertisement message.
_SCHEMA_MESSAGE_BYTES = 64.0


class SchemaRegistry:
    """Interface: register a schema at a node, look one up from a node."""

    def register(self, schema: StreamSchema, node: NodeId) -> None:
        raise NotImplementedError

    def lookup(self, name: str, node: NodeId) -> Optional[StreamSchema]:
        raise NotImplementedError

    @property
    def stats(self) -> LinkStats:
        raise NotImplementedError


class FloodedSchemaRegistry(SchemaRegistry):
    """Every schema advertisement floods the dissemination tree.

    Lookups are then free (every node holds a full catalog), but each
    registration costs one message per tree link.
    """

    def __init__(self, tree: DisseminationTree) -> None:
        self._tree = tree
        self._catalogs: Dict[NodeId, Catalog] = {
            node: Catalog() for node in tree.nodes
        }
        self._stats = LinkStats()

    def register(self, schema: StreamSchema, node: NodeId) -> None:
        for u, v in self._tree.edges:
            self._stats.record(u, v, _SCHEMA_MESSAGE_BYTES)
        for catalog in self._catalogs.values():
            catalog.register(schema)

    def lookup(self, name: str, node: NodeId) -> Optional[StreamSchema]:
        catalog = self._catalogs[node]
        if name in catalog:
            return catalog.get(name)
        return None

    def catalog_at(self, node: NodeId) -> Catalog:
        return self._catalogs[node]

    @property
    def stats(self) -> LinkStats:
        return self._stats


class DHTSchemaRegistry(SchemaRegistry):
    """Schemas stored in a DHT keyed by stream name.

    Registration routes one message from the registering node to each
    replica owner along the tree; every lookup routes a request to the
    primary owner and the response back.  Nodes cache nothing (worst
    case for lookup traffic, best case for registration traffic), which
    is the honest baseline for the flooding comparison.
    """

    def __init__(
        self,
        tree: DisseminationTree,
        replicas: int = 1,
        vnodes: int = 16,
    ) -> None:
        self._tree = tree
        ring = ConsistentHashRing(tree.nodes, vnodes=vnodes)
        self._store: DHTStore[StreamSchema] = DHTStore(ring, replicas=replicas)
        self._stats = LinkStats()

    def _charge_path(self, source: NodeId, target: NodeId, size: float) -> None:
        if source == target:
            return
        for u, v in self._tree.path_edges(source, target):
            self._stats.record(u, v, size)

    def register(self, schema: StreamSchema, node: NodeId) -> None:
        owners = self._store.put(schema.name, schema)
        for owner in owners:
            self._charge_path(node, owner, _SCHEMA_MESSAGE_BYTES)

    def lookup(self, name: str, node: NodeId) -> Optional[StreamSchema]:
        schema = self._store.get(name)
        owner = self._store.ring.owners(name, 1)[0]
        self._charge_path(node, owner, _SCHEMA_MESSAGE_BYTES / 4)
        if schema is not None:
            self._charge_path(owner, node, _SCHEMA_MESSAGE_BYTES)
        return schema

    @property
    def stats(self) -> LinkStats:
        return self._stats
