"""CBN filters and data-interest profiles (section 3.1).

A *filter* is defined on one stream and is a conjunction of constraints
on that stream's attributes.  A *profile* is the triple ⟨S, P, F⟩:

* ``S`` — the set of requested stream names;
* ``P`` — one projection attribute set per stream in S (the COSMOS
  extension enabling early projection);
* ``F`` — a set of filters; a datagram is covered by the profile when
  it is covered by *any* filter (disjunction of conjunctions).

Coverage (:meth:`Profile.covers`) and subsumption
(:meth:`Profile.subsumes`, built on the sound implication test of the
predicate algebra) are what brokers use to route datagrams and to
aggregate routing-table entries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cbn.datagram import Datagram
from repro.cql.predicates import Conjunction

if TYPE_CHECKING:
    from repro.cbn.columns import ColumnBatch

#: Sentinel projection meaning "all attributes of the stream".
ALL_ATTRIBUTES: FrozenSet[str] = frozenset({"*"})


class ProfileError(Exception):
    """Raised for ill-formed profiles (filters on unrequested streams)."""


@dataclass(frozen=True)
class Filter:
    """A datagram filter on a single stream.

    ``condition`` is a conjunction over the stream's attribute names.
    The trivially-true condition makes the filter match every datagram
    of the stream.
    """

    stream: str
    condition: Conjunction = field(default_factory=Conjunction.true)

    def covers(self, datagram: Datagram) -> bool:
        """Is ``datagram`` from this filter's stream and satisfying it?"""
        if datagram.stream != self.stream:
            return False
        return self.condition.evaluate(datagram.payload)

    def subsumes(self, other: "Filter") -> bool:
        """Does every datagram covered by ``other`` pass this filter?

        Sound but not complete, inheriting the implication test of
        :class:`~repro.cql.predicates.Conjunction`.
        """
        if self.stream != other.stream:
            return False
        return other.condition.implies(self.condition)

    def __str__(self) -> str:
        return f"{self.stream}: {self.condition}"


class Profile:
    """A data-interest profile ⟨S, P, F⟩.

    Parameters
    ----------
    projections:
        Mapping stream name -> attribute-name set.  Streams present here
        form ``S``.  Use :data:`ALL_ATTRIBUTES` for "every attribute".
    filters:
        The disjunction of per-stream filters ``F``.  A stream in ``S``
        with no filter at all is requested unconditionally (equivalent
        to one trivially-true filter on it).
    subscriber:
        Optional identity of the subscribing party; used by the routing
        layer to address deliveries.
    """

    def __init__(
        self,
        projections: Mapping[str, Iterable[str]],
        filters: Iterable[Filter] = (),
        subscriber: Optional[str] = None,
    ) -> None:
        self._projections: Dict[str, FrozenSet[str]] = {
            stream: frozenset(attrs) for stream, attrs in projections.items()
        }
        self._streams: FrozenSet[str] = frozenset(self._projections)
        self._filters: Tuple[Filter, ...] = tuple(filters)
        # Per-stream compiled column evaluators for coverage_mask;
        # derived from the immutable filters, so never invalidated.
        self._mask_evaluators: Dict[str, Tuple[object, ...]] = {}
        for flt in self._filters:
            if flt.stream not in self._projections:
                raise ProfileError(
                    f"filter on stream {flt.stream!r} which is not in S = "
                    f"{sorted(self._projections)}"
                )
        self.subscriber = subscriber

    # -- the triple ------------------------------------------------------------------

    @property
    def streams(self) -> FrozenSet[str]:
        """``S``: the set of requested stream names."""
        return self._streams

    @property
    def projections(self) -> Dict[str, FrozenSet[str]]:
        """``P``: per-stream projection attribute sets."""
        return dict(self._projections)

    @property
    def filters(self) -> Tuple[Filter, ...]:
        """``F``: the disjunction of per-stream filters."""
        return self._filters

    def projection_for(self, stream: str) -> FrozenSet[str]:
        try:
            return self._projections[stream]
        except KeyError:
            raise ProfileError(f"stream {stream!r} is not in this profile") from None

    def filters_for(self, stream: str) -> List[Filter]:
        return [flt for flt in self._filters if flt.stream == stream]

    def wants_all_attributes(self, stream: str) -> bool:
        return self.projection_for(stream) == ALL_ATTRIBUTES

    # -- coverage ---------------------------------------------------------------------

    def covers(self, datagram: Datagram) -> bool:
        """Is the datagram covered by any filter of this profile?

        A stream in ``S`` with no filters is requested unconditionally.
        """
        if datagram.stream not in self._projections:
            return False
        stream_filters = self.filters_for(datagram.stream)
        if not stream_filters:
            return True
        return any(flt.covers(datagram) for flt in stream_filters)

    def coverage_mask(self, batch: "ColumnBatch") -> List[bool]:
        """Vectorized :meth:`covers` over a same-stream column batch.

        Evaluates this profile's filters for ``batch.stream`` once as
        compiled column closures (cached per profile) instead of walking
        the predicate tree per datagram; masks of multiple filters OR
        together, matching the disjunction semantics of :meth:`covers`.
        """
        if batch.stream not in self._projections:
            return [False] * batch.n
        cached = self._mask_evaluators.get(batch.stream)
        if cached is None:
            from repro.cbn.columns import compile_condition

            cached = tuple(
                compile_condition(flt.condition)
                for flt in self.filters_for(batch.stream)
            )
            self._mask_evaluators[batch.stream] = cached
        if not cached:
            return [True] * batch.n
        mask = cached[0](batch)
        for evaluate in cached[1:]:
            if all(mask):
                break
            other = evaluate(batch)
            mask = [a or b for a, b in zip(mask, other)]
        return mask

    def apply(self, datagram: Datagram) -> Optional[Datagram]:
        """Coverage check plus projection: the receiver-side view.

        Returns the projected datagram, or ``None`` when not covered.
        """
        if not self.covers(datagram):
            return None
        projection = self.projection_for(datagram.stream)
        if projection == ALL_ATTRIBUTES:
            return datagram
        return datagram.project(projection)

    # -- algebra -------------------------------------------------------------------------

    def carried_attributes(self, stream: str) -> FrozenSet[str]:
        """Attributes a broker forwards when this profile matches.

        Early projection keeps the projection set *plus* the attributes
        this profile's own filters evaluate (they must survive for
        re-filtering at later hops); see
        :meth:`repro.cbn.routing.RoutingTable.decide`.  The routing
        layer's compiled per-stream matchers precompute this set.
        """
        projection = self.projection_for(stream)
        if projection == ALL_ATTRIBUTES:
            return ALL_ATTRIBUTES
        carried = set(projection)
        for flt in self.filters_for(stream):
            carried |= flt.condition.referenced_terms()
        return frozenset(carried)

    #: Backwards-compatible alias (pre-fast-path name).
    _carried_attributes = carried_attributes

    def subsumes(self, other: "Profile") -> bool:
        """Is ``other`` redundant routing state next to this profile?

        Per stream of ``other``: the stream must be requested here,
        every filter of ``other`` (or its unconditional request) must be
        subsumed by some filter here, and — because brokers project
        early — the attributes *carried* when this profile matches must
        cover everything ``other`` needs downstream (its projection and
        the attributes its own filters evaluate).  Sound but not
        complete.
        """
        for stream in other.streams:
            if stream not in self._projections:
                return False
            mine = self.carried_attributes(stream)
            theirs = other.carried_attributes(stream)
            if mine != ALL_ATTRIBUTES:
                if theirs == ALL_ATTRIBUTES or not theirs <= mine:
                    return False
            my_filters = self.filters_for(stream)
            their_filters = other.filters_for(stream)
            if my_filters:
                if not their_filters:
                    return False  # they want everything, we filter
                for their_filter in their_filters:
                    if not any(f.subsumes(their_filter) for f in my_filters):
                        return False
        return True

    def merge(self, other: "Profile") -> "Profile":
        """The union profile: requests everything either operand requests.

        Used by brokers to aggregate the interests reachable through one
        overlay link.  Projections union per stream (with
        :data:`ALL_ATTRIBUTES` absorbing); filters concatenate, except
        that an unconditional stream request absorbs that stream's
        filters.
        """
        projections: Dict[str, FrozenSet[str]] = dict(self._projections)
        for stream, attrs in other._projections.items():
            if stream in projections:
                if projections[stream] == ALL_ATTRIBUTES or attrs == ALL_ATTRIBUTES:
                    projections[stream] = ALL_ATTRIBUTES
                else:
                    projections[stream] = projections[stream] | attrs
            else:
                projections[stream] = attrs
        unconditional: Set[str] = set()
        for profile in (self, other):
            for stream in profile.streams:
                if not profile.filters_for(stream):
                    unconditional.add(stream)
        filters = [
            flt
            for flt in itertools.chain(self._filters, other._filters)
            if flt.stream not in unconditional
        ]
        return Profile(projections, _dedupe_filters(filters))

    def restricted_to(self, stream: str) -> "Profile":
        """The sub-profile concerning a single stream."""
        return Profile(
            {stream: self.projection_for(stream)},
            self.filters_for(stream),
            subscriber=self.subscriber,
        )

    def size_estimate(self) -> int:
        """Rough wire size of the profile itself (subscription traffic)."""
        size = 0
        for stream, attrs in self._projections.items():
            size += len(stream) + sum(len(a) for a in attrs)
        for flt in self._filters:
            size += len(flt.stream) + 8 * len(flt.condition.atoms())
        return size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return (
            self._projections == other._projections
            and set(self._filters) == set(other._filters)
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._projections.items()),
                frozenset(self._filters),
            )
        )

    def __repr__(self) -> str:
        streams = ", ".join(sorted(self.streams))
        return f"Profile(S={{{streams}}}, |F|={len(self._filters)})"


def _dedupe_filters(filters: Iterable[Filter]) -> List[Filter]:
    seen: Set[Filter] = set()
    out: List[Filter] = []
    for flt in filters:
        if flt not in seen:
            seen.add(flt)
            out.append(flt)
    return out
