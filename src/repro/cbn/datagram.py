"""Stream-tagged datagrams.

A classic CBN datagram is a set of attribute/value pairs.  COSMOS
datagrams additionally carry the unique name of the stream they belong
to (section 3: "we have to first enhance the CBN to be aware of
streaming relations") and a timestamp drawn from the application time
domain T (section 4, Definition 1).

Datagrams travelling a *reliable sequenced uplink*
(:mod:`repro.system.reliability`) additionally carry a per-(stream,
source) monotone sequence number in ``seq``; it is transport metadata
(gap detection, duplicate suppression), preserved through projection
and relabelling, and ``None`` everywhere reliability is not in play.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

Value = Union[int, float, str]

#: Per-type wire widths used when no schema information is available.
_FALLBACK_WIDTHS = {int: 4, float: 8, str: 16, bool: 1}


@dataclass(frozen=True)
class Datagram:
    """One immutable datagram of a named stream.

    ``payload`` maps attribute names to values; ``timestamp`` is the
    application-time instant of the tuple the datagram carries.
    """

    stream: str
    payload: Mapping[str, Value]
    timestamp: float = 0.0
    seq: Optional[int] = None

    def __init__(
        self,
        stream: str,
        payload: Mapping[str, Value],
        timestamp: float = 0.0,
        seq: Optional[int] = None,
    ) -> None:
        object.__setattr__(self, "stream", stream)
        object.__setattr__(self, "payload", dict(payload))
        object.__setattr__(self, "timestamp", float(timestamp))
        object.__setattr__(self, "seq", None if seq is None else int(seq))

    # -- accessors ---------------------------------------------------------------

    @property
    def attributes(self) -> FrozenSet[str]:
        return frozenset(self.payload)

    def value(self, attribute: str) -> Value:
        return self.payload[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.payload

    # -- transformation -----------------------------------------------------------

    def project(self, attributes: Iterable[str]) -> "Datagram":
        """A copy keeping only ``attributes`` (the CBN's early projection).

        Attributes that the datagram does not carry are silently
        skipped, matching the forgiving semantics of profile projection
        sets aggregated from several subscriptions.
        """
        keep = set(attributes)
        payload = {k: v for k, v in self.payload.items() if k in keep}
        return Datagram(self.stream, payload, self.timestamp, self.seq)

    def relabel(self, stream: str) -> "Datagram":
        """A copy tagged as belonging to another stream (result streams)."""
        return Datagram(stream, self.payload, self.timestamp, self.seq)

    # -- size accounting -------------------------------------------------------------

    def size_bytes(self, widths: Optional[Mapping[str, int]] = None) -> float:
        """Approximate wire size of the datagram payload.

        ``widths`` (attribute name -> bytes) comes from the stream
        schema when available; otherwise Python-type fallbacks apply.
        """
        total = 0.0
        for name, value in self.payload.items():
            if widths is not None and name in widths:
                total += widths[name]
            else:
                total += _FALLBACK_WIDTHS.get(type(value), 16)
        if self.seq is not None:
            total += 8  # the sequence number travels as an i64
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datagram):
            return NotImplemented
        return (
            self.stream == other.stream
            and self.timestamp == other.timestamp
            and self.seq == other.seq
            and dict(self.payload) == dict(other.payload)
        )

    def __hash__(self) -> int:
        return hash(
            (self.stream, self.timestamp, self.seq,
             frozenset(self.payload.items()))
        )

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.payload.items()))
        tag = "" if self.seq is None else f"#{self.seq}"
        return f"Datagram({self.stream}{tag}@{self.timestamp:g}: {items})"
