"""The content-based network: advertisement, subscription, publication.

This is the data layer of COSMOS.  Brokers sit on a dissemination tree;
sources *advertise* the streams they publish, receivers *subscribe*
data-interest profiles, and published datagrams are routed hop-by-hop:
at every broker the datagram is delivered to covering local subscribers
and forwarded on each interface behind which a covering profile lives,
projected down to the attributes actually requested downstream (early
projection).

Subscription propagation is advertisement-scoped by default (profiles
only travel toward the advertised publishers of their streams, the
Siena model); set ``scope_to_advertisements=False`` to flood them
everywhere, which is simpler but costs control traffic and routing
state.

All data traffic is accounted in :attr:`ContentBasedNetwork.data_stats`
and control traffic (subscriptions, advertisements) in
:attr:`ContentBasedNetwork.control_stats`.

Fast path
---------
Publication is the dominant cost of every experiment, so steady-state
publishes run on cached state: per stream the network memoizes the
dissemination tree, the schema width table, each broker's neighbour
list and — from the routing tables' per-stream index — the *candidate
interfaces* that have any entry for the stream.  The cache is
epoch-versioned **per stream shard**
(:func:`~repro.cbn.columns.stream_shard`): every routing mutation
(install/remove/remove_interface, reached via subscribe/unsubscribe/
advertise) bumps the shards of the streams it touched — or a catch-all
version when the touched set is unknown — and every catalog
registration bumps the catalog version, so the next publish only
rebuilds the facts of streams whose shard actually moved.

:meth:`ContentBasedNetwork.publish_many` is the columnar batch entry
point: the feed is split into consecutive same-stream runs and each
run of two or more datagrams is routed **once per batch** through
:meth:`_route_batch` — a shared DFS over the dissemination tree where
every broker evaluates its compiled per-bucket plans against the whole
surviving batch (:meth:`RoutingTable.decide_batch` /
:meth:`RoutingTable.local_deliveries_batch`) instead of once per
datagram.  Only *consecutive* same-stream datagrams are batched so the
per-link traffic accounting accumulates in exactly the per-datagram
order (float addition is order-sensitive); deliveries and stats are
byte-identical to per-datagram :meth:`publish` calls.  Constructing
with ``fast_path=False`` retains the pre-index behaviour (full profile
scans, per-publish dict rebuilding) as the reference for equivalence
tests and before/after benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cbn.columns import ColumnBatch, stream_shard
from repro.cbn.datagram import Datagram
from repro.cbn.filters import Profile
from repro.cbn.routing import RoutingTable
from repro.cql.schema import Catalog, StreamSchema
from repro.overlay.metrics import LinkStats
from repro.overlay.topology import NodeId
from repro.overlay.tree import DisseminationTree


class NetworkError(Exception):
    """Raised for operations on unknown nodes/subscriptions."""


@dataclass(frozen=True)
class Delivery:
    """One datagram delivered to one subscriber."""

    subscription_id: str
    node: NodeId
    datagram: Datagram


@dataclass
class _Subscription:
    subscription_id: str
    node: NodeId
    profile: Profile


@dataclass
class _Advertisement:
    stream: str
    node: NodeId


class _StreamFacts:
    """Static per-stream facts the publish hot loop needs.

    Everything here is a pure function of (routing state, catalog,
    stream trees) and is invalidated wholesale when the owning
    network's epoch moves: the dissemination tree the stream travels
    on, its schema width table, each broker's neighbour tuple, and the
    *candidate interfaces* per broker — the neighbours that have at
    least one routing entry for the stream, everything else cannot
    possibly forward.
    """

    __slots__ = ("stream", "tree", "widths", "_neighbors", "_candidates")

    def __init__(
        self,
        stream: str,
        tree: DisseminationTree,
        widths: Optional[Dict[str, int]],
    ) -> None:
        self.stream = stream
        self.tree = tree
        self.widths = widths
        self._neighbors: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._candidates: Dict[NodeId, Tuple[NodeId, ...]] = {}

    def candidates(self, node: NodeId, table: RoutingTable) -> Tuple[NodeId, ...]:
        """Neighbours of ``node`` with any entry for this stream."""
        cached = self._candidates.get(node)
        if cached is None:
            neighbors = self._neighbors.get(node)
            if neighbors is None:
                neighbors = tuple(sorted(self.tree.neighbors(node)))
                self._neighbors[node] = neighbors
            cached = tuple(
                neighbor
                for neighbor in neighbors
                if table.has_stream_entries(neighbor, self.stream)
            )
            self._candidates[node] = cached
        return cached


class ContentBasedNetwork:
    """A simulated CBN over a dissemination tree of brokers.

    Parameters
    ----------
    tree:
        The overlay dissemination tree the brokers form.
    catalog:
        Optional shared schema catalog used to price datagram payloads;
        advertised schemas are registered into it.
    scope_to_advertisements:
        Propagate subscriptions only toward advertised publishers of
        the streams they request (default) instead of flooding.
    use_subsumption:
        Enable covering-based routing-table aggregation.
    fast_path:
        Route publications through the per-stream routing index and the
        epoch-versioned decision cache (default).  ``False`` keeps the
        naive scan-every-profile path; deliveries and traffic accounting
        are identical either way, only the work per datagram differs.
    """

    def __init__(
        self,
        tree: DisseminationTree,
        catalog: Optional[Catalog] = None,
        scope_to_advertisements: bool = True,
        use_subsumption: bool = False,
        stream_trees: Optional[Mapping[str, DisseminationTree]] = None,
        fast_path: bool = True,
    ) -> None:
        self._tree = tree
        self.catalog = catalog if catalog is not None else Catalog()
        self.use_subsumption = use_subsumption
        self.scope_to_advertisements = scope_to_advertisements
        self._scope = scope_to_advertisements
        self.fast_path = fast_path
        #: Optional per-stream dissemination trees ("the nodes in COSMOS
        #: are organized into multiple overlay dissemination trees").
        #: Streams not listed use the default tree; every tree must span
        #: the same node set.
        self._stream_trees: Dict[str, DisseminationTree] = dict(stream_trees or {})
        for stream, stree in self._stream_trees.items():
            if set(stree.nodes) != set(tree.nodes):
                raise NetworkError(
                    f"tree for stream {stream!r} spans different nodes"
                )
        self._epoch = 0
        self._tables: Dict[NodeId, RoutingTable] = {
            node: RoutingTable(
                node,
                use_subsumption,
                use_index=fast_path,
                on_change=self._bump_epoch,
            )
            for node in tree.nodes
        }
        self._subscriptions: Dict[str, _Subscription] = {}
        self._advertisements: Dict[str, List[_Advertisement]] = {}
        #: stream -> (facts, shard version they were built at); each
        #: entry revalidates lazily against its own stream's shard, so
        #: churn on one stream leaves the others' facts warm.
        self._facts: Dict[str, Tuple[_StreamFacts, Tuple[int, int, int]]] = {}
        #: shard index -> routing-mutation count for streams hashing
        #: there (fed by the tables' ``on_change`` stream reports).
        self._shard_epochs: Dict[int, int] = {}
        #: Bumped by mutations with unknown touched streams.
        self._all_epoch = 0
        #: stream -> shard index memo.
        self._shard_of: Dict[str, int] = {}
        weights = {edge: tree.weight(*edge) for edge in tree.edges}
        for stree in self._stream_trees.values():
            for edge in stree.edges:
                weights.setdefault(edge, stree.weight(*edge))
        self.data_stats = LinkStats(weights)
        self.control_stats = LinkStats(weights)
        self._counter = itertools.count()

    # -- structure ---------------------------------------------------------------

    @property
    def tree(self) -> DisseminationTree:
        return self._tree

    @property
    def has_stream_trees(self) -> bool:
        return bool(self._stream_trees)

    def tree_for(self, stream: str) -> DisseminationTree:
        """The dissemination tree datagrams of ``stream`` travel on."""
        return self._stream_trees.get(stream, self._tree)

    def set_stream_tree(self, stream: str, tree: DisseminationTree) -> None:
        """Attach a dedicated dissemination tree for one stream.

        Must happen before any subscription requesting the stream is
        installed (routing entries already laid along the old tree
        would be stranded).
        """
        if set(tree.nodes) != set(self._tree.nodes):
            raise NetworkError(f"tree for stream {stream!r} spans different nodes")
        for sub in self._subscriptions.values():
            if stream in sub.profile.streams:
                raise NetworkError(
                    f"stream {stream!r} already has subscriptions; its tree "
                    "can no longer change"
                )
        self._stream_trees[stream] = tree
        self._bump_epoch((stream,))
        for edge in tree.edges:
            weight = tree.weight(*edge)
            self.data_stats.add_weight(edge, weight)
            self.control_stats.add_weight(edge, weight)

    def table(self, node: NodeId) -> RoutingTable:
        try:
            return self._tables[node]
        except KeyError:
            raise NetworkError(f"unknown broker {node}") from None

    # -- the decision cache -------------------------------------------------------

    def _bump_epoch(self, streams: Optional[Iterable[str]] = None) -> None:
        """Record a routing mutation touching ``streams``.

        ``None`` means the touched set is unknown; the catch-all
        version moves instead, invalidating every stream's facts.
        """
        self._epoch += 1
        if streams is None:
            self._all_epoch += 1
            return
        epochs = self._shard_epochs
        shard_of = self._shard_of
        touched = set()
        for stream in streams:
            shard = shard_of.get(stream)
            if shard is None:
                shard = stream_shard(stream)
                shard_of[stream] = shard
            touched.add(shard)
        for shard in sorted(touched):
            epochs[shard] = epochs.get(shard, 0) + 1

    @property
    def routing_epoch(self) -> int:
        """Monotone counter of routing-state mutations (cache key)."""
        return self._epoch

    def _facts_for(self, stream: str) -> _StreamFacts:
        shard = self._shard_of.get(stream)
        if shard is None:
            shard = stream_shard(stream)
            self._shard_of[stream] = shard
        version = (
            self._shard_epochs.get(shard, 0),
            self._all_epoch,
            self.catalog.version,
        )
        cached = self._facts.get(stream)
        if cached is not None and cached[1] == version:
            return cached[0]
        facts = _StreamFacts(
            stream, self.tree_for(stream), self._widths_for(stream)
        )
        self._facts[stream] = (facts, version)
        return facts

    # -- advertisement --------------------------------------------------------------

    def advertise(
        self,
        stream: str,
        node: NodeId,
        schema: Optional[StreamSchema] = None,
    ) -> None:
        """Declare that ``node`` publishes ``stream``.

        Existing subscriptions requesting the stream are (re-)propagated
        toward the new publisher so later publications reach them.
        Re-advertising an already-known ``(stream, node)`` pair is a
        no-op apart from schema (re-)registration: duplicates would
        inflate :meth:`publishers_of` and make every later subscription
        re-propagate (and be re-charged on ``control_stats``) once per
        duplicate.
        """
        if node not in self._tables:
            raise NetworkError(f"unknown broker {node}")
        if schema is not None:
            self.catalog.register(schema)
        ads = self._advertisements.setdefault(stream, [])
        if any(ad.node == node for ad in ads):
            return
        ads.append(_Advertisement(stream, node))
        self._bump_epoch((stream,))
        if self._scope:
            for sub in self._subscriptions.values():
                if stream in sub.profile.streams:
                    self._propagate_toward(sub, stream, node)

    def publishers_of(self, stream: str) -> List[NodeId]:
        return [ad.node for ad in self._advertisements.get(stream, [])]

    # -- subscription -----------------------------------------------------------------

    def subscribe(
        self,
        profile: Profile,
        node: NodeId,
        subscription_id: Optional[str] = None,
    ) -> str:
        """Install ``profile`` for a party attached to broker ``node``.

        Returns the subscription id (generated when not supplied).
        """
        if node not in self._tables:
            raise NetworkError(f"unknown broker {node}")
        if subscription_id is None:
            subscription_id = f"sub-{next(self._counter)}"
        if subscription_id in self._subscriptions:
            raise NetworkError(f"duplicate subscription id {subscription_id!r}")
        sub = _Subscription(subscription_id, node, profile)
        self._subscriptions[subscription_id] = sub
        self._tables[node].install(RoutingTable.LOCAL, subscription_id, profile)
        if self._scope:
            for stream in profile.streams:
                for publisher in self.publishers_of(stream):
                    self._propagate_toward(sub, stream, publisher)
        else:
            for stream in profile.streams:
                self._flood_subscription(sub, stream)
        return subscription_id

    def unsubscribe(self, subscription_id: str) -> None:
        if subscription_id not in self._subscriptions:
            raise NetworkError(f"unknown subscription {subscription_id!r}")
        removed = self._subscriptions.pop(subscription_id)
        for tbl in self._tables.values():
            tbl.remove(subscription_id)
        if not self.use_subsumption:
            return
        # Covering aggregation may have suppressed other subscriptions'
        # entries behind the removed one; re-propagate every remaining
        # subscription that shares a stream so the uncovered ones regain
        # their own forwarding state (installation is idempotent).
        for sub in self._subscriptions.values():
            shared = sub.profile.streams & removed.profile.streams
            if not shared:
                continue
            for stream in shared:
                if self._scope:
                    for publisher in self.publishers_of(stream):
                        self._propagate_toward(sub, stream, publisher)
                else:
                    self._flood_subscription(sub, stream)

    def _propagate_toward(
        self, sub: _Subscription, stream: str, publisher: NodeId
    ) -> None:
        """Install routing entries along the path subscriber -> publisher.

        Propagation is *per stream*: the installed entry is the profile
        restricted to ``stream`` and the path follows that stream's own
        dissemination tree, so configurations with multiple trees route
        each stream on its tree.  Walking outward from the subscriber,
        every node on the path stores the restricted profile behind the
        interface pointing back at the subscriber.  A subsumed entry is
        *not stored* (covering aggregation: the broader profile on the
        same interface already routes everything we would match, with a
        carried-attribute superset) but propagation continues — the
        covering subscription may have been propagated toward different
        publishers, so upstream nodes still need an entry for this one.
        """
        if publisher == sub.node:
            return
        restricted = sub.profile.restricted_to(stream)
        entry_id = f"{sub.subscription_id}#{stream}"
        tree = self.tree_for(stream)
        path = tree.path(sub.node, publisher)
        size = float(restricted.size_estimate())
        for toward_sub, here in zip(path, path[1:]):
            self._tables[here].install(toward_sub, entry_id, restricted)
            self.control_stats.record(toward_sub, here, size)

    def _flood_subscription(self, sub: _Subscription, stream: str) -> None:
        """Install routing entries everywhere (flooding propagation).

        Like :meth:`_propagate_toward`, per stream on the stream's tree;
        covering aggregation only prunes stored state — the flood always
        visits the whole tree.
        """
        restricted = sub.profile.restricted_to(stream)
        entry_id = f"{sub.subscription_id}#{stream}"
        tree = self.tree_for(stream)
        size = float(restricted.size_estimate())
        seen = {sub.node}
        frontier = [sub.node]
        while frontier:
            here = frontier.pop()
            for neighbor in sorted(tree.neighbors(here)):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                # At ``neighbor`` the subscriber lies behind ``here``.
                self._tables[neighbor].install(here, entry_id, restricted)
                self.control_stats.record(here, neighbor, size)
                frontier.append(neighbor)

    # -- publication ---------------------------------------------------------------------

    def publish(self, datagram: Datagram, node: NodeId) -> List[Delivery]:
        """Inject ``datagram`` at broker ``node`` and route it.

        Returns every delivery made to a subscriber, with the
        per-subscriber projection applied.  Link traffic is recorded on
        :attr:`data_stats` using schema widths when the stream's schema
        is in the catalog.
        """
        if node not in self._tables:
            raise NetworkError(f"unknown broker {node}")
        if not self.fast_path:
            return self._publish_scan(datagram, node)
        return self._route(datagram, node, self._facts_for(datagram.stream))

    def publish_many(
        self, datagrams: Iterable[Datagram], node: NodeId
    ) -> List[List[Delivery]]:
        """Inject a batch of datagrams at broker ``node``.

        Returns one delivery list per datagram, in order — exactly what
        per-datagram :meth:`publish` calls would produce.  Consecutive
        datagrams of the same stream form a *run* routed once per batch
        through the columnar plans (:meth:`_route_batch`); runs of one
        fall back to the scalar hot path.  Only consecutive datagrams
        are grouped (not all same-stream datagrams of the feed) so the
        per-link traffic accounting accumulates float contributions in
        exactly the per-datagram order.
        """
        if node not in self._tables:
            raise NetworkError(f"unknown broker {node}")
        if not self.fast_path:
            return [self._publish_scan(d, node) for d in datagrams]
        out: List[List[Delivery]] = []
        run: List[Datagram] = []
        run_stream: Optional[str] = None
        for datagram in datagrams:
            if datagram.stream != run_stream and run:
                self._flush_run(run, run_stream, node, out)
                run = []
            run_stream = datagram.stream
            run.append(datagram)
        if run:
            self._flush_run(run, run_stream, node, out)
        return out

    def _flush_run(
        self,
        run: List[Datagram],
        stream: str,
        node: NodeId,
        out: List[List[Delivery]],
    ) -> None:
        """Route one consecutive same-stream run, appending to ``out``."""
        facts = self._facts_for(stream)
        if len(run) == 1:
            out.append(self._route(run[0], node, facts))
        else:
            out.extend(self._route_batch(run, node, facts))

    def _route(
        self, datagram: Datagram, node: NodeId, facts: _StreamFacts
    ) -> List[Delivery]:
        """The indexed hot path: candidate interfaces from the routing
        index, cached widths/neighbours, per-copy size computed once."""
        widths = facts.widths
        record = self.data_stats.record
        tables = self._tables
        deliveries: List[Delivery] = []
        #: (broker, interface it arrived from, datagram copy, its size
        #: in bytes or None when not yet needed)
        stack: List[Tuple[NodeId, Optional[NodeId], Datagram, Optional[float]]] = [
            (node, None, datagram, None)
        ]
        while stack:
            here, arrived_from, current, size = stack.pop()
            table = tables[here]
            for sid, projected in table.local_deliveries(current):
                deliveries.append(Delivery(sid, here, projected))
            for neighbor in facts.candidates(here, table):
                if neighbor == arrived_from:
                    continue
                decision = table.decide(neighbor, current)
                if not decision.forward:
                    continue
                keep = decision.attributes
                payload = current.payload
                if keep is None or all(attr in keep for attr in payload):
                    # Projection keeps everything: reuse the immutable
                    # datagram (and its already-computed size).
                    outgoing, out_size = current, size
                else:
                    outgoing, out_size = current.project(keep), None
                if out_size is None:
                    out_size = outgoing.size_bytes(widths)
                record(here, neighbor, out_size)
                stack.append((neighbor, here, outgoing, out_size))
        return deliveries

    def _route_batch(
        self, datagrams: List[Datagram], node: NodeId, facts: _StreamFacts
    ) -> List[List[Delivery]]:
        """Columnar batch routing of one same-stream run.

        One DFS over the dissemination tree carries the whole batch:
        each stack frame holds the *surviving subset* (original indices,
        per-datagram current copies and byte sizes) at one broker, and
        every broker evaluates its compiled plans once per batch via
        the column masks.  Per datagram the visit order, deliveries and
        per-link traffic records are exactly those of a standalone
        :meth:`_route` call — frames not containing a datagram never
        spawn frames that do, so the projection of the shared DFS onto
        one datagram's frames is its solo DFS.
        """
        widths = facts.widths
        record = self.data_stats.record
        tables = self._tables
        n = len(datagrams)
        deliveries: List[List[Delivery]] = [[] for __ in range(n)]
        #: (broker, interface it arrived from, surviving original
        #: indices, their current copies, their sizes or None)
        stack: List[
            Tuple[
                NodeId,
                Optional[NodeId],
                List[int],
                List[Datagram],
                List[Optional[float]],
            ]
        ] = [(node, None, list(range(n)), list(datagrams), [None] * n)]
        stream = facts.stream
        while stack:
            here, arrived_from, indices, currents, sizes = stack.pop()
            table = tables[here]
            batch = ColumnBatch(currents, stream)
            local = table.local_deliveries_batch(batch)
            for slot, index in enumerate(indices):
                for sid, projected in local[slot]:
                    deliveries[index].append(Delivery(sid, here, projected))
            for neighbor in facts.candidates(here, table):
                if neighbor == arrived_from:
                    continue
                decisions = table.decide_batch(neighbor, batch)
                sub_indices: List[int] = []
                sub_currents: List[Datagram] = []
                sub_sizes: List[Optional[float]] = []
                for slot, decision in enumerate(decisions):
                    if not decision.forward:
                        continue
                    current = currents[slot]
                    keep = decision.attributes
                    payload = current.payload
                    if keep is None or all(attr in keep for attr in payload):
                        # Projection keeps everything: reuse the
                        # immutable datagram (and cache its size for
                        # this frame's remaining interfaces).
                        out_size = sizes[slot]
                        if out_size is None:
                            out_size = current.size_bytes(widths)
                            sizes[slot] = out_size
                        outgoing = current
                    else:
                        outgoing = current.project(keep)
                        out_size = outgoing.size_bytes(widths)
                    record(here, neighbor, out_size)
                    sub_indices.append(indices[slot])
                    sub_currents.append(outgoing)
                    sub_sizes.append(out_size)
                if sub_indices:
                    stack.append(
                        (neighbor, here, sub_indices, sub_currents, sub_sizes)
                    )
        return deliveries

    def _publish_scan(self, datagram: Datagram, node: NodeId) -> List[Delivery]:
        """The pre-index reference path: every profile behind every
        interface is evaluated and per-publish state is rebuilt."""
        widths = self._widths_for(datagram.stream)
        tree = self.tree_for(datagram.stream)
        deliveries: List[Delivery] = []
        #: (broker to process, interface it arrived from, datagram copy)
        stack: List[Tuple[NodeId, Optional[NodeId], Datagram]] = [
            (node, None, datagram)
        ]
        while stack:
            here, arrived_from, current = stack.pop()
            table = self._tables[here]
            for sid, projected in table.local_deliveries(current):
                deliveries.append(Delivery(sid, here, projected))
            for neighbor in sorted(tree.neighbors(here)):
                if neighbor == arrived_from:
                    continue
                decision = table.decide(neighbor, current)
                if not decision.forward:
                    continue
                if decision.attributes is None:
                    outgoing = current
                else:
                    outgoing = current.project(decision.attributes)
                self.data_stats.record(
                    here, neighbor, outgoing.size_bytes(widths)
                )
                stack.append((neighbor, here, outgoing))
        return deliveries

    def _widths_for(self, stream: str) -> Optional[Dict[str, int]]:
        if stream not in self.catalog:
            return None
        schema = self.catalog.get(stream)
        return {attr.name: attr.byte_width for attr in schema.attributes}

    # -- introspection -----------------------------------------------------------------------

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def subscriptions(self) -> Dict[str, Tuple[NodeId, Profile]]:
        """Subscription id -> (attachment broker, profile)."""
        return {
            sid: (sub.node, sub.profile)
            for sid, sub in self._subscriptions.items()
        }

    def advertised_streams(self) -> List[str]:
        """Streams with at least one advertisement, sorted."""
        return sorted(
            stream for stream, ads in self._advertisements.items() if ads
        )

    def routing_state_size(self) -> int:
        """Total routing entries across all brokers (table pressure)."""
        return sum(tbl.entry_count for tbl in self._tables.values())
