"""Content-based network substrate (section 3 of the paper).

A CBN is a multicast-like communication substrate: datagrams are sets
of attribute/value pairs, receivers declare *profiles* of data interest
and the network routes each datagram to every receiver whose profile
covers it.  Sources and receivers never learn about each other
("loose coupling").

COSMOS extends the classic CBN in two ways this package implements:

* **streaming relations** — every datagram carries the unique name of
  the stream it belongs to, and schemas are distributed either by
  flooding or through a DHT (:mod:`repro.cbn.schema_registry`);
* **early projection** — profiles carry, per stream, the set of
  attributes of interest, and brokers strip unrequested attributes as
  early as possible (:mod:`repro.cbn.routing`).
"""

from __future__ import annotations

from repro.cbn.datagram import Datagram
from repro.cbn.dht import ConsistentHashRing
from repro.cbn.filters import Filter, Profile
from repro.cbn.network import ContentBasedNetwork, Delivery
from repro.cbn.schema_registry import (
    DHTSchemaRegistry,
    FloodedSchemaRegistry,
    SchemaRegistry,
)

__all__ = [
    "ConsistentHashRing",
    "ContentBasedNetwork",
    "Datagram",
    "Delivery",
    "DHTSchemaRegistry",
    "Filter",
    "FloodedSchemaRegistry",
    "Profile",
    "SchemaRegistry",
]
