"""Binary wire encoding of datagrams and profiles.

The simulation accounts traffic with schema-derived sizes, but a
deployable CBN needs an actual wire format; this module defines one and
the codec for it, so datagrams and subscription profiles can round-trip
through bytes (tested exhaustively and property-based).

Format (all integers big-endian):

* strings: ``u16 length`` + UTF-8 bytes;
* values: 1 type tag (``i``/``d``/``s``) + payload (``i64`` / ``f64`` /
  string);
* datagram: magic ``CD``, stream, ``f64`` timestamp, ``u16`` attribute
  count, then (name, value) pairs;
* sequenced datagram (reliable-uplink transport): magic ``CS``, stream,
  ``f64`` timestamp, ``i64`` sequence number, then the same attribute
  section — a datagram without a sequence number keeps the exact ``CD``
  encoding, so pre-reliability buffers stay valid;
* interval: flags byte (lo present / hi present / lo strict / hi
  strict) + present bounds as values;
* conjunction: four sections (intervals, exclusions, links, diffs),
  each ``u16``-counted;
* profile: magic ``CP``, ``u16`` stream count, per stream (name, ``*``
  flag or ``u16``-counted attribute names), ``u16`` filter count, per
  filter (stream, conjunction).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.cbn.datagram import Datagram, Value
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.predicates import Conjunction, Interval

_DATAGRAM_MAGIC = b"CD"
_SEQUENCED_MAGIC = b"CS"
_PROFILE_MAGIC = b"CP"


class CodecError(Exception):
    """Raised on malformed buffers or unencodable values."""


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------


def _pack_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long to encode ({len(raw)} bytes)")
    return struct.pack(">H", len(raw)) + raw


def _unpack_string(buffer: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    raw = buffer[offset : offset + length]
    if len(raw) != length:
        raise CodecError("truncated string")
    return raw.decode("utf-8"), offset + length


def _pack_value(value: Value) -> bytes:
    if isinstance(value, bool):
        raise CodecError("boolean attribute values are not part of the model")
    if isinstance(value, int):
        return b"i" + struct.pack(">q", value)
    if isinstance(value, float):
        return b"d" + struct.pack(">d", value)
    if isinstance(value, str):
        return b"s" + _pack_string(value)
    raise CodecError(f"unencodable value type {type(value).__name__}")


def _unpack_value(buffer: bytes, offset: int) -> Tuple[Value, int]:
    tag = buffer[offset : offset + 1]
    offset += 1
    if tag == b"i":
        (value,) = struct.unpack_from(">q", buffer, offset)
        return value, offset + 8
    if tag == b"d":
        (value,) = struct.unpack_from(">d", buffer, offset)
        return value, offset + 8
    if tag == b"s":
        return _unpack_string(buffer, offset)
    raise CodecError(f"unknown value tag {tag!r}")


# ---------------------------------------------------------------------------
# datagrams
# ---------------------------------------------------------------------------


def encode_datagram(datagram: Datagram) -> bytes:
    """Serialise a datagram to its wire representation.

    A datagram carrying a transport sequence number uses the ``CS``
    variant (the ``i64`` seq follows the timestamp); without one the
    encoding is byte-for-byte the pre-reliability ``CD`` format.
    """
    sequenced = datagram.seq is not None
    parts = [
        _SEQUENCED_MAGIC if sequenced else _DATAGRAM_MAGIC,
        _pack_string(datagram.stream),
        struct.pack(">d", datagram.timestamp),
    ]
    if sequenced:
        parts.append(struct.pack(">q", datagram.seq))
    parts.append(struct.pack(">H", len(datagram.payload)))
    for name in sorted(datagram.payload):
        parts.append(_pack_string(name))
        parts.append(_pack_value(datagram.payload[name]))
    return b"".join(parts)


def decode_datagram(buffer: bytes) -> Datagram:
    magic = buffer[:2]
    if magic not in (_DATAGRAM_MAGIC, _SEQUENCED_MAGIC):
        raise CodecError("not a datagram buffer")
    offset = 2
    stream, offset = _unpack_string(buffer, offset)
    (timestamp,) = struct.unpack_from(">d", buffer, offset)
    offset += 8
    seq = None
    if magic == _SEQUENCED_MAGIC:
        (seq,) = struct.unpack_from(">q", buffer, offset)
        offset += 8
    (count,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    payload: Dict[str, Value] = {}
    for __ in range(count):
        name, offset = _unpack_string(buffer, offset)
        value, offset = _unpack_value(buffer, offset)
        payload[name] = value
    return Datagram(stream, payload, timestamp, seq)


# ---------------------------------------------------------------------------
# intervals and conjunctions
# ---------------------------------------------------------------------------


def _pack_interval(interval: Interval) -> bytes:
    flags = (
        (1 if interval.lo is not None else 0)
        | (2 if interval.hi is not None else 0)
        | (4 if interval.lo_strict else 0)
        | (8 if interval.hi_strict else 0)
    )
    parts = [struct.pack(">B", flags)]
    if interval.lo is not None:
        parts.append(_pack_value(interval.lo))
    if interval.hi is not None:
        parts.append(_pack_value(interval.hi))
    return b"".join(parts)


def _unpack_interval(buffer: bytes, offset: int) -> Tuple[Interval, int]:
    (flags,) = struct.unpack_from(">B", buffer, offset)
    offset += 1
    lo = hi = None
    if flags & 1:
        lo, offset = _unpack_value(buffer, offset)
    if flags & 2:
        hi, offset = _unpack_value(buffer, offset)
    return Interval(lo, hi, bool(flags & 4), bool(flags & 8)), offset


def encode_conjunction(conjunction: Conjunction) -> bytes:
    intervals = conjunction.intervals
    excluded = conjunction.excluded
    links = sorted(conjunction.links)
    diffs = conjunction.diffs
    parts = [struct.pack(">H", len(intervals))]
    for term in sorted(intervals):
        parts.append(_pack_string(term))
        parts.append(_pack_interval(intervals[term]))
    parts.append(struct.pack(">H", len(excluded)))
    for term in sorted(excluded):
        parts.append(_pack_string(term))
        values = sorted(excluded[term], key=repr)
        parts.append(struct.pack(">H", len(values)))
        for value in values:
            parts.append(_pack_value(value))
    parts.append(struct.pack(">H", len(links)))
    for a, b in links:
        parts.append(_pack_string(a))
        parts.append(_pack_string(b))
    parts.append(struct.pack(">H", len(diffs)))
    for a, b in sorted(diffs):
        parts.append(_pack_string(a))
        parts.append(_pack_string(b))
        parts.append(_pack_interval(diffs[(a, b)]))
    return b"".join(parts)


def decode_conjunction(buffer: bytes, offset: int = 0) -> Tuple[Conjunction, int]:
    (n_intervals,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    intervals: Dict[str, Interval] = {}
    for __ in range(n_intervals):
        term, offset = _unpack_string(buffer, offset)
        interval, offset = _unpack_interval(buffer, offset)
        intervals[term] = interval
    (n_excluded,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    excluded: Dict[str, frozenset] = {}
    for __ in range(n_excluded):
        term, offset = _unpack_string(buffer, offset)
        (n_values,) = struct.unpack_from(">H", buffer, offset)
        offset += 2
        values = []
        for __ in range(n_values):
            value, offset = _unpack_value(buffer, offset)
            values.append(value)
        excluded[term] = frozenset(values)
    (n_links,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    links = []
    for __ in range(n_links):
        a, offset = _unpack_string(buffer, offset)
        b, offset = _unpack_string(buffer, offset)
        links.append((a, b))
    (n_diffs,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    diffs: Dict[Tuple[str, str], Interval] = {}
    for __ in range(n_diffs):
        a, offset = _unpack_string(buffer, offset)
        b, offset = _unpack_string(buffer, offset)
        interval, offset = _unpack_interval(buffer, offset)
        diffs[(a, b)] = interval
    return Conjunction(intervals, excluded, links, diffs), offset


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------


def encode_profile(profile: Profile) -> bytes:
    """Serialise a ⟨S, P, F⟩ profile (subscriber identity excluded —
    it is transport-level addressing, not profile content)."""
    projections = profile.projections
    parts = [_PROFILE_MAGIC, struct.pack(">H", len(projections))]
    for stream in sorted(projections):
        parts.append(_pack_string(stream))
        projection = projections[stream]
        if projection == ALL_ATTRIBUTES:
            parts.append(struct.pack(">B", 1))
        else:
            parts.append(struct.pack(">B", 0))
            names = sorted(projection)
            parts.append(struct.pack(">H", len(names)))
            for name in names:
                parts.append(_pack_string(name))
    filters = profile.filters
    parts.append(struct.pack(">H", len(filters)))
    for flt in filters:
        parts.append(_pack_string(flt.stream))
        parts.append(encode_conjunction(flt.condition))
    return b"".join(parts)


def decode_profile(buffer: bytes) -> Profile:
    if buffer[:2] != _PROFILE_MAGIC:
        raise CodecError("not a profile buffer")
    offset = 2
    (n_streams,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    projections: Dict[str, frozenset] = {}
    for __ in range(n_streams):
        stream, offset = _unpack_string(buffer, offset)
        (all_flag,) = struct.unpack_from(">B", buffer, offset)
        offset += 1
        if all_flag:
            projections[stream] = ALL_ATTRIBUTES
        else:
            (n_names,) = struct.unpack_from(">H", buffer, offset)
            offset += 2
            names = []
            for __ in range(n_names):
                name, offset = _unpack_string(buffer, offset)
                names.append(name)
            projections[stream] = frozenset(names)
    (n_filters,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    filters: List[Filter] = []
    for __ in range(n_filters):
        stream, offset = _unpack_string(buffer, offset)
        condition, offset = decode_conjunction(buffer, offset)
        filters.append(Filter(stream, condition))
    return Profile(projections, filters)
