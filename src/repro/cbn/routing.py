"""Per-node CBN routing state.

Every broker keeps, per overlay interface (tree neighbour), the set of
data-interest profiles reachable through that interface.  A datagram
arriving at the broker is forwarded on an interface when any profile
behind it covers the datagram, after **early projection**: the
forwarded copy keeps only the union of the attributes requested by the
covering downstream profiles (section 3.1).

Routing tables optionally aggregate with *subsumption*: a newly
installed profile that is subsumed by an existing one on the same
interface is not stored (and does not need further propagation), the
classic CBN optimisation (Siena-style covering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Profile
from repro.overlay.topology import NodeId


class RoutingError(Exception):
    """Raised for inconsistent routing operations."""


@dataclass
class ForwardDecision:
    """Outcome of evaluating a datagram against one interface.

    ``forward`` says whether any downstream profile covers the datagram;
    ``attributes`` is the union of attribute names the downstream
    coverers need (``None`` means "all attributes", i.e. no projection).
    """

    forward: bool
    attributes: Optional[FrozenSet[str]] = None


class RoutingTable:
    """Routing state of one broker.

    Entries are keyed ``(interface, subscription_id)`` where interface
    is either a neighbour node id or :data:`LOCAL` for subscriptions
    attached directly to this broker.
    """

    #: Interface key for locally attached subscribers.
    LOCAL: object = "local"

    def __init__(self, node: NodeId, use_subsumption: bool = False) -> None:
        self.node = node
        self._use_subsumption = use_subsumption
        self._entries: Dict[object, Dict[str, Profile]] = {}

    # -- maintenance -----------------------------------------------------------

    def install(self, interface: object, subscription_id: str, profile: Profile) -> bool:
        """Install a profile behind an interface.

        Returns ``False`` when subsumption aggregation suppressed the
        entry (an existing profile on the same interface already covers
        it), meaning propagation beyond this node can stop.
        """
        entries = self._entries.setdefault(interface, {})
        # Local subscribers are delivery endpoints, not forwarding state:
        # every one needs its own entry (own projection), so covering
        # aggregation only applies to remote interfaces.
        if self._use_subsumption and interface is not self.LOCAL:
            for existing in entries.values():
                if existing.subsumes(profile):
                    return False
            # Remove entries the new profile renders redundant.
            redundant = [
                sid for sid, p in entries.items() if profile.subsumes(p)
            ]
            for sid in redundant:
                del entries[sid]
        entries[subscription_id] = profile
        return True

    def remove(self, subscription_id: str) -> None:
        """Drop a subscription from every interface.

        Also removes the per-stream forwarding entries the network
        layer installs under ``"<id>#<stream>"`` composite keys.
        """
        prefix = subscription_id + "#"
        for entries in self._entries.values():
            entries.pop(subscription_id, None)
            for key in [k for k in entries if k.startswith(prefix)]:
                del entries[key]

    def remove_interface(self, interface: object) -> None:
        self._entries.pop(interface, None)

    def profiles(self, interface: object) -> List[Profile]:
        return list(self._entries.get(interface, {}).values())

    def entries(self, interface: object) -> Dict[str, Profile]:
        """Entry-id -> profile behind one interface, in install order."""
        return dict(self._entries.get(interface, {}))

    def local_profiles(self) -> Dict[str, Profile]:
        return dict(self._entries.get(self.LOCAL, {}))

    @property
    def interfaces(self) -> List[object]:
        return list(self._entries)

    @property
    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    # -- forwarding -----------------------------------------------------------------

    def decide(self, interface: object, datagram: Datagram) -> ForwardDecision:
        """Should ``datagram`` be forwarded on ``interface``, and with
        which attributes retained?"""
        needed: Set[str] = set()
        wants_all = False
        forward = False
        for profile in self._entries.get(interface, {}).values():
            if not profile.covers(datagram):
                continue
            forward = True
            projection = profile.projection_for(datagram.stream)
            if projection == ALL_ATTRIBUTES:
                wants_all = True
            else:
                needed |= projection
                # Keep attributes the downstream filters evaluate, or the
                # profile could no longer recognise the datagram at the
                # next hop after projection.
                for flt in profile.filters_for(datagram.stream):
                    needed |= flt.condition.referenced_terms()
        if not forward:
            return ForwardDecision(False)
        if wants_all:
            return ForwardDecision(True, None)
        return ForwardDecision(True, frozenset(needed))

    def local_deliveries(
        self, datagram: Datagram
    ) -> List[Tuple[str, Datagram]]:
        """(subscription_id, projected datagram) for local matches."""
        out: List[Tuple[str, Datagram]] = []
        for sid, profile in self._entries.get(self.LOCAL, {}).items():
            projected = profile.apply(datagram)
            if projected is not None:
                out.append((sid, projected))
        return out
