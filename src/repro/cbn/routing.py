"""Per-node CBN routing state.

Every broker keeps, per overlay interface (tree neighbour), the set of
data-interest profiles reachable through that interface.  A datagram
arriving at the broker is forwarded on an interface when any profile
behind it covers the datagram, after **early projection**: the
forwarded copy keeps only the union of the attributes requested by the
covering downstream profiles (section 3.1).

Routing tables optionally aggregate with *subsumption*: a newly
installed profile that is subsumed by an existing one on the same
interface is not stored (and does not need further propagation), the
classic CBN optimisation (Siena-style covering).

Fast path
---------
Matching is the hot operation of the whole system: every datagram hop
evaluates the profiles behind every interface.  The table therefore
maintains a **per-(interface, stream) index**: each entry is indexed
under every stream its profile requests, so :meth:`RoutingTable.decide`
and :meth:`RoutingTable.local_deliveries` only touch entries whose
stream set includes the datagram's stream.  On top of the index sit
lazily **compiled matchers** — per entry the per-stream filter
conditions, projection set and carried-attribute set are precomputed —
with two short-circuits: a covering entry that wants all attributes
ends evaluation immediately (projection can no longer narrow), and once
the accumulated attribute union reaches the per-(interface, stream)
upper bound the remaining entries cannot change the decision either.

Every mutation bumps :attr:`RoutingTable.epoch`; compiled state is
rebuilt lazily when versions move, and the owning network layer uses
the same signal (via ``on_change``, which now reports the *streams* a
mutation touched) to invalidate its own per-stream caches.
Constructing the table with ``use_index=False`` keeps the pre-index
scan-everything behaviour, used as the reference implementation by the
equivalence property tests and the before/after benchmarks.

Columnar batch path
-------------------
:meth:`RoutingTable.decide_batch` and
:meth:`RoutingTable.local_deliveries_batch` evaluate one compiled plan
against a whole same-stream :class:`~repro.cbn.columns.ColumnBatch` at
once: each entry's filter conditions are compiled
(:func:`~repro.cbn.columns.compile_condition`) into column evaluators
producing per-batch match masks, and projection work is shared across
the subscriptions of a bucket (one projected copy per distinct
projection set per datagram).  Results are element-wise identical to
per-datagram :meth:`decide` / :meth:`local_deliveries`.

Shard-scoped invalidation
-------------------------
Compiled plans are validated per *stream shard*
(:func:`~repro.cbn.columns.stream_shard`): every mutation bumps only
the shards of the streams it touched (or a catch-all version when the
touched set is unknown), so a subscription churn event invalidates the
plans of the streams it concerns and publishing other streams keeps
hitting warm caches — per-publish recompilation work is O(touched
shards), not O(all streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.cbn.columns import ColumnBatch, Mask, compile_condition, stream_shard
from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Profile
from repro.overlay.topology import NodeId


class RoutingError(Exception):
    """Raised for inconsistent routing operations."""


@dataclass
class ForwardDecision:
    """Outcome of evaluating a datagram against one interface.

    ``forward`` says whether any downstream profile covers the datagram;
    ``attributes`` is the union of attribute names the downstream
    coverers need (``None`` means "all attributes", i.e. no projection).
    """

    forward: bool
    attributes: Optional[FrozenSet[str]] = None


class _CompiledEntry:
    """One routing entry pre-resolved for a single stream.

    Everything :meth:`RoutingTable.decide` needs per evaluation is
    precomputed here so the hot loop performs no profile introspection:
    the filter conditions for the stream (empty means unconditional),
    the projection set (for local delivery), the carried-attribute set
    (projection plus filter-referenced attributes, for forwarding) and
    the wants-all flag.
    """

    __slots__ = (
        "entry_id",
        "profile",
        "conditions",
        "projection",
        "carried",
        "wants_all",
        "_evaluators",
    )

    def __init__(self, entry_id: str, profile: Profile, stream: str) -> None:
        self.entry_id = entry_id
        self.profile = profile
        self.conditions = tuple(
            flt.condition for flt in profile.filters_for(stream)
        )
        self.projection = profile.projection_for(stream)
        self.carried = profile.carried_attributes(stream)
        self.wants_all = self.projection == ALL_ATTRIBUTES
        #: Column evaluators for :meth:`batch_mask`, compiled on first
        #: use (many entries are only ever hit by the scalar path).
        self._evaluators: Optional[Tuple] = None

    def covers(self, payload) -> bool:
        conditions = self.conditions
        if not conditions:
            return True
        for condition in conditions:
            if condition.evaluate(payload):
                return True
        return False

    def batch_mask(self, batch: ColumnBatch) -> Mask:
        """Per-datagram coverage of a same-stream batch.

        Element ``i`` equals ``covers(batch.datagrams[i].payload)``:
        the filter conditions (a disjunction) are evaluated as compiled
        column masks OR-combined across conditions.
        """
        evaluators = self._evaluators
        if evaluators is None:
            evaluators = tuple(
                compile_condition(condition) for condition in self.conditions
            )
            self._evaluators = evaluators
        if not evaluators:
            return [True] * batch.n
        mask = evaluators[0](batch)
        for evaluator in evaluators[1:]:
            if all(mask):
                break
            mask = [
                hit or extra
                for hit, extra in zip(mask, evaluator(batch))
            ]
        return mask


#: Compiled matching state for one (interface, stream):
#: (entries, any_wants_all, attribute-union upper bound over non-wants-all
#: entries).
_Plan = Tuple[List[_CompiledEntry], bool, FrozenSet[str]]

_EMPTY_PLAN: _Plan = ([], False, frozenset())


class RoutingTable:
    """Routing state of one broker.

    Entries are keyed ``(interface, subscription_id)`` where interface
    is either a neighbour node id or :data:`LOCAL` for subscriptions
    attached directly to this broker.
    """

    #: Interface key for locally attached subscribers.
    LOCAL: object = "local"

    def __init__(
        self,
        node: NodeId,
        use_subsumption: bool = False,
        use_index: bool = True,
        on_change: Optional[Callable[[Optional[FrozenSet[str]]], None]] = None,
    ) -> None:
        self.node = node
        self._use_subsumption = use_subsumption
        self._use_index = use_index
        #: Invoked after every state mutation with the streams the
        #: mutation touched (``None`` when unattributable); the network
        #: layer hooks its shard-scoped cache invalidation here.
        self.on_change = on_change
        #: Bumped on every mutation; monotone mutation counter.
        self.epoch = 0
        self._entries: Dict[object, Dict[str, Profile]] = {}
        #: interface -> stream -> entry id -> profile (install order
        #: preserved per bucket, mirroring ``_entries``).
        self._by_stream: Dict[object, Dict[str, Dict[str, Profile]]] = {}
        #: (interface, stream) -> (compiled plan, shard version it was
        #: built at).  Entries revalidate lazily against the stream's
        #: shard version, so a mutation touching stream S leaves the
        #: cached plans of unrelated streams warm.
        self._plans: Dict[Tuple[object, str], Tuple[_Plan, Tuple[int, int]]] = {}
        #: shard index -> mutation count for streams hashing there.
        self._shard_epochs: Dict[int, int] = {}
        #: Bumped by mutations whose touched streams are unknown;
        #: part of every shard version so they invalidate everything.
        self._all_epoch = 0
        #: stream -> shard index memo (crc32 paid once per stream).
        self._shard_of: Dict[str, int] = {}

    # -- maintenance -----------------------------------------------------------

    def _shard(self, stream: str) -> int:
        shard = self._shard_of.get(stream)
        if shard is None:
            shard = stream_shard(stream)
            self._shard_of[stream] = shard
        return shard

    def _touch(self, streams: Optional[Iterable[str]] = None) -> None:
        self.epoch += 1
        if streams is None:
            self._all_epoch += 1
            notify: Optional[FrozenSet[str]] = None
        else:
            notify = frozenset(streams)
            bumped = self._shard_epochs
            for shard in sorted({self._shard(stream) for stream in notify}):
                bumped[shard] = bumped.get(shard, 0) + 1
        if self.on_change is not None:
            self.on_change(notify)

    def _index_entry(self, interface: object, entry_id: str, profile: Profile) -> None:
        streams = self._by_stream.setdefault(interface, {})
        for stream in profile.streams:
            streams.setdefault(stream, {})[entry_id] = profile

    def _unindex_entry(self, interface: object, entry_id: str, profile: Profile) -> None:
        streams = self._by_stream.get(interface)
        if streams is None:
            return
        for stream in profile.streams:
            bucket = streams.get(stream)
            if bucket is None:
                continue
            bucket.pop(entry_id, None)
            if not bucket:
                del streams[stream]

    def install(self, interface: object, subscription_id: str, profile: Profile) -> bool:
        """Install a profile behind an interface.

        Returns ``False`` when subsumption aggregation suppressed the
        entry (an existing profile on the same interface already covers
        it), meaning propagation beyond this node can stop.
        """
        entries = self._entries.setdefault(interface, {})
        touched: Set[str] = set(profile.streams)
        # Local subscribers are delivery endpoints, not forwarding state:
        # every one needs its own entry (own projection), so covering
        # aggregation only applies to remote interfaces.
        if self._use_subsumption and interface is not self.LOCAL:
            for existing in entries.values():
                if existing.subsumes(profile):
                    return False
            # Remove entries the new profile renders redundant.
            redundant = [
                sid for sid, p in entries.items() if profile.subsumes(p)
            ]
            for sid in redundant:
                touched.update(entries[sid].streams)
                self._unindex_entry(interface, sid, entries[sid])
                del entries[sid]
        previous = entries.get(subscription_id)
        if previous is not None:
            touched.update(previous.streams)
            self._unindex_entry(interface, subscription_id, previous)
        entries[subscription_id] = profile
        self._index_entry(interface, subscription_id, profile)
        self._touch(touched)
        return True

    def remove(self, subscription_id: str) -> None:
        """Drop a subscription from every interface.

        Also removes the per-stream forwarding entries the network
        layer installs under ``"<id>#<stream>"`` composite keys.
        """
        prefix = subscription_id + "#"
        touched: Set[str] = set()
        changed = False
        for interface, entries in self._entries.items():
            doomed = [
                key
                for key in entries
                if key == subscription_id or key.startswith(prefix)
            ]
            for key in doomed:
                touched.update(entries[key].streams)
                self._unindex_entry(interface, key, entries[key])
                del entries[key]
                changed = True
        if changed:
            self._touch(touched)

    def remove_interface(self, interface: object) -> None:
        removed = self._entries.pop(interface, None)
        self._by_stream.pop(interface, None)
        if removed:
            touched: Set[str] = set()
            for profile in removed.values():
                touched.update(profile.streams)
            self._touch(touched)

    def profiles(self, interface: object) -> List[Profile]:
        return list(self._entries.get(interface, {}).values())

    def entries(self, interface: object) -> Dict[str, Profile]:
        """Entry-id -> profile behind one interface, in install order."""
        return dict(self._entries.get(interface, {}))

    def local_profiles(self) -> Dict[str, Profile]:
        return dict(self._entries.get(self.LOCAL, {}))

    @property
    def interfaces(self) -> List[object]:
        return list(self._entries)

    @property
    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    # -- the index -------------------------------------------------------------

    def stream_entries(self, interface: object, stream: str) -> Dict[str, Profile]:
        """Entry-id -> profile behind ``interface`` requesting ``stream``."""
        return dict(self._by_stream.get(interface, {}).get(stream, {}))

    def stream_interfaces(self, stream: str) -> List[object]:
        """Interfaces with at least one entry requesting ``stream``."""
        return [
            interface
            for interface, streams in self._by_stream.items()
            if streams.get(stream)
        ]

    def has_stream_entries(self, interface: object, stream: str) -> bool:
        return bool(self._by_stream.get(interface, {}).get(stream))

    def _plan(self, interface: object, stream: str) -> _Plan:
        """The compiled matchers for one (interface, stream), cached
        until the next mutation touching the stream's shard."""
        key = (interface, stream)
        version = (
            self._shard_epochs.get(self._shard(stream), 0),
            self._all_epoch,
        )
        cached = self._plans.get(key)
        if cached is not None and cached[1] == version:
            return cached[0]
        bucket = self._by_stream.get(interface, {}).get(stream)
        if not bucket:
            plan = _EMPTY_PLAN
        else:
            compiled = [
                _CompiledEntry(entry_id, profile, stream)
                for entry_id, profile in bucket.items()
            ]
            any_wants_all = any(e.wants_all for e in compiled)
            bound = frozenset().union(
                *(e.carried for e in compiled if not e.wants_all)
            )
            plan = (compiled, any_wants_all, bound)
        self._plans[key] = (plan, version)
        return plan

    # -- forwarding ------------------------------------------------------------

    def decide(self, interface: object, datagram: Datagram) -> ForwardDecision:
        """Should ``datagram`` be forwarded on ``interface``, and with
        which attributes retained?"""
        if not self._use_index:
            return self._decide_scan(interface, datagram)
        compiled, any_wants_all, bound = self._plan(interface, datagram.stream)
        if not compiled:
            return ForwardDecision(False)
        payload = datagram.payload
        needed: Set[str] = set()
        forward = False
        bound_size = len(bound)
        for entry in compiled:
            if not entry.covers(payload):
                continue
            forward = True
            if entry.wants_all:
                # Projection can no longer narrow: no later entry can
                # shrink the attribute set back below "everything".
                return ForwardDecision(True, None)
            needed |= entry.carried
            if not any_wants_all and len(needed) == bound_size:
                # The union upper bound is reached; the remaining
                # entries can only contribute attributes already kept.
                break
        if not forward:
            return ForwardDecision(False)
        return ForwardDecision(True, frozenset(needed))

    def decide_batch(
        self, interface: object, batch: ColumnBatch
    ) -> List[ForwardDecision]:
        """Vectorized :meth:`decide` over a same-stream batch.

        Element ``i`` equals ``decide(interface, batch.datagrams[i])``
        — each compiled entry contributes one column-mask evaluation
        for the whole batch instead of one scalar evaluation per
        datagram.
        """
        if not self._use_index:
            return [
                self._decide_scan(interface, datagram)
                for datagram in batch.datagrams
            ]
        compiled, __, __ = self._plan(interface, batch.stream)
        n = batch.n
        if not compiled:
            return [ForwardDecision(False)] * n
        forward = [False] * n
        wants_all = [False] * n
        needed: List[Optional[Set[str]]] = [None] * n
        for entry in compiled:
            mask = entry.batch_mask(batch)
            if entry.wants_all:
                for index, hit in enumerate(mask):
                    if hit:
                        forward[index] = True
                        wants_all[index] = True
            else:
                carried = entry.carried
                for index, hit in enumerate(mask):
                    if hit and not wants_all[index]:
                        forward[index] = True
                        acc = needed[index]
                        if acc is None:
                            needed[index] = set(carried)
                        else:
                            acc |= carried
        decisions: List[ForwardDecision] = []
        for index in range(n):
            if not forward[index]:
                decisions.append(ForwardDecision(False))
            elif wants_all[index]:
                decisions.append(ForwardDecision(True, None))
            else:
                decisions.append(ForwardDecision(True, frozenset(needed[index])))
        return decisions

    def _decide_scan(self, interface: object, datagram: Datagram) -> ForwardDecision:
        """The pre-index reference path: evaluate every profile behind
        the interface, whatever streams it requests."""
        needed: Set[str] = set()
        wants_all = False
        forward = False
        for profile in self._entries.get(interface, {}).values():
            if not profile.covers(datagram):
                continue
            forward = True
            projection = profile.projection_for(datagram.stream)
            if projection == ALL_ATTRIBUTES:
                wants_all = True
            else:
                needed |= projection
                # Keep attributes the downstream filters evaluate, or the
                # profile could no longer recognise the datagram at the
                # next hop after projection.
                for flt in profile.filters_for(datagram.stream):
                    needed |= flt.condition.referenced_terms()
        if not forward:
            return ForwardDecision(False)
        if wants_all:
            return ForwardDecision(True, None)
        return ForwardDecision(True, frozenset(needed))

    def local_deliveries(
        self, datagram: Datagram
    ) -> List[Tuple[str, Datagram]]:
        """(subscription_id, projected datagram) for local matches."""
        if not self._use_index:
            out: List[Tuple[str, Datagram]] = []
            for sid, profile in self._entries.get(self.LOCAL, {}).items():
                projected = profile.apply(datagram)
                if projected is not None:
                    out.append((sid, projected))
            return out
        compiled, __, __ = self._plan(self.LOCAL, datagram.stream)
        if not compiled:
            return []
        payload = datagram.payload
        out = []
        for entry in compiled:
            if not entry.covers(payload):
                continue
            if entry.wants_all:
                out.append((entry.entry_id, datagram))
            else:
                out.append((entry.entry_id, datagram.project(entry.projection)))
        return out

    def local_deliveries_batch(
        self, batch: ColumnBatch
    ) -> List[List[Tuple[str, Datagram]]]:
        """Vectorized :meth:`local_deliveries` over a same-stream batch.

        Element ``i`` equals ``local_deliveries(batch.datagrams[i])``
        (same subscriptions, same order — entries append in compiled
        install order).  Projection work is shared across the bucket's
        subscriptions: per datagram, each distinct projection set is
        materialised once and reused by every entry requesting it.
        """
        if not self._use_index:
            return [
                self.local_deliveries(datagram)
                for datagram in batch.datagrams
            ]
        compiled, __, __ = self._plan(self.LOCAL, batch.stream)
        out: List[List[Tuple[str, Datagram]]] = [[] for __ in range(batch.n)]
        if not compiled:
            return out
        datagrams = batch.datagrams
        #: per datagram, projection set -> the shared projected copy.
        projected: List[Optional[Dict[FrozenSet[str], Datagram]]] = [
            None
        ] * batch.n
        for entry in compiled:
            mask = entry.batch_mask(batch)
            entry_id = entry.entry_id
            if entry.wants_all:
                for index, hit in enumerate(mask):
                    if hit:
                        out[index].append((entry_id, datagrams[index]))
            else:
                keep = entry.projection
                for index, hit in enumerate(mask):
                    if not hit:
                        continue
                    cache = projected[index]
                    if cache is None:
                        cache = {}
                        projected[index] = cache
                    copy = cache.get(keep)
                    if copy is None:
                        copy = datagrams[index].project(keep)
                        cache[keep] = copy
                    out[index].append((entry_id, copy))
        return out
