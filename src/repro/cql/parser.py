"""Recursive-descent parser for the CQL-like surface syntax.

Grammar (case-insensitive keywords)::

    query       := SELECT select_list FROM stream_list [WHERE condition]
                   [GROUP BY attr_list]
    select_list := select_item ("," select_item)*
    select_item := qualifier "." "*"
                 | attr_ref [AS ident]
                 | AGGFUNC "(" ("*" | attr_ref) ")" [AS ident]
    stream_list := stream_ref ("," stream_ref)*
    stream_ref  := ident [window] [ident]          -- trailing ident = alias
    window      := "[" NOW "]" | "[" UNBOUNDED "]"
                 | "[" RANGE number [unit] "]"
    condition   := comparison (AND comparison)*
    comparison  := operand op operand
                 | operand BETWEEN operand AND operand
    operand     := number | string | [-] number
                 | attr_ref [("-") attr_ref]       -- attribute difference

Attribute differences (``O.timestamp - C.timestamp <= 0``) parse into
:class:`~repro.cql.predicates.DifferenceConstraint` atoms, which is how
the window re-tightening profiles of section 4 are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.cql.ast import (
    Aggregate,
    ContinuousQuery,
    NOW,
    QuerySource,
    SelectItem,
    Star,
    StreamRef,
    UNBOUNDED,
    Window,
    TIME_UNITS,
)
from repro.cql.lexer import Token, tokenize
from repro.cql.predicates import (
    Atom,
    AttrRef,
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
)

AGG_FUNCS = {"count", "sum", "avg", "min", "max"}

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


class ParseError(Exception):
    """Raised on any syntax error, with the offending position."""


@dataclass
class _Operand:
    """A parsed comparison operand: a constant, an attribute, or an
    attribute difference ``left - right``."""

    value: Union[int, float, str, None] = None
    attr: Optional[AttrRef] = None
    diff: Optional[Tuple[AttrRef, AttrRef]] = None
    pos: Optional[int] = None

    @property
    def is_constant(self) -> bool:
        return self.attr is None and self.diff is None


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (
            text is not None and token.text.lower() != text.lower()
        ):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} but found {token.text!r} at position {token.pos}"
            )
        return self._next()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (
            text is None or token.text.lower() == text.lower()
        ):
            return self._next()
        return None

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text.lower() == word

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> ContinuousQuery:
        self._expect("keyword", "select")
        select_items = self._select_list()
        self._expect("keyword", "from")
        streams = self._stream_list()
        predicate = Conjunction.true()
        where_atoms: List[Atom] = []
        if self._accept("keyword", "where"):
            where_atoms = self._condition()
            predicate = Conjunction.from_atoms(where_atoms)
        group_by: Tuple[AttrRef, ...] = ()
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = tuple(self._attr_list())
        self._expect("eof")
        return ContinuousQuery(
            select_items=tuple(select_items),
            streams=tuple(streams),
            predicate=predicate,
            group_by=group_by,
            source=QuerySource(self._text, tuple(where_atoms)),
        )

    def _select_list(self) -> List[SelectItem]:
        items = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token.kind == "ident" and token.text.lower() in AGG_FUNCS:
            after = self._tokens[self._pos + 1]
            if after.kind == "punct" and after.text == "(":
                return self._aggregate()
        ident = self._expect("ident")
        if self._accept("punct", "."):
            if self._accept("punct", "*"):
                return Star(ident.text, pos=ident.pos)
            attr_name = self._expect("ident")
            attr = AttrRef(ident.text, attr_name.text, pos=ident.pos)
        else:
            attr = AttrRef(None, ident.text, pos=ident.pos)
        if self._accept("keyword", "as"):
            # Output aliases on plain columns are accepted for CQL
            # compatibility but do not rename the output attribute.
            self._expect("ident")
        return attr

    def _aggregate(self) -> Aggregate:
        func_token = self._expect("ident")
        func = func_token.text.lower()
        self._expect("punct", "(")
        arg: Optional[AttrRef] = None
        if not self._accept("punct", "*"):
            arg = self._attr_ref()
        self._expect("punct", ")")
        output_name = None
        if self._accept("keyword", "as"):
            output_name = self._expect("ident").text
        return Aggregate(func, arg, output_name, pos=func_token.pos)

    def _attr_ref(self) -> AttrRef:
        first = self._expect("ident")
        if self._accept("punct", "."):
            second = self._expect("ident")
            return AttrRef(first.text, second.text, pos=first.pos)
        return AttrRef(None, first.text, pos=first.pos)

    def _attr_list(self) -> List[AttrRef]:
        attrs = [self._attr_ref()]
        while self._accept("punct", ","):
            attrs.append(self._attr_ref())
        return attrs

    def _stream_list(self) -> List[StreamRef]:
        streams = [self._stream_ref()]
        while self._accept("punct", ","):
            streams.append(self._stream_ref())
        return streams

    def _stream_ref(self) -> StreamRef:
        name_token = self._expect("ident")
        window = UNBOUNDED
        if self._accept("punct", "["):
            window = self._window_body()
            self._expect("punct", "]")
        alias = None
        if self._peek().kind == "ident":
            alias = self._next().text
        return StreamRef(name_token.text, window, alias, pos=name_token.pos)

    def _window_body(self) -> Window:
        if self._accept("keyword", "now"):
            return NOW
        if self._accept("keyword", "unbounded"):
            return UNBOUNDED
        self._expect("keyword", "range")
        number = self._expect("number")
        seconds = float(number.value)  # type: ignore[arg-type]
        unit_token = self._peek()
        if unit_token.kind == "ident" and unit_token.text.lower() in TIME_UNITS:
            self._next()
            seconds *= TIME_UNITS[unit_token.text.lower()]
        return Window(seconds)

    # -- WHERE clause ---------------------------------------------------------------

    def _condition(self) -> List[Atom]:
        atoms = self._comparison()
        while self._accept("keyword", "and"):
            atoms.extend(self._comparison())
        return atoms

    def _comparison(self) -> List[Atom]:
        left = self._operand()
        if self._accept("keyword", "between"):
            lo = self._operand()
            self._expect("keyword", "and")
            hi = self._operand()
            if not (lo.is_constant and hi.is_constant):
                raise ParseError("BETWEEN bounds must be constants")
            return self._make_atoms(left, ">=", lo) + self._make_atoms(
                left, "<=", hi
            )
        op_token = self._expect("op")
        right = self._operand()
        return self._make_atoms(left, op_token.text, right)

    def _operand(self) -> _Operand:
        token = self._peek()
        if token.kind in ("number", "string"):
            self._next()
            return _Operand(value=token.value, pos=token.pos)
        if token.kind == "punct" and token.text in ("-", "+"):
            sign = -1 if token.text == "-" else 1
            self._next()
            number = self._expect("number")
            return _Operand(value=sign * number.value, pos=token.pos)  # type: ignore[operator]
        attr = self._attr_ref()
        if self._peek().kind == "punct" and self._peek().text == "-":
            after = self._tokens[self._pos + 1]
            if after.kind == "ident":
                self._next()
                other = self._attr_ref()
                return _Operand(diff=(attr, other), pos=attr.pos)
        return _Operand(attr=attr, pos=attr.pos)

    def _make_atoms(self, left: _Operand, op: str, right: _Operand) -> List[Atom]:
        if left.is_constant and right.is_constant:
            raise ParseError("comparison between two constants is not allowed")
        if left.is_constant:
            # Flip "10 < R.A" into "R.A > 10".
            left, right, op = right, left, _FLIPPED[op]
        if left.diff is not None:
            if not right.is_constant:
                raise ParseError(
                    "attribute differences may only be compared to constants"
                )
            return [self._diff_atom(left.diff, op, right.value, left.pos)]
        assert left.attr is not None
        if right.is_constant:
            return [Comparison(left.attr.key, op, right.value, pos=left.pos)]
        if right.diff is not None:
            raise ParseError(
                "attribute differences may only appear on one side"
            )
        assert right.attr is not None
        if op != "=":
            raise ParseError(
                f"only equality joins between attributes are supported, got {op!r}"
            )
        return [JoinPredicate(left.attr.key, right.attr.key, pos=left.pos)]

    def _diff_atom(
        self,
        diff: Tuple[AttrRef, AttrRef],
        op: str,
        value: object,
        pos: Optional[int] = None,
    ) -> DifferenceConstraint:
        left, right = diff
        if op == "=":
            interval = Interval.point(value)  # type: ignore[arg-type]
        elif op == "<":
            interval = Interval.at_most(value, strict=True)  # type: ignore[arg-type]
        elif op == "<=":
            interval = Interval.at_most(value)  # type: ignore[arg-type]
        elif op == ">":
            interval = Interval.at_least(value, strict=True)  # type: ignore[arg-type]
        elif op == ">=":
            interval = Interval.at_least(value)  # type: ignore[arg-type]
        else:
            raise ParseError("'!=' is not supported on attribute differences")
        return DifferenceConstraint(left.key, right.key, interval, pos=pos)


def parse_query(text: str, name: Optional[str] = None) -> ContinuousQuery:
    """Parse CQL-like ``text`` into a :class:`ContinuousQuery`.

    >>> q = parse_query(
    ...     "SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, "
    ...     "ClosedAuction [Now] C WHERE O.itemID = C.itemID"
    ... )
    >>> q.window_of("O").size
    10800.0
    """
    query = _Parser(text).parse()
    if name is not None:
        query = ContinuousQuery(
            query.select_items,
            query.streams,
            query.predicate,
            query.group_by,
            name=name,
            source=query.source,
        )
    return query
