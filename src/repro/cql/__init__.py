"""CQL-like continuous query language substrate.

COSMOS accepts user queries written in an SQL-like continuous query
language modelled on CQL (the Stanford STREAM language).  This package
provides the pieces every other layer builds on:

* :mod:`repro.cql.schema` -- attribute types, stream schemas and the
  stream catalog.
* :mod:`repro.cql.predicates` -- the predicate algebra (atomic
  constraints, conjunctions, implication and satisfiability tests) used
  both by the content-based network filters and by the query-containment
  machinery of the query layer.
* :mod:`repro.cql.ast` -- the query abstract syntax tree: windowed
  stream references, select-project-join queries and windowed
  aggregates.
* :mod:`repro.cql.lexer` / :mod:`repro.cql.parser` -- the SQL-like
  surface syntax (``SELECT .. FROM S [Range 3 Hour] .. WHERE ..``).
* :mod:`repro.cql.text` -- rendering an AST back to CQL text.
"""

from __future__ import annotations

from repro.cql.ast import (
    Aggregate,
    ContinuousQuery,
    StreamRef,
    Window,
    NOW,
    UNBOUNDED,
)
from repro.cql.parser import parse_query
from repro.cql.predicates import (
    AttrRef,
    Comparison,
    Conjunction,
    Interval,
    JoinPredicate,
)
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.cql.text import to_cql

__all__ = [
    "Aggregate",
    "Attribute",
    "AttrRef",
    "Catalog",
    "Comparison",
    "Conjunction",
    "ContinuousQuery",
    "Interval",
    "JoinPredicate",
    "NOW",
    "StreamRef",
    "StreamSchema",
    "UNBOUNDED",
    "Window",
    "parse_query",
    "to_cql",
]
