"""Abstract syntax of continuous queries.

The fragment implemented is the one the paper's query layer reasons
about: select-project-join queries over windowed streams, optionally
with grouped aggregation, written in a CQL-like surface syntax:

.. code-block:: sql

    SELECT O.*, C.buyerID, C.timestamp
    FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C
    WHERE O.itemID = C.itemID

Windows are the time-based sliding windows of CQL: ``[Range T]``,
``[Now]`` (= ``Range 0``) and ``[Unbounded]`` (= ``Range`` infinity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cql.predicates import Atom, AttrRef, Conjunction, PredicateError
from repro.cql.schema import Catalog, SchemaError, StreamSchema


class QueryError(Exception):
    """Raised for malformed queries (unknown streams, bad projections)."""


# ---------------------------------------------------------------------------
# Windows
# ---------------------------------------------------------------------------

#: Time-unit multipliers to seconds accepted in window specifications.
TIME_UNITS = {
    "second": 1.0,
    "seconds": 1.0,
    "minute": 60.0,
    "minutes": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "day": 86400.0,
    "days": 86400.0,
}


@dataclass(frozen=True, order=True)
class Window:
    """A time-based sliding window of ``size`` seconds.

    ``w(T)`` defines, at every application time instant, the temporal
    relation of tuples that arrived within the last ``T`` time units.
    ``Window(0)`` is CQL's ``[Now]``; ``Window(math.inf)`` is
    ``[Unbounded]``.
    """

    size: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise QueryError(f"window size must be non-negative, got {self.size}")

    @property
    def is_now(self) -> bool:
        return self.size == 0

    @property
    def is_unbounded(self) -> bool:
        return math.isinf(self.size)

    def contains(self, other: "Window") -> bool:
        """Window containment: every tuple visible in ``other`` is visible here."""
        return self.size >= other.size

    def __str__(self) -> str:
        if self.is_now:
            return "[Now]"
        if self.is_unbounded:
            return "[Unbounded]"
        for unit, mult in (("Day", 86400.0), ("Hour", 3600.0), ("Minute", 60.0)):
            if self.size % mult == 0:
                count = int(self.size // mult)
                return f"[Range {count} {unit}]"
        return f"[Range {self.size:g} Second]"


NOW = Window(0.0)
UNBOUNDED = Window(math.inf)


# ---------------------------------------------------------------------------
# Stream references and select items
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamRef:
    """One entry of the FROM clause: a stream, its window and its alias.

    ``pos`` is the character offset of the reference in the query text
    it was parsed from (``None`` for programmatically built references);
    it is excluded from equality so provenance never affects semantics.
    """

    stream: str
    window: Window = UNBOUNDED
    alias: Optional[str] = None
    pos: Optional[int] = field(default=None, compare=False)

    @property
    def name(self) -> str:
        """The name predicates use to qualify this stream's attributes."""
        return self.alias if self.alias is not None else self.stream

    def __str__(self) -> str:
        alias = f" {self.alias}" if self.alias else ""
        return f"{self.stream} {self.window}{alias}"


@dataclass(frozen=True)
class Star:
    """``Q.*`` in a SELECT list (all attributes of one stream reference)."""

    qualifier: str
    pos: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.qualifier}.*"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate select item, e.g. ``AVG(S.temperature) AS avg_temp``."""

    func: str
    arg: Optional[AttrRef]  # None only for COUNT(*)
    output_name: Optional[str] = None
    pos: Optional[int] = field(default=None, compare=False)

    FUNCS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func not in self.FUNCS:
            raise QueryError(f"unknown aggregate function {self.func!r}")
        if self.arg is None and self.func != "count":
            raise QueryError(f"{self.func.upper()}(*) is not supported")

    @property
    def name(self) -> str:
        """The output attribute name of this aggregate."""
        if self.output_name:
            return self.output_name
        arg = "star" if self.arg is None else self.arg.key.replace(".", "_")
        return f"{self.func}_{arg}"

    def __str__(self) -> str:
        arg = "*" if self.arg is None else self.arg.key
        rendered = f"{self.func.upper()}({arg})"
        if self.output_name:
            rendered += f" AS {self.output_name}"
        return rendered


SelectItem = Union[Star, AttrRef, Aggregate]


@dataclass(frozen=True)
class QuerySource:
    """Provenance of a parsed query.

    ``text`` is the original CQL surface text; ``where_atoms`` are the
    raw WHERE-clause atoms exactly as written (with their source
    offsets), *before* :meth:`Conjunction.from_atoms` normalised them
    (normalisation intersects same-term intervals, which erases
    redundant conjuncts the static analyzer wants to warn about).
    """

    text: str
    where_atoms: Tuple[Atom, ...] = ()

    def span(self, pos: Optional[int], width: int = 20) -> str:
        """A short excerpt of the query text around ``pos``."""
        if pos is None or not (0 <= pos < len(self.text)):
            return ""
        return self.text[pos : pos + width]


# ---------------------------------------------------------------------------
# Continuous queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContinuousQuery:
    """A continuous select-project-join (optionally aggregate) query.

    ``predicate`` is a :class:`~repro.cql.predicates.Conjunction` over
    qualified terms (``"O.itemID"``): it bundles the selection
    predicates, the equijoin predicates and any explicit
    timestamp-difference constraints of the WHERE clause.
    """

    select_items: Tuple[SelectItem, ...]
    streams: Tuple[StreamRef, ...]
    predicate: Conjunction = field(default_factory=Conjunction.true)
    group_by: Tuple[AttrRef, ...] = ()
    name: Optional[str] = None
    #: Parse provenance (original text + raw WHERE atoms with offsets);
    #: dropped by rewrites such as :meth:`canonical`, excluded from
    #: equality, and ``None`` for programmatically built queries.
    source: Optional[QuerySource] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.streams:
            raise QueryError("a query must reference at least one stream")
        if not self.select_items:
            raise QueryError("a query must select at least one item")
        names = [ref.name for ref in self.streams]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate stream reference names in FROM: {names}")
        aggregates = [i for i in self.select_items if isinstance(i, Aggregate)]
        if aggregates and any(
            isinstance(i, Star) for i in self.select_items
        ):
            raise QueryError("cannot mix aggregates with Q.* select items")

    # -- basic structure ---------------------------------------------------------

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, Aggregate) for item in self.select_items)

    @property
    def aggregates(self) -> Tuple[Aggregate, ...]:
        return tuple(i for i in self.select_items if isinstance(i, Aggregate))

    @property
    def stream_names(self) -> Tuple[str, ...]:
        """Underlying stream names, in FROM order."""
        return tuple(ref.stream for ref in self.streams)

    @property
    def reference_names(self) -> Tuple[str, ...]:
        """Qualifier names (aliases) in FROM order."""
        return tuple(ref.name for ref in self.streams)

    def stream_ref(self, qualifier: str) -> StreamRef:
        for ref in self.streams:
            if ref.name == qualifier:
                return ref
        raise QueryError(f"query has no stream reference named {qualifier!r}")

    @property
    def has_self_join(self) -> bool:
        return len(set(self.stream_names)) != len(self.stream_names)

    # -- resolution against a catalog -----------------------------------------------

    def validate(self, catalog: Catalog) -> None:
        """Check every stream and attribute reference against ``catalog``."""
        for ref in self.streams:
            if ref.stream not in catalog:
                raise QueryError(f"unknown stream {ref.stream!r}")
        for attr in self.referenced_attributes():
            self._check_attr(attr, catalog)
        for attr in self.group_by:
            self._check_attr(attr, catalog)

    def _check_attr(self, attr: AttrRef, catalog: Catalog) -> None:
        if attr.qualifier is None:
            raise QueryError(f"attribute {attr.name!r} must be qualified")
        ref = self.stream_ref(attr.qualifier)
        schema = catalog.get(ref.stream)
        if not schema.has_attribute(attr.name):
            raise QueryError(
                f"stream {ref.stream!r} has no attribute {attr.name!r}"
            )

    def referenced_attributes(self) -> List[AttrRef]:
        """All attribute references in SELECT and WHERE (not Q.* expansions)."""
        out: List[AttrRef] = []
        for item in self.select_items:
            if isinstance(item, AttrRef):
                out.append(item)
            elif isinstance(item, Aggregate) and item.arg is not None:
                out.append(item.arg)
        # Sorted: referenced_terms() is a set; the output order feeds
        # profile composition and diagnostics.
        for term in sorted(self.predicate.referenced_terms()):
            out.append(AttrRef.parse(term))
        out.extend(self.group_by)
        return out

    def projected_attributes(self, catalog: Catalog) -> List[AttrRef]:
        """The SELECT list with every ``Q.*`` expanded, in output order.

        Aggregate queries have no projected source attributes in this
        sense (their output attributes are aggregate/grouping columns);
        for them this returns the grouping attributes followed by the
        aggregate argument attributes.
        """
        out: List[AttrRef] = []
        if self.is_aggregate:
            out.extend(self.group_by)
            for agg in self.aggregates:
                if agg.arg is not None:
                    out.append(agg.arg)
            return out
        for item in self.select_items:
            if isinstance(item, Star):
                ref = self.stream_ref(item.qualifier)
                schema = catalog.get(ref.stream)
                for attr_name in schema.attribute_names:
                    out.append(AttrRef(item.qualifier, attr_name))
            elif isinstance(item, AttrRef):
                out.append(item)
        return out

    def output_attribute_names(self, catalog: Catalog) -> List[str]:
        """Names of the attributes of this query's result stream.

        SPJ queries name their outputs with qualified source names
        (``"O.itemID"``); aggregate queries use grouping attribute names
        plus aggregate output names.
        """
        if self.is_aggregate:
            names = [attr.key for attr in self.group_by]
            names.extend(agg.name for agg in self.aggregates)
            return names
        return [attr.key for attr in self.projected_attributes(catalog)]

    # -- canonicalisation -------------------------------------------------------------

    def canonical(self, catalog: Catalog) -> "ContinuousQuery":
        """Rewrite the query so every qualifier is the stream's own name.

        Canonicalisation makes queries from different users directly
        comparable (the containment and merging machinery assumes it).
        Self-joins cannot be canonicalised this way and raise
        :class:`QueryError`; the grouping optimizer simply never groups
        them.
        """
        if self.has_self_join:
            raise QueryError("cannot canonicalise a self-join query")
        if all(ref.alias is None for ref in self.streams):
            return self  # already canonical
        mapping: Dict[str, str] = {}
        term_mapping: Dict[str, str] = {}
        for ref in self.streams:
            mapping[ref.name] = ref.stream
            schema = catalog.get(ref.stream) if ref.stream in catalog else None
            attr_names: Iterable[str]
            if schema is not None:
                attr_names = schema.attribute_names
            else:
                attr_names = [
                    AttrRef.parse(t).name
                    for t in sorted(self.predicate.referenced_terms())
                    if AttrRef.parse(t).qualifier == ref.name
                ]
            for attr_name in attr_names:
                term_mapping[f"{ref.name}.{attr_name}"] = f"{ref.stream}.{attr_name}"

        def remap_attr(attr: AttrRef) -> AttrRef:
            if attr.qualifier in mapping:
                return AttrRef(mapping[attr.qualifier], attr.name)
            return attr

        select_items: List[SelectItem] = []
        for item in self.select_items:
            if isinstance(item, Star):
                select_items.append(Star(mapping.get(item.qualifier, item.qualifier)))
            elif isinstance(item, AttrRef):
                select_items.append(remap_attr(item))
            else:
                arg = remap_attr(item.arg) if item.arg is not None else None
                select_items.append(Aggregate(item.func, arg, item.output_name))
        streams = tuple(
            StreamRef(ref.stream, ref.window, alias=None) for ref in self.streams
        )
        return ContinuousQuery(
            select_items=tuple(select_items),
            streams=streams,
            predicate=self.predicate.rename(term_mapping),
            group_by=tuple(remap_attr(a) for a in self.group_by),
            name=self.name,
        )

    # -- window manipulation -------------------------------------------------------------

    def with_windows(self, windows: Mapping[str, Window]) -> "ContinuousQuery":
        """Return a copy with the windows of the named references replaced."""
        streams = tuple(
            StreamRef(ref.stream, windows.get(ref.name, ref.window), ref.alias)
            for ref in self.streams
        )
        return ContinuousQuery(
            self.select_items, streams, self.predicate, self.group_by, self.name
        )

    def unbounded(self) -> "ContinuousQuery":
        """``Q^inf``: this query with every window set to infinity (Theorem 1/2)."""
        return self.with_windows({ref.name: UNBOUNDED for ref in self.streams})

    def window_of(self, qualifier: str) -> Window:
        return self.stream_ref(qualifier).window

    def __str__(self) -> str:
        from repro.cql.text import to_cql

        return to_cql(self)
