"""Tokenizer for the CQL-like surface syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union


class LexError(Exception):
    """Raised when the input contains a character no token matches."""


#: Token kinds produced by the lexer.
KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "by",
    "as",
    "and",
    "range",
    "now",
    "unbounded",
    "between",
}

PUNCT = {",", "(", ")", "[", "]", ".", "*", "-", "+"}

OPERATORS = {"<", "<=", ">", ">=", "=", "!=", "<>"}


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is ``ident``/``keyword``/``number``/
    ``string``/``op``/``punct``/``eof``."""

    kind: str
    text: str
    value: Union[int, float, str, None] = None
    pos: int = 0

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``, appending a trailing ``eof`` token."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, i + 1)
            if end < 0:
                raise LexError(f"unterminated string literal at position {i}")
            literal = text[i + 1 : end]
            tokens.append(Token("string", text[i : end + 1], literal, i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot followed by a non-digit is punctuation, not a
                    # decimal point (e.g. "3.Hour" never occurs, but "R.A"
                    # style never reaches here because idents match first).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            raw = text[i:j]
            value: Union[int, float] = float(raw) if "." in raw else int(raw)
            tokens.append(Token("number", raw, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, word, word, i))
            i = j
            continue
        two = text[i : i + 2]
        if two in OPERATORS:
            canonical = "!=" if two == "<>" else two
            tokens.append(Token("op", canonical, canonical, i))
            i += 2
            continue
        if ch in OPERATORS:
            tokens.append(Token("op", ch, ch, i))
            i += 1
            continue
        if ch in PUNCT:
            tokens.append(Token("punct", ch, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", None, n))
    return tokens
