"""Stream schemas and the stream catalog.

Streams in COSMOS are modelled as relations that are continuously
appended (section 3 of the paper).  Every stream has a unique name and a
schema: an ordered list of typed attributes.  The catalog is the
process-local view of all known schemas; in the distributed system it is
either flooded to every node or stored in a DHT
(:mod:`repro.cbn.schema_registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Attribute type names understood by the system.  ``int`` and ``float``
#: support range predicates; ``str`` supports equality predicates;
#: ``timestamp`` behaves like ``float`` but is recognised as the stream
#: time domain by the window machinery.
ATTRIBUTE_TYPES = ("int", "float", "str", "timestamp")

#: Default wire width (bytes) charged per attribute type when estimating
#: stream rates.  These mirror typical fixed-width encodings; ``str``
#: uses an average payload size.
DEFAULT_WIDTHS = {"int": 4, "float": 8, "str": 16, "timestamp": 8}


class SchemaError(Exception):
    """Raised for malformed schemas or unknown streams/attributes."""


@dataclass(frozen=True)
class Attribute:
    """A single typed attribute of a stream schema.

    ``lo``/``hi`` optionally record the value domain of numeric
    attributes; the cost model uses them to estimate predicate
    selectivity, and the workload generators use them to draw constants.
    """

    name: str
    type: str = "float"
    lo: Optional[float] = None
    hi: Optional[float] = None
    width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.type not in ATTRIBUTE_TYPES:
            raise SchemaError(
                f"unknown attribute type {self.type!r} for {self.name!r}; "
                f"expected one of {ATTRIBUTE_TYPES}"
            )
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise SchemaError(
                f"attribute {self.name!r} has empty domain [{self.lo}, {self.hi}]"
            )

    @property
    def byte_width(self) -> int:
        """Wire width in bytes used for rate estimation."""
        if self.width is not None:
            return self.width
        return DEFAULT_WIDTHS[self.type]

    @property
    def is_numeric(self) -> bool:
        return self.type in ("int", "float", "timestamp")


@dataclass(frozen=True)
class StreamSchema:
    """Schema of a named stream: an ordered tuple of attributes.

    A ``rate`` (tuples per second) may be attached; it seeds the cost
    model's estimate of the stream's data rate.
    """

    name: str
    attributes: Tuple[Attribute, ...]
    rate: float = 1.0

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute],
        rate: float = 1.0,
    ) -> None:
        attrs = tuple(attributes)
        seen = set()
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in stream {name!r}"
                )
            seen.add(attr.name)
        if rate <= 0:
            raise SchemaError(f"stream {name!r} must have a positive rate")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "rate", float(rate))

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising :class:`SchemaError`."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"stream {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    @property
    def tuple_width(self) -> int:
        """Total wire width of one tuple, in bytes."""
        return sum(attr.byte_width for attr in self.attributes)

    def width_of(self, attribute_names: Iterable[str]) -> int:
        """Wire width of a projection of this schema, in bytes."""
        return sum(self.attribute(name).byte_width for name in attribute_names)


class Catalog:
    """A mutable registry of stream schemas keyed by stream name.

    The catalog is deliberately simple: downstream layers (the CBN
    schema registry, processors, the workload generators) each hold a
    catalog and keep it in sync through advertisement messages.
    """

    def __init__(self, schemas: Iterable[StreamSchema] = ()) -> None:
        self._schemas: Dict[str, StreamSchema] = {}
        #: Bumped on every mutation; caches derived from schema contents
        #: (e.g. the CBN's per-stream width tables) key on it.
        self.version = 0
        for schema in schemas:
            self.register(schema)

    def register(self, schema: StreamSchema) -> None:
        """Register (or replace) the schema of a stream."""
        self._schemas[schema.name] = schema
        self.version += 1

    def unregister(self, name: str) -> None:
        if self._schemas.pop(name, None) is not None:
            self.version += 1

    def get(self, name: str) -> StreamSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"unknown stream {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[StreamSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    @property
    def stream_names(self) -> List[str]:
        return sorted(self._schemas)

    def copy(self) -> "Catalog":
        return Catalog(self._schemas.values())
