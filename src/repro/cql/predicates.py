"""Predicate algebra shared by the CBN filters and the query layer.

Both layers of COSMOS reason about the *same* class of predicates:

* CBN datagram filters (section 3.1) are conjunctions of constraints on
  the attribute values of a single stream's datagrams.
* Query selection/join predicates (section 4) are conjunctions of
  constraints over the attributes of the referenced streams, and query
  containment reduces to implication between such conjunctions.

To serve both, the algebra here is defined over generic string *terms*:
the query layer uses qualified attribute names (``"O.timestamp"``), the
CBN layer uses a datagram's attribute names directly.  A
:class:`Conjunction` stores

* one :class:`Interval` of allowed values per constrained term,
* a set of excluded values (``!=``) per term,
* equality links between terms (equijoin predicates ``a = b``), and
* difference constraints ``lo <= a - b <= hi`` (the timestamp-window
  constraints of Lemma 1).

The implication test (:meth:`Conjunction.implies`) is *sound but not
complete*: when it answers ``True`` the implication genuinely holds;
a ``False`` answer may occasionally be a missed implication for exotic
combinations of difference constraints.  This is the standard trade-off
for subscription-subsumption checks in content-based networks and is
safe for COSMOS: a missed implication only costs a merging opportunity,
never correctness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

Value = Union[int, float, str]

COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "!=")


class PredicateError(Exception):
    """Raised for malformed predicates (mixed types, bad operators)."""


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A (possibly half-open, possibly unbounded) interval of values.

    ``lo is None`` means unbounded below, ``hi is None`` unbounded
    above.  ``lo_strict``/``hi_strict`` mark open endpoints.  Values may
    be numbers or strings (strings compare lexicographically), but a
    single interval must not mix the two.
    """

    lo: Optional[Value] = None
    hi: Optional[Value] = None
    lo_strict: bool = False
    hi_strict: bool = False

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None:
            if isinstance(self.lo, str) != isinstance(self.hi, str):
                raise PredicateError(
                    f"interval mixes string and numeric bounds: {self}"
                )

    # -- classification -----------------------------------------------------

    @property
    def is_universal(self) -> bool:
        """True when the interval admits every value."""
        return self.lo is None and self.hi is None

    @property
    def is_empty(self) -> bool:
        """True when no value can satisfy the interval."""
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        if self.lo == self.hi and (self.lo_strict or self.hi_strict):
            return True
        return False

    @property
    def is_point(self) -> bool:
        """True when exactly one value satisfies the interval."""
        return (
            self.lo is not None
            and self.lo == self.hi
            and not self.lo_strict
            and not self.hi_strict
        )

    # -- membership and ordering ---------------------------------------------

    def contains_value(self, value: Value) -> bool:
        if self.lo is not None:
            if isinstance(value, str) != isinstance(self.lo, str):
                return False
            if value < self.lo or (value == self.lo and self.lo_strict):
                return False
        if self.hi is not None:
            if isinstance(value, str) != isinstance(self.hi, str):
                return False
            if value > self.hi or (value == self.hi and self.hi_strict):
                return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        """True when every value of ``other`` lies inside ``self``."""
        if other.is_empty:
            return True
        if self.lo is not None:
            if other.lo is None:
                return False
            if other.lo < self.lo:
                return False
            if other.lo == self.lo and self.lo_strict and not other.lo_strict:
                return False
        if self.hi is not None:
            if other.hi is None:
                return False
            if other.hi > self.hi:
                return False
            if other.hi == self.hi and self.hi_strict and not other.hi_strict:
                return False
        return True

    # -- lattice operations ---------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        """Largest interval contained in both operands."""
        lo, lo_strict = self.lo, self.lo_strict
        if other.lo is not None and (
            lo is None
            or other.lo > lo
            or (other.lo == lo and other.lo_strict)
        ):
            lo, lo_strict = other.lo, other.lo_strict
        hi, hi_strict = self.hi, self.hi_strict
        if other.hi is not None and (
            hi is None
            or other.hi < hi
            or (other.hi == hi and other.hi_strict)
        ):
            hi, hi_strict = other.hi, other.hi_strict
        return Interval(lo, hi, lo_strict, hi_strict)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands (convex hull)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        if self.lo is None or other.lo is None:
            lo, lo_strict = None, False
        elif self.lo < other.lo:
            lo, lo_strict = self.lo, self.lo_strict
        elif other.lo < self.lo:
            lo, lo_strict = other.lo, other.lo_strict
        else:
            lo, lo_strict = self.lo, self.lo_strict and other.lo_strict
        if self.hi is None or other.hi is None:
            hi, hi_strict = None, False
        elif self.hi > other.hi:
            hi, hi_strict = self.hi, self.hi_strict
        elif other.hi > self.hi:
            hi, hi_strict = other.hi, other.hi_strict
        else:
            hi, hi_strict = self.hi, self.hi_strict and other.hi_strict
        return Interval(lo, hi, lo_strict, hi_strict)

    def shift(self, delta: float) -> "Interval":
        """Interval translated by ``delta`` (numeric intervals only)."""
        lo = None if self.lo is None else self.lo + delta
        hi = None if self.hi is None else self.hi + delta
        return Interval(lo, hi, self.lo_strict, self.hi_strict)

    def negate(self) -> "Interval":
        """The interval ``{-v : v in self}`` (numeric intervals only)."""
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return Interval(lo, hi, self.hi_strict, self.lo_strict)

    @staticmethod
    def universal() -> "Interval":
        return Interval()

    @staticmethod
    def point(value: Value) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def at_least(value: Value, strict: bool = False) -> "Interval":
        return Interval(lo=value, lo_strict=strict)

    @staticmethod
    def at_most(value: Value, strict: bool = False) -> "Interval":
        return Interval(hi=value, hi_strict=strict)

    def __str__(self) -> str:
        left = "(" if self.lo_strict else "["
        right = ")" if self.hi_strict else "]"
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        return f"{left}{lo}, {hi}{right}"


# ---------------------------------------------------------------------------
# Atomic predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttrRef:
    """A qualified attribute reference, e.g. ``O.timestamp``.

    ``qualifier`` is the stream reference name (alias or stream name);
    it may be ``None`` for already-flat attribute names such as those of
    CBN datagrams.  :attr:`key` is the canonical term string used by the
    predicate algebra.  ``pos`` is the character offset of the reference
    in the query text it was parsed from (``None`` for programmatically
    built references); it is excluded from equality so provenance never
    affects predicate semantics.
    """

    qualifier: Optional[str]
    name: str
    pos: Optional[int] = field(default=None, compare=False)

    @property
    def key(self) -> str:
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"

    @staticmethod
    def parse(text: str) -> "AttrRef":
        """Parse ``"O.timestamp"`` or a bare ``"temperature"``."""
        if "." in text:
            qualifier, __, name = text.partition(".")
            return AttrRef(qualifier, name)
        return AttrRef(None, text)

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class Comparison:
    """An atomic comparison of a term against a constant: ``term op value``."""

    term: str
    op: str
    value: Value
    pos: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.term} {self.op} {self.value!r}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equality between two terms: ``left = right`` (equijoin)."""

    left: str
    right: str
    pos: Optional[int] = field(default=None, compare=False)

    def normalized(self) -> Tuple[str, str]:
        return (self.left, self.right) if self.left <= self.right else (self.right, self.left)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class DifferenceConstraint:
    """A bound on the difference of two terms: ``left - right in interval``.

    This is the shape of the window re-tightening constraints produced by
    Lemma 1, e.g. ``-3h <= O.timestamp - C.timestamp <= 0``.
    """

    left: str
    right: str
    interval: Interval
    pos: Optional[int] = field(default=None, compare=False)

    def normalized(self) -> Tuple[Tuple[str, str], Interval]:
        """Canonical orientation: terms in lexicographic order."""
        if self.left <= self.right:
            return (self.left, self.right), self.interval
        return (self.right, self.left), self.interval.negate()

    def __str__(self) -> str:
        return f"{self.left} - {self.right} in {self.interval}"


Atom = Union[Comparison, JoinPredicate, DifferenceConstraint]


# ---------------------------------------------------------------------------
# Conjunctions
# ---------------------------------------------------------------------------


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)

    def groups(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for item in list(self._parent):
            out.setdefault(self.find(item), set()).add(item)
        return out


class Conjunction:
    """An immutable conjunction of atomic predicates over string terms.

    The empty conjunction is the predicate ``TRUE``.  Construct from
    atoms with :meth:`from_atoms`, combine with :meth:`and_`, weaken
    with :meth:`hull`, compare with :meth:`implies`, and evaluate
    against a value binding with :meth:`evaluate`.
    """

    __slots__ = ("_intervals", "_excluded", "_links", "_diffs")

    def __init__(
        self,
        intervals: Optional[Mapping[str, Interval]] = None,
        excluded: Optional[Mapping[str, FrozenSet[Value]]] = None,
        links: Optional[Iterable[Tuple[str, str]]] = None,
        diffs: Optional[Mapping[Tuple[str, str], Interval]] = None,
    ) -> None:
        self._intervals: Dict[str, Interval] = {
            term: iv
            for term, iv in (intervals or {}).items()
            if not iv.is_universal
        }
        self._excluded: Dict[str, FrozenSet[Value]] = {
            term: vals for term, vals in (excluded or {}).items() if vals
        }
        self._links: FrozenSet[Tuple[str, str]] = frozenset(
            (a, b) if a <= b else (b, a) for a, b in (links or ()) if a != b
        )
        self._diffs: Dict[Tuple[str, str], Interval] = {
            pair: iv
            for pair, iv in (diffs or {}).items()
            if not iv.is_universal
        }

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def true() -> "Conjunction":
        """The empty conjunction (always satisfied)."""
        return Conjunction()

    @staticmethod
    def from_atoms(atoms: Iterable[Atom]) -> "Conjunction":
        """Build a conjunction from comparison/join/difference atoms."""
        intervals: Dict[str, Interval] = {}
        excluded: Dict[str, Set[Value]] = {}
        links: List[Tuple[str, str]] = []
        diffs: Dict[Tuple[str, str], Interval] = {}
        for atom in atoms:
            if isinstance(atom, Comparison):
                iv = _comparison_interval(atom)
                if iv is None:
                    excluded.setdefault(atom.term, set()).add(atom.value)
                else:
                    prev = intervals.get(atom.term, Interval.universal())
                    intervals[atom.term] = prev.intersect(iv)
            elif isinstance(atom, JoinPredicate):
                links.append(atom.normalized())
            elif isinstance(atom, DifferenceConstraint):
                pair, iv = atom.normalized()
                prev = diffs.get(pair, Interval.universal())
                diffs[pair] = prev.intersect(iv)
            else:
                raise PredicateError(f"unknown atom type: {atom!r}")
        return Conjunction(
            intervals,
            {term: frozenset(vals) for term, vals in excluded.items()},
            links,
            diffs,
        )

    # -- accessors -------------------------------------------------------------

    @property
    def intervals(self) -> Mapping[str, Interval]:
        return dict(self._intervals)

    @property
    def excluded(self) -> Mapping[str, FrozenSet[Value]]:
        return dict(self._excluded)

    @property
    def links(self) -> FrozenSet[Tuple[str, str]]:
        return self._links

    @property
    def diffs(self) -> Mapping[Tuple[str, str], Interval]:
        return dict(self._diffs)

    @property
    def is_true(self) -> bool:
        """True when this conjunction is the trivial predicate ``TRUE``."""
        return not (self._intervals or self._excluded or self._links or self._diffs)

    def referenced_terms(self) -> Set[str]:
        """All terms mentioned by any atom of this conjunction."""
        terms: Set[str] = set(self._intervals) | set(self._excluded)
        for a, b in self._links:
            terms.update((a, b))
        for a, b in self._diffs:
            terms.update((a, b))
        return terms

    # -- combination ------------------------------------------------------------

    def and_(self, other: "Conjunction") -> "Conjunction":
        """Conjunction of both operands (tighter than each)."""
        intervals = dict(self._intervals)
        for term, iv in other._intervals.items():
            intervals[term] = intervals.get(term, Interval.universal()).intersect(iv)
        excluded: Dict[str, FrozenSet[Value]] = dict(self._excluded)
        for term, vals in other._excluded.items():
            excluded[term] = excluded.get(term, frozenset()) | vals
        links = set(self._links) | set(other._links)
        diffs = dict(self._diffs)
        for pair, iv in other._diffs.items():
            diffs[pair] = diffs.get(pair, Interval.universal()).intersect(iv)
        return Conjunction(intervals, excluded, links, diffs)

    def hull(self, other: "Conjunction") -> "Conjunction":
        """A conjunction implied by *both* operands (their "loosening").

        This is the merge step of representative-query composition:
        per-term interval hulls, the intersection of the exclusion sets,
        only the equality links present in both, and per-pair hulls of
        the difference constraints.  The result is the tightest
        conjunction in our fragment that both operands imply.
        """
        self_c, other_c = self.closure(), other.closure()
        intervals: Dict[str, Interval] = {}
        for term in set(self_c._intervals) & set(other_c._intervals):
            intervals[term] = self_c._intervals[term].hull(other_c._intervals[term])
        excluded: Dict[str, FrozenSet[Value]] = {}
        for term in set(self_c._excluded) & set(other_c._excluded):
            common = self_c._excluded[term] & other_c._excluded[term]
            if common:
                excluded[term] = common
        links = self_c._links & other_c._links
        diffs: Dict[Tuple[str, str], Interval] = {}
        for pair in set(self_c._diffs) & set(other_c._diffs):
            diffs[pair] = self_c._diffs[pair].hull(other_c._diffs[pair])
        return Conjunction(intervals, excluded, links, diffs)

    def rename(self, mapping: Mapping[str, str]) -> "Conjunction":
        """Rewrite every term through ``mapping`` (identity when absent)."""

        def ren(term: str) -> str:
            return mapping.get(term, term)

        intervals = {ren(t): iv for t, iv in self._intervals.items()}
        excluded = {ren(t): vals for t, vals in self._excluded.items()}
        links = {(ren(a), ren(b)) for a, b in self._links}
        diffs: Dict[Tuple[str, str], Interval] = {}
        for (a, b), iv in self._diffs.items():
            dc = DifferenceConstraint(ren(a), ren(b), iv)
            pair, piv = dc.normalized()
            diffs[pair] = diffs.get(pair, Interval.universal()).intersect(piv)
        return Conjunction(intervals, excluded, links, diffs)

    def restrict_to(self, terms: Iterable[str]) -> "Conjunction":
        """Keep only atoms whose terms all belong to ``terms``."""
        keep = set(terms)
        intervals = {t: iv for t, iv in self._intervals.items() if t in keep}
        excluded = {t: v for t, v in self._excluded.items() if t in keep}
        links = {(a, b) for a, b in self._links if a in keep and b in keep}
        diffs = {
            pair: iv
            for pair, iv in self._diffs.items()
            if pair[0] in keep and pair[1] in keep
        }
        return Conjunction(intervals, excluded, links, diffs)

    # -- semantic analysis --------------------------------------------------------

    def closure(self) -> "Conjunction":
        """Propagate constraints through equality links.

        Every term in an equality class receives the intersection of all
        class members' intervals and the union of their exclusions.
        Difference constraints between members of one class intersect
        with the point interval ``[0, 0]``.  The closure makes the
        implication test markedly more complete (``R.A = S.B AND
        R.A > 10`` then implies ``S.B > 10``).
        """
        if not self._links:
            return self
        uf = _UnionFind()
        for a, b in self._links:
            uf.union(a, b)
        class_interval: Dict[str, Interval] = {}
        class_excluded: Dict[str, Set[Value]] = {}
        for term, iv in self._intervals.items():
            root = uf.find(term)
            prev = class_interval.get(root, Interval.universal())
            class_interval[root] = prev.intersect(iv)
        for term, vals in self._excluded.items():
            root = uf.find(term)
            class_excluded.setdefault(root, set()).update(vals)
        intervals: Dict[str, Interval] = dict(self._intervals)
        excluded: Dict[str, FrozenSet[Value]] = dict(self._excluded)
        for root, members in uf.groups().items():
            iv = class_interval.get(root)
            vals = class_excluded.get(root)
            for member in members:
                if iv is not None:
                    intervals[member] = intervals.get(
                        member, Interval.universal()
                    ).intersect(iv)
                if vals:
                    excluded[member] = excluded.get(member, frozenset()) | frozenset(vals)
        diffs = dict(self._diffs)
        for (a, b), iv in self._diffs.items():
            if uf.find(a) == uf.find(b):
                diffs[(a, b)] = iv.intersect(Interval.point(0))
        return Conjunction(intervals, excluded, self._links, diffs)

    def is_satisfiable(self) -> bool:
        """Sound emptiness check for this conjunction.

        Detects per-term empty intervals (after equality closure), point
        intervals excluded by a ``!=``, difference constraints that are
        empty or contradict the terms' value intervals, and equality
        classes forced to incompatible constants.
        """
        closed = self.closure()
        for term, iv in closed._intervals.items():
            if iv.is_empty:
                return False
            if iv.is_point and iv.lo in closed._excluded.get(term, frozenset()):
                return False
        for (a, b), iv in closed._diffs.items():
            if iv.is_empty:
                return False
            iv_a = closed._intervals.get(a)
            iv_b = closed._intervals.get(b)
            if iv_a is not None and iv_b is not None:
                feasible = _difference_range(iv_a, iv_b)
                if feasible is not None and feasible.intersect(iv).is_empty:
                    return False
        return True

    def implies(self, other: "Conjunction") -> bool:
        """Sound test that every binding satisfying ``self`` satisfies ``other``."""
        if not self.is_satisfiable():
            return True
        mine = self.closure()
        theirs = other.closure()
        uf = _UnionFind()
        for a, b in mine._links:
            uf.union(a, b)
        for term, needed in theirs._intervals.items():
            have = mine._intervals.get(term, Interval.universal())
            if not needed.contains_interval(have):
                return False
        for term, needed_vals in theirs._excluded.items():
            have_iv = mine._intervals.get(term, Interval.universal())
            have_vals = mine._excluded.get(term, frozenset())
            for value in needed_vals:
                if value in have_vals:
                    continue
                if not have_iv.contains_value(value):
                    continue
                return False
        for a, b in theirs._links:
            if uf.find(a) != uf.find(b):
                return False
        for (a, b), needed in theirs._diffs.items():
            if not _diff_implied(mine, uf, a, b, needed):
                return False
        return True

    def equivalent(self, other: "Conjunction") -> bool:
        return self.implies(other) and other.implies(self)

    def unimplied_atoms(self, atoms: Iterable[Atom]) -> List[Atom]:
        """The subset of ``atoms`` this conjunction does *not* imply.

        Equivalent to filtering with
        ``self.implies(Conjunction.from_atoms([atom]))`` per atom, but
        computes the closure and equality classes once — this is the
        inner loop of residual computation during query merging.
        """
        if not self.is_satisfiable():
            return []  # an unsatisfiable conjunction implies everything
        mine = self.closure()
        uf = _UnionFind()
        for a, b in mine._links:
            uf.union(a, b)
        out: List[Atom] = []
        for atom in atoms:
            if not _atom_implied(mine, uf, atom):
                out.append(atom)
        return out

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, binding: Mapping[str, Value]) -> bool:
        """Evaluate against a term->value binding.

        A constraint whose term is missing from the binding fails (the
        CBN treats a datagram lacking a constrained attribute as not
        covered).
        """
        for term, iv in self._intervals.items():
            if term not in binding or not iv.contains_value(binding[term]):
                return False
        for term, vals in self._excluded.items():
            if term not in binding or binding[term] in vals:
                return False
        for a, b in self._links:
            if a not in binding or b not in binding or binding[a] != binding[b]:
                return False
        for (a, b), iv in self._diffs.items():
            if a not in binding or b not in binding:
                return False
            try:
                diff = binding[a] - binding[b]  # type: ignore[operator]
            except TypeError:
                return False
            if not iv.contains_value(diff):
                return False
        return True

    # -- misc -------------------------------------------------------------------------

    def atoms(self) -> List[Atom]:
        """Decompose back into a list of atomic predicates."""
        out: List[Atom] = []
        for term, iv in sorted(self._intervals.items()):
            out.extend(_interval_comparisons(term, iv))
        for term, vals in sorted(self._excluded.items()):
            for value in sorted(vals, key=repr):
                out.append(Comparison(term, "!=", value))
        for a, b in sorted(self._links):
            out.append(JoinPredicate(a, b))
        for (a, b), iv in sorted(self._diffs.items()):
            out.append(DifferenceConstraint(a, b, iv))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return (
            self._intervals == other._intervals
            and self._excluded == other._excluded
            and self._links == other._links
            and self._diffs == other._diffs
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._intervals.items()),
                frozenset(self._excluded.items()),
                self._links,
                frozenset(self._diffs.items()),
            )
        )

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.atoms()]
        return " AND ".join(parts) if parts else "TRUE"

    def __repr__(self) -> str:
        return f"Conjunction({self})"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _comparison_interval(atom: Comparison) -> Optional[Interval]:
    """Interval for a comparison atom; ``None`` for ``!=`` atoms."""
    if atom.op == "=":
        return Interval.point(atom.value)
    if atom.op == "<":
        return Interval.at_most(atom.value, strict=True)
    if atom.op == "<=":
        return Interval.at_most(atom.value)
    if atom.op == ">":
        return Interval.at_least(atom.value, strict=True)
    if atom.op == ">=":
        return Interval.at_least(atom.value)
    return None


def _interval_comparisons(term: str, iv: Interval) -> List[Comparison]:
    if iv.is_point:
        return [Comparison(term, "=", iv.lo)]
    out: List[Comparison] = []
    if iv.lo is not None:
        out.append(Comparison(term, ">" if iv.lo_strict else ">=", iv.lo))
    if iv.hi is not None:
        out.append(Comparison(term, "<" if iv.hi_strict else "<=", iv.hi))
    return out


def _difference_range(iv_a: Interval, iv_b: Interval) -> Optional[Interval]:
    """Feasible range of ``a - b`` given value intervals for ``a`` and ``b``."""
    if isinstance(iv_a.lo, str) or isinstance(iv_a.hi, str):
        return None
    if isinstance(iv_b.lo, str) or isinstance(iv_b.hi, str):
        return None
    lo = None
    lo_strict = False
    if iv_a.lo is not None and iv_b.hi is not None:
        lo = iv_a.lo - iv_b.hi
        lo_strict = iv_a.lo_strict or iv_b.hi_strict
    hi = None
    hi_strict = False
    if iv_a.hi is not None and iv_b.lo is not None:
        hi = iv_a.hi - iv_b.lo
        hi_strict = iv_a.hi_strict or iv_b.lo_strict
    return Interval(lo, hi, lo_strict, hi_strict)


def _atom_implied(mine: Conjunction, uf: _UnionFind, atom: Atom) -> bool:
    """Does the (already closed) conjunction ``mine`` imply ``atom``?

    Mirrors the per-atom cases of :meth:`Conjunction.implies`.
    """
    if isinstance(atom, Comparison):
        needed = _comparison_interval(atom)
        if needed is None:  # a != constraint
            have_iv = mine._intervals.get(atom.term, Interval.universal())
            have_vals = mine._excluded.get(atom.term, frozenset())
            if atom.value in have_vals:
                return True
            return not have_iv.contains_value(atom.value)
        have = mine._intervals.get(atom.term, Interval.universal())
        return needed.contains_interval(have)
    if isinstance(atom, JoinPredicate):
        return uf.find(atom.left) == uf.find(atom.right)
    if isinstance(atom, DifferenceConstraint):
        pair, needed = atom.normalized()
        return _diff_implied(mine, uf, pair[0], pair[1], needed)
    raise PredicateError(f"unknown atom type: {atom!r}")


def atom_terms(atom: Atom) -> Set[str]:
    """The terms referenced by one atomic predicate."""
    if isinstance(atom, Comparison):
        return {atom.term}
    if isinstance(atom, (JoinPredicate, DifferenceConstraint)):
        return {atom.left, atom.right}
    raise PredicateError(f"unknown atom type: {atom!r}")


def _diff_implied(
    mine: Conjunction,
    uf: _UnionFind,
    a: str,
    b: str,
    needed: Interval,
) -> bool:
    """Does ``mine`` guarantee ``a - b in needed``?

    Checks, in order: an explicit matching difference constraint, the
    equality classes (difference 0), and the feasible range derived from
    the two terms' value intervals.
    """
    pair = (a, b) if a <= b else (b, a)
    oriented = needed if a <= b else needed.negate()
    have = mine._diffs.get(pair)
    if have is not None and oriented.contains_interval(have):
        return True
    if uf.find(a) == uf.find(b) and needed.contains_value(0):
        return True
    iv_a = mine._intervals.get(a)
    iv_b = mine._intervals.get(b)
    if iv_a is not None and iv_b is not None:
        feasible = _difference_range(iv_a, iv_b)
        if feasible is not None and needed.contains_interval(feasible):
            return True
    return False
