"""Render a query AST back to CQL-like text.

The rendering round-trips through :func:`repro.cql.parser.parse_query`
(tested in ``tests/cql/test_roundtrip.py``) so representative queries
produced by the merging machinery can be handed to any SPE through its
query wrapper as plain text.
"""

from __future__ import annotations

from typing import List

from repro.cql.ast import Aggregate, ContinuousQuery, Star
from repro.cql.predicates import (
    Comparison,
    Conjunction,
    DifferenceConstraint,
    JoinPredicate,
)


def _render_value(value: object) -> str:
    if isinstance(value, str):
        return "'" + value + "'"
    return f"{value:g}" if isinstance(value, float) else str(value)


def render_condition(predicate: Conjunction) -> str:
    """Render a conjunction as a WHERE-clause body (or ``""`` for TRUE)."""
    parts: List[str] = []
    for atom in predicate.atoms():
        if isinstance(atom, Comparison):
            parts.append(f"{atom.term} {atom.op} {_render_value(atom.value)}")
        elif isinstance(atom, JoinPredicate):
            parts.append(f"{atom.left} = {atom.right}")
        elif isinstance(atom, DifferenceConstraint):
            iv = atom.interval
            diff = f"{atom.left} - {atom.right}"
            if iv.is_point:
                parts.append(f"{diff} = {_render_value(iv.lo)}")
                continue
            if iv.lo is not None:
                op = ">" if iv.lo_strict else ">="
                parts.append(f"{diff} {op} {_render_value(iv.lo)}")
            if iv.hi is not None:
                op = "<" if iv.hi_strict else "<="
                parts.append(f"{diff} {op} {_render_value(iv.hi)}")
    return " AND ".join(parts)


def to_cql(query: ContinuousQuery) -> str:
    """Render ``query`` as a single-line CQL-like statement."""
    select_parts: List[str] = []
    for item in query.select_items:
        if isinstance(item, Star):
            select_parts.append(f"{item.qualifier}.*")
        elif isinstance(item, Aggregate):
            select_parts.append(str(item))
        else:
            select_parts.append(item.key)
    from_parts = [str(ref) for ref in query.streams]
    text = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
    condition = render_condition(query.predicate)
    if condition:
        text += f" WHERE {condition}"
    if query.group_by:
        text += " GROUP BY " + ", ".join(attr.key for attr in query.group_by)
    return text
