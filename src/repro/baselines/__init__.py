"""Baseline architectures the paper argues against.

The introduction contrasts COSMOS with existing distributed stream
systems ([4, 13]) that "simply adopted the unicast communication
paradigm": each query is planned separately and its streams travel
point-to-point, so two queries with common data interest transfer the
common content twice.  :mod:`repro.baselines.unicast` implements that
architecture with the same profile/feed machinery as the CBN, so the
two can be compared on identical workloads
(``benchmarks/test_baseline_unicast.py``).
"""

from __future__ import annotations

from repro.baselines.unicast import UnicastNetwork, UnicastCostModel

__all__ = ["UnicastCostModel", "UnicastNetwork"]
