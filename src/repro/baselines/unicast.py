"""The unicast communication substrate of pre-COSMOS systems.

Existing distributed stream processors ([4, 13]) connect each consumer
to each source point-to-point over the overlay: every subscription is
an independent flow, so a link shared by two subscriptions to the same
stream carries the (possibly identical) content once *per
subscription*.  Filtering and projection still happen at the source
(those systems push selections to the data's entry point — we grant the
baseline that optimisation so the comparison isolates *sharing*), but
nothing is shared between flows and sources must track every consumer
(the tight coupling the paper criticises).

:class:`UnicastNetwork` mirrors the
:class:`~repro.cbn.network.ContentBasedNetwork` interface (advertise /
subscribe / publish with :class:`~repro.cbn.filters.Profile`), so the
same workloads drive both; :class:`UnicastCostModel` is the analytic
counterpart used by the sweep benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Profile
from repro.cbn.network import Delivery, NetworkError
from repro.core.cost import CostModel
from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog
from repro.overlay.metrics import LinkStats
from repro.overlay.topology import NodeId
from repro.overlay.tree import DisseminationTree


@dataclass
class _UnicastSubscription:
    subscription_id: str
    node: NodeId
    profile: Profile


class UnicastNetwork:
    """Point-to-point delivery of per-subscription flows.

    Every publication is matched against every subscription at the
    source ("the sources not only have to transfer data for every
    relevant query but also have to keep track of all of them") and a
    separate copy travels the overlay path to each matching subscriber.
    """

    def __init__(
        self,
        tree: DisseminationTree,
        catalog: Optional[Catalog] = None,
    ) -> None:
        self._tree = tree
        self.catalog = catalog if catalog is not None else Catalog()
        self._subscriptions: Dict[str, _UnicastSubscription] = {}
        weights = {edge: tree.weight(*edge) for edge in tree.edges}
        self.data_stats = LinkStats(weights)
        self.control_stats = LinkStats(weights)
        self._counter = itertools.count()

    @property
    def tree(self) -> DisseminationTree:
        return self._tree

    # -- interface mirror of ContentBasedNetwork ---------------------------------

    def advertise(self, stream: str, node: NodeId, schema=None) -> None:
        """Unicast systems have no advertisement mechanism; the source
        address is learned out of band.  Kept for interface parity."""
        if node not in self._tree:
            raise NetworkError(f"unknown node {node}")
        if schema is not None:
            self.catalog.register(schema)

    def subscribe(
        self,
        profile: Profile,
        node: NodeId,
        subscription_id: Optional[str] = None,
    ) -> str:
        if node not in self._tree:
            raise NetworkError(f"unknown node {node}")
        if subscription_id is None:
            subscription_id = f"sub-{next(self._counter)}"
        if subscription_id in self._subscriptions:
            raise NetworkError(f"duplicate subscription id {subscription_id!r}")
        self._subscriptions[subscription_id] = _UnicastSubscription(
            subscription_id, node, profile
        )
        # The source must learn about the consumer: one control message
        # travels consumer -> source region (charged on the whole path
        # at publish-subscription time is impossible — sources are
        # unknown here — so charge the registration like a profile).
        return subscription_id

    def unsubscribe(self, subscription_id: str) -> None:
        if subscription_id not in self._subscriptions:
            raise NetworkError(f"unknown subscription {subscription_id!r}")
        del self._subscriptions[subscription_id]

    def publish(self, datagram: Datagram, node: NodeId) -> List[Delivery]:
        """One independent flow per matching subscription."""
        if node not in self._tree:
            raise NetworkError(f"unknown broker {node}")
        return self._route(datagram, node, self._widths_for(datagram.stream))

    def publish_many(
        self, datagrams: Iterable[Datagram], node: NodeId
    ) -> List[List[Delivery]]:
        """Batched :meth:`publish`: one delivery list per datagram.

        Mirrors :meth:`ContentBasedNetwork.publish_many` so batched
        drivers run unchanged against the baseline; the schema width
        lookup is hoisted out of the loop (once per distinct stream).
        """
        if node not in self._tree:
            raise NetworkError(f"unknown broker {node}")
        widths: Dict[str, Optional[Dict[str, int]]] = {}
        out: List[List[Delivery]] = []
        for datagram in datagrams:
            if datagram.stream not in widths:
                widths[datagram.stream] = self._widths_for(datagram.stream)
            out.append(self._route(datagram, node, widths[datagram.stream]))
        return out

    def _route(
        self,
        datagram: Datagram,
        node: NodeId,
        widths: Optional[Dict[str, int]],
    ) -> List[Delivery]:
        deliveries: List[Delivery] = []
        for sub in self._subscriptions.values():
            projected = sub.profile.apply(datagram)
            if projected is None:
                continue
            size = projected.size_bytes(widths)
            for u, v in self._tree.path_edges(node, sub.node):
                self.data_stats.record(u, v, size)
            deliveries.append(Delivery(sub.subscription_id, sub.node, projected))
        return deliveries

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def _widths_for(self, stream: str) -> Optional[Dict[str, int]]:
        if stream not in self.catalog:
            return None
        schema = self.catalog.get(stream)
        return {attr.name: attr.byte_width for attr in schema.attributes}


class UnicastCostModel:
    """Analytic communication cost of the unicast architecture.

    For each query placed at a processor: its (filtered, projected)
    source streams flow source -> processor, and its result stream
    flows processor -> user, each as an independent flow — the sum over
    queries of per-query path costs, with no sharing anywhere.
    """

    def __init__(
        self,
        tree: DisseminationTree,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self._tree = tree
        self._catalog = catalog
        self._cost = cost_model or CostModel()

    def source_rate(self, query: ContinuousQuery, stream: str) -> float:
        """Bytes/second of one source flow of ``query`` (filtered and
        projected at the source, as placement-optimised systems do)."""
        return self._cost.source_flow_rate(query, stream, self._catalog)

    def query_cost(
        self,
        query: ContinuousQuery,
        source_nodes: Mapping[str, NodeId],
        processor_node: NodeId,
        user_node: NodeId,
    ) -> float:
        """Total link cost of one query's flows."""
        total = 0.0
        # Sorted: float accumulation order must not depend on set order.
        for stream in sorted(set(query.stream_names)):
            rate = self.source_rate(query, stream)
            total += rate * self._tree.path_weight(
                source_nodes[stream], processor_node
            )
        result_rate = self._cost.result_rate(query, self._catalog)
        total += result_rate * self._tree.path_weight(processor_node, user_node)
        return total

    def total_cost(
        self,
        placements: Sequence[Tuple[ContinuousQuery, NodeId, NodeId]],
        source_nodes: Mapping[str, NodeId],
    ) -> float:
        """Sum of per-query costs for (query, processor, user) triples."""
        return sum(
            self.query_cost(query, source_nodes, processor, user)
            for query, processor, user in placements
        )
