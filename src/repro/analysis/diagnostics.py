"""Diagnostics emitted by the static analyzer.

Every finding carries a stable code (``COS1xx`` schema, ``COS2xx``
satisfiability, ``COS3xx`` plan/merging, ``COS4xx`` overlay/routing,
``COS5xx`` determinism, ``COS6xx`` protocol contracts, ``COS7xx``
source style), a severity, a human-readable message and a *source
span*: the logical source (a query name, a profile id, a broker node,
or — for the source-lint families — a file path) plus an optional
position (a character offset into the query text for the workload
families, a line number for the source-lint families).  Diagnostics
render in the conventional ``file:pos: code message`` form so editors
and CI logs can link back to the offending span.

The full catalogue, with an example trigger and fix per code, lives in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """How bad a finding is: errors gate deployment, warnings advise."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


#: code -> (severity, one-line summary).  The single registry keeps the
#: CLI, the docs and the checks in agreement about what each code means.
CODES = {
    # -- COS1xx: schema -----------------------------------------------------
    "COS101": (Severity.ERROR, "unknown stream"),
    "COS102": (Severity.ERROR, "unknown attribute"),
    "COS103": (Severity.ERROR, "type-incompatible constraint"),
    "COS104": (Severity.WARNING, "unused projection"),
    "COS105": (Severity.ERROR, "ambiguous unqualified attribute"),
    # -- COS2xx: satisfiability --------------------------------------------
    "COS201": (Severity.ERROR, "unsatisfiable predicate"),
    "COS202": (Severity.WARNING, "vacuous conjunct"),
    "COS203": (Severity.WARNING, "dead profile (subsumed)"),
    "COS204": (Severity.WARNING, "filter outside attribute domain"),
    "COS205": (Severity.ERROR, "solver/covering disagreement"),
    # -- COS3xx: plan / merging --------------------------------------------
    "COS301": (Severity.ERROR, "representative does not contain member"),
    "COS302": (Severity.ERROR, "re-tightening does not reproduce member schema"),
    "COS303": (Severity.ERROR, "residual attributes missing from representative"),
    # -- COS4xx: overlay / routing ------------------------------------------
    "COS401": (Severity.ERROR, "unreachable subscriber"),
    "COS402": (Severity.ERROR, "overlay is not a tree"),
    "COS403": (Severity.WARNING, "orphan routing entry"),
    "COS404": (Severity.WARNING, "stream has no advertised publisher"),
    # -- COS5xx: determinism hazards (source lint) --------------------------
    "COS501": (Severity.ERROR, "nondeterministic entropy source"),
    "COS502": (Severity.ERROR, "wall-clock read in simulated-time code"),
    "COS503": (Severity.WARNING, "unordered set iteration feeds ordered sink"),
    "COS504": (Severity.WARNING, "id()-based identity in deterministic subsystem"),
    # -- COS6xx: protocol contracts (source lint) ---------------------------
    "COS601": (Severity.ERROR, "non-exhaustive enum-status dispatch"),
    "COS602": (Severity.WARNING, "shared state mutated before a fallible statement"),
    "COS603": (Severity.ERROR, "NACK scheduled outside the capped-backoff path"),
    # -- COS7xx: source style (migrated from tools/lint_repro.py L001-L003) -
    "COS701": (Severity.ERROR, "mutable default argument"),
    "COS702": (Severity.ERROR, "bare except"),
    "COS703": (Severity.WARNING, "missing 'from __future__ import annotations'"),
    "COS704": (Severity.WARNING, "stale baseline entry"),
    # -- COS80x: message flow (source lint) ---------------------------------
    "COS801": (Severity.ERROR, "message kind produced but never consumed"),
    "COS802": (Severity.WARNING, "protocol handler has no producing call site"),
    "COS803": (Severity.ERROR, "send site bypasses the sequencing layer"),
    # -- COS81x: lifecycle state machines (source lint) ---------------------
    "COS811": (Severity.WARNING, "lifecycle state unreachable from initial"),
    "COS812": (Severity.ERROR, "lifecycle state/transition with no producing code path"),
    "COS813": (Severity.ERROR, "lifecycle state has no exit where one is required"),
    # -- COS90x: bounded model checking of the composed machines ------------
    "COS901": (Severity.ERROR, "tuple-loss state reachable after the close barrier"),
    "COS902": (Severity.ERROR, "deadlock: non-terminal product state with no enabled transition"),
    "COS903": (Severity.ERROR, "livelock: reachable cycle with no progress action and no exit"),
    "COS904": (Severity.ERROR, "cross-machine invariant violated in a reachable product state"),
    "COS905": (Severity.WARNING, "model transition never exercised by the chaos corpus"),
}


class DiagnosticError(Exception):
    """Raised for malformed diagnostics (unknown codes)."""


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``source`` names the analyzed object (query name, profile id,
    ``"broker:<node>"``); ``pos`` is a character offset into the query
    text when the parser recorded one.
    """

    code: str
    message: str
    source: str = "<input>"
    pos: Optional[int] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise DiagnosticError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CODES[self.code][0]

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """``file:pos: code message`` (pos omitted when unknown)."""
        where = self.source if self.pos is None else f"{self.source}:{self.pos}"
        return f"{where}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """Machine-readable form (the ``repro check --json`` contract).

        ``file`` is the logical source (a file path for the source-lint
        families), ``line`` its position (a line number there).
        """
        return {
            "file": self.source,
            "line": self.pos,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }

    def __str__(self) -> str:
        return self.render()


class Report:
    """An ordered collection of diagnostics plus exit-code policy.

    Exit codes follow the ``repro check`` contract: 0 clean, 1 when the
    only findings are warnings and ``strict`` is requested, 2 when any
    error is present.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: List[Diagnostic] = list(diagnostics)

    def add(
        self,
        code: str,
        message: str,
        source: str = "<input>",
        pos: Optional[int] = None,
    ) -> Diagnostic:
        diag = Diagnostic(code, message, source, pos)
        self._diagnostics.append(diag)
        return diag

    def extend(self, other: "Report") -> None:
        self._diagnostics.extend(other._diagnostics)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return list(self._diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self._diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self._diagnostics if not d.is_error]

    @property
    def is_clean(self) -> bool:
        return not self._diagnostics

    def codes(self) -> List[str]:
        return [d.code for d in self._diagnostics]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self._diagnostics)

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 warnings under ``strict``, 2 errors."""
        if self.errors:
            return 2
        if self.warnings and strict:
            return 1
        return 0

    def render(self) -> str:
        """One diagnostic per line, errors and warnings interleaved in
        discovery order, followed by a summary line."""
        lines = [d.render() for d in self._diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The ``repro check --json`` payload."""
        return {
            "diagnostics": [d.to_dict() for d in self._diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __repr__(self) -> str:
        return f"Report({len(self.errors)}E/{len(self.warnings)}W)"
