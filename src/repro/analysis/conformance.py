"""Conformance: replay chaos traces against the extracted machines.

:mod:`repro.analysis.lifecycle` extracts the protocol state machines
*statically*; this module turns them into a *dynamic* oracle.  Every
record a chaos run writes into its :class:`ChaosTrace` names an entity
(a ``(stream, seq)`` slot of the uplink protocol, a node under
supervision, a quarantined query) and an observable transition label.
Conformance replays the trace per entity as an NFA walk over the
corresponding machine: the entity's possible-state set is advanced
through each observed label (after closing over the machine's internal
ε-labels — ``gap_detect`` and ``release`` happen inside the receiver
and never appear in the trace); if the set ever empties, the run
exhibited a transition the model does not contain and the check fails.

On top of the per-entity walks, recovery counters are cross-checked
against the trace: a counter that disagrees with the number of records
that should have produced it means either the trace or the counter is
lying.  Inequalities are used exactly where the code has silent paths
(an immediate abandon bumps ``nacks_sent`` without a ``nack`` record;
``_force_flush`` abandons without an ``abandon`` record).

Wired into ``repro chaos --conform``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.lifecycle import StateMachine

#: Labels that are internal receiver steps, closed over before every
#: observed transition (per machine).  The failure detector's
#: ``register`` is likewise invisible: traces record suspicions and
#: repairs, never the registration that precedes them.
EPSILON_LABELS: Dict[str, Tuple[str, ...]] = {
    "uplink-receiver": ("gap_detect", "release"),
    "failure-detector": ("register",),
}

_INJECT = re.compile(
    r"^inject t=\S+ (?P<stream>\S+)\[.*\](?P<dup> dup)?(?: seq=(?P<seq>\d+))?"
    r" -> \d+ (?P<what>deliveries|released)(?P<sup> suppressed)?$"
)
_DROP = re.compile(r"^drop t=\S+ (?P<stream>\S+)(?: seq=(?P<seq>\d+))?$")
_PUNCT = re.compile(
    r"^punct t=\S+ \S+ seq<=\d+(?: -> \d+ gaps)?$"
)
_NACK = re.compile(
    r"^nack t=\S+ (?P<stream>\S+) seq=(?P<seq>\d+) attempt=(?P<attempt>\d+)$"
)
_RETRANSMIT = re.compile(
    r"^retransmit t=\S+ (?P<stream>\S+) seq=(?P<seq>\d+)"
    r" -> \d+ released(?P<sup> suppressed)?$"
)
_ABANDON = re.compile(
    r"^abandon t=\S+ (?P<stream>\S+) seq=(?P<seq>\d+) -> \d+ released$"
)
_FAIL = re.compile(
    r"^fail_\w+ t=\S+ node=(?P<node>\d+) -> (?P<outcome>crashed|applied|refused.*)$"
)
_SUSPECT = re.compile(r"^suspect t=\S+ node=(?P<node>\d+)$")
_REPAIR = re.compile(
    r"^repair t=\S+ fail_\w+ node=(?P<node>\d+) -> (?P<outcome>"
    r"applied|degraded \[(?P<queries>.*)\]|retry \d+ .*|gave up .*)$"
)
_FLUSH = re.compile(r"^flush \d+ tuples -> \d+ deliveries$")
_MIGRATE_PROBE = re.compile(
    r"^migrate t=\S+ (?:scan|rebalance) -> (?:"
    r"(?P<hot>\d+) hotspots \[(?P<hotnames>[^\]]*)\]|node=\d+|idle|inert)$"
)
_MIGRATE_SKIP = re.compile(
    r"^migrate_skip t=\S+ node=\d+ reason="
    r"(?:no-source|no-group|in-flight|no-target|degraded)$"
)
_MIGRATE_START = re.compile(
    r"^migrate_start t=\S+ group=(?P<gid>\S+) n(?P<src>\d+)->n(?P<dst>\d+)"
    r" quarantined \[(?P<names>[^\]]*)\]$"
)
_MIGRATE_DRAIN = re.compile(
    r"^drain t=\S+ group=(?P<gid>\S+) n(?P<src>\d+)->n(?P<dst>\d+)"
    r" chunks=(?P<chunks>\d+)$"
)
_MIGRATE_RETRY = re.compile(
    r"^migrate_retry t=\S+ group=(?P<gid>\S+) target=n(?P<dst>\d+)"
    r" attempt=(?P<attempt>\d+)$"
)
_MIGRATE_CUTOVER = re.compile(
    r"^cutover t=\S+ group=(?P<gid>\S+) n(?P<src>\d+)->n(?P<dst>\d+)"
    r" moved \[(?P<names>[^\]]*)\]$"
)
_MIGRATE_ABORT = re.compile(
    r"^migrate_abort t=\S+ group=(?P<gid>\S+) n(?P<src>\d+)->n(?P<dst>\d+)"
    r" (?P<reason>source-lost|target-lost|superseded|handoff-gaps)"
    r" resumed \[(?P<names>[^\]]*)\]$"
)


def _listed(names: str) -> List[str]:
    """The query names inside a rendered ``[a,b]`` / ``[-]`` list."""
    return [] if names in ("", "-") else names.split(",")


def transition_key(label: str, source: str, target: str) -> str:
    """The stable ``"label source->target"`` key used for transition
    counts (``repro chaos --json``) and model coverage (COS905)."""
    return f"{label} {source}->{target}"


class _Walker:
    """NFA walk of one machine, one possible-state set per entity.

    ``collector`` — when given — accumulates exercised-transition
    counts per machine (``machine -> {"label src->tgt": n}``) under
    *witness* semantics: an edge counts as exercised when some
    model-consistent replay of the trace uses it (every label-matching
    edge out of the possible-state set, plus the ε edges its closure
    traverses).
    """

    def __init__(
        self,
        machine: StateMachine,
        collector: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> None:
        self.machine = machine
        self.epsilon = EPSILON_LABELS.get(machine.name, ())
        self.collector = collector
        self._possible: Dict[str, Set[str]] = {}

    def _count(self, label: str, source: str, target: str) -> None:
        if self.collector is None:
            return
        bucket = self.collector.setdefault(self.machine.name, {})
        key = transition_key(label, source, target)
        bucket[key] = bucket.get(key, 0) + 1

    def _closure(self, states: Set[str]) -> Set[str]:
        seen = set(states)
        frontier = sorted(states)
        while frontier:
            state = frontier.pop()
            for t in self.machine.transitions:
                if (
                    t.label in self.epsilon
                    and t.source == state
                    and t.target not in seen
                ):
                    self._count(t.label, t.source, t.target)
                    seen.add(t.target)
                    frontier.append(t.target)
        return seen

    def step(self, entity: str, label: str) -> Optional[str]:
        """Advance ``entity`` through ``label``; a violation string when
        the model admits no such transition from any possible state."""
        possible = self._possible.get(entity)
        if possible is None:
            possible = set(self.machine.initial)
        closure = self._closure(possible)
        nxt = set()
        for t in self.machine.transitions:
            if t.label == label and t.source in closure:
                self._count(t.label, t.source, t.target)
                nxt.add(t.target)
        if not nxt:
            return (
                f"machine {self.machine.name}: entity {entity} observed "
                f"transition {label!r} from possible states "
                f"{sorted(closure)} — not in the extracted model"
            )
        self._possible[entity] = nxt
        return None


def _machine(machines: Sequence[StateMachine], name: str) -> StateMachine:
    for machine in machines:
        if machine.name == name:
            return machine
    raise KeyError(f"no extracted machine named {name!r}")


def conformance_violations(
    trace_lines: Sequence[str],
    machines: Sequence[StateMachine],
    reliability: Optional[Mapping[str, int]] = None,
    recovery: bool = False,
    load: Optional[Mapping[str, int]] = None,
    transitions: Optional[Dict[str, Dict[str, int]]] = None,
) -> List[str]:
    """Every way the observed run disagrees with the extracted model.

    ``trace_lines`` is the rendered :class:`ChaosTrace` (one record per
    line); ``reliability`` the recovery counters snapshot when the run
    had ``recovery`` on; ``load`` the load-management counters snapshot
    (every check there is exact — the migration protocol has no silent
    paths).  Returns an empty list when the run conforms.

    ``transitions`` — when a dict is passed — is filled with the
    exercised-transition counts of every walker, keyed machine name ->
    ``"label src->tgt"`` -> count (witness semantics; see
    :class:`_Walker`).  ``repro chaos --json`` surfaces these per seed
    and the COS905 coverage pass aggregates them against the model.
    """
    violations: List[str] = []
    uplink = _Walker(_machine(machines, "uplink-receiver"), transitions)
    nodes = _Walker(_machine(machines, "node-supervision"), transitions)
    status = _Walker(_machine(machines, "QueryStatus"), transitions)
    detector = _Walker(_machine(machines, "failure-detector"), transitions)
    #: Built on the first migration record, so machine sets that predate
    #: the load manager still replay migration-free traces.
    migrations: Optional[_Walker] = None
    #: (gid, src, dst) -> entity of the in-flight migration, plus a
    #: generation counter so a group migrated twice gets fresh entities.
    in_flight: Dict[Tuple[str, str, str], str] = {}
    generation: Dict[Tuple[str, str, str], int] = {}
    retry_attempt: Dict[Tuple[str, str], int] = {}
    last_attempt: Dict[Tuple[str, str], int] = {}
    counts = {
        "suppressed": 0,
        "retransmit": 0,
        "nack": 0,
        "abandon": 0,
        "suspect": 0,
        "repair_applied": 0,
        "quarantined": 0,
        "hotspots": 0,
        "migrate_start": 0,
        "migrate_retry": 0,
        "migrate_abort": 0,
        "cutover": 0,
        "chunks": 0,
    }

    def walk(walker: _Walker, entity: str, label: str) -> None:
        violation = walker.step(entity, label)
        if violation is not None:
            violations.append(violation)

    def migration_walker() -> _Walker:
        nonlocal migrations
        if migrations is None:
            migrations = _Walker(
                _machine(machines, "MigrationState"), transitions
            )
        return migrations

    for line in trace_lines:
        line = line.strip()
        if not line:
            continue
        m = _INJECT.match(line)
        if m is not None:
            if m.group("what") == "released" and m.group("seq") is not None:
                slot = f"{m.group('stream')}#{m.group('seq')}"
                if m.group("sup"):
                    counts["suppressed"] += 1
                    walk(uplink, slot, "duplicate")
                else:
                    walk(uplink, slot, "arrive")
            continue
        m = _DROP.match(line)
        if m is not None:
            if m.group("seq") is not None:
                walk(uplink, f"{m.group('stream')}#{m.group('seq')}", "drop")
            continue
        if _PUNCT.match(line) or _FLUSH.match(line):
            # Punctuation only triggers internal gap_detect steps (the
            # ε-closure covers them); flush is a transport batch marker.
            continue
        m = _NACK.match(line)
        if m is not None:
            slot = f"{m.group('stream')}#{m.group('seq')}"
            counts["nack"] += 1
            attempt = int(m.group("attempt"))
            key = (m.group("stream"), m.group("seq"))
            expected = last_attempt.get(key, 0) + 1
            if attempt != expected:
                violations.append(
                    f"machine uplink-receiver: entity {slot} NACK attempt "
                    f"{attempt} observed, expected {expected} (capped "
                    "backoff must count contiguously)"
                )
            last_attempt[key] = attempt
            walk(uplink, slot, "nack")
            continue
        m = _RETRANSMIT.match(line)
        if m is not None:
            slot = f"{m.group('stream')}#{m.group('seq')}"
            counts["retransmit"] += 1
            if m.group("sup"):
                counts["suppressed"] += 1
                walk(uplink, slot, "duplicate")
            else:
                walk(uplink, slot, "retransmit")
            continue
        m = _ABANDON.match(line)
        if m is not None:
            counts["abandon"] += 1
            walk(uplink, f"{m.group('stream')}#{m.group('seq')}", "abandon")
            continue
        m = _FAIL.match(line)
        if m is not None:
            outcome = m.group("outcome")
            if outcome == "crashed":
                label = "crash"
            elif outcome == "applied":
                label = "fail_applied"
            else:
                label = "fail_refused"
            walk(nodes, m.group("node"), label)
            continue
        m = _SUSPECT.match(line)
        if m is not None:
            counts["suspect"] += 1
            walk(nodes, m.group("node"), "suspect")
            # The failure detector's view of the same event: the lease
            # expired on a node it was monitoring (registration is an
            # ε-step — traces never record it).
            walk(detector, m.group("node"), "suspect")
            continue
        m = _REPAIR.match(line)
        if m is not None:
            outcome = m.group("outcome")
            if outcome == "applied":
                counts["repair_applied"] += 1
                walk(nodes, m.group("node"), "repair_applied")
            elif outcome.startswith("degraded"):
                walk(nodes, m.group("node"), "degraded")
                names = m.group("queries")
                if names and names != "-":
                    for query in names.split(","):
                        counts["quarantined"] += 1
                        walk(status, query, "quarantine_partitioned")
            elif outcome.startswith("retry"):
                walk(nodes, m.group("node"), "repair_retry")
            else:
                walk(nodes, m.group("node"), "gave_up")
            if not outcome.startswith("retry"):
                # Every terminal repair outcome removes the node, and
                # removal deregisters it from the failure detector.
                walk(detector, m.group("node"), "deregister")
            continue
        m = _MIGRATE_PROBE.match(line)
        if m is not None:
            if m.group("hot") is not None:
                hot = int(m.group("hot"))
                counts["hotspots"] += hot
                if len(_listed(m.group("hotnames"))) != hot:
                    violations.append(
                        f"scan record claims {hot} hotspots but names "
                        f"[{m.group('hotnames')}]"
                    )
            continue
        if _MIGRATE_SKIP.match(line):
            continue
        m = _MIGRATE_START.match(line)
        if m is not None:
            counts["migrate_start"] += 1
            key = (m.group("gid"), m.group("src"), m.group("dst"))
            if key in in_flight:
                violations.append(
                    f"migration {m.group('gid')} n{m.group('src')}->"
                    f"n{m.group('dst')} started while already in flight"
                )
            generation[key] = generation.get(key, 0) + 1
            entity = (
                f"{m.group('gid')} n{m.group('src')}->n{m.group('dst')}"
                f" #{generation[key]}"
            )
            in_flight[key] = entity
            for query in _listed(m.group("names")):
                walk(status, query, "quarantine_for_migration")
            continue
        m = _MIGRATE_DRAIN.match(line)
        if m is not None:
            counts["chunks"] += int(m.group("chunks"))
            key = (m.group("gid"), m.group("src"), m.group("dst"))
            entity = in_flight.get(key)
            if entity is None:
                violations.append(
                    f"drain record for {m.group('gid')} without an "
                    "in-flight migration"
                )
                continue
            walk(migration_walker(), entity, "start_drain")
            continue
        m = _MIGRATE_RETRY.match(line)
        if m is not None:
            counts["migrate_retry"] += 1
            attempt = int(m.group("attempt"))
            key = (m.group("gid"), m.group("dst"))
            # The first retry record announces attempt 2 (attempt 1 was
            # the drain-scheduled cutover itself).
            expected = retry_attempt.get(key, 1) + 1
            if attempt != expected:
                violations.append(
                    f"migration {m.group('gid')} retry attempt {attempt} "
                    f"observed, expected {expected} (capped backoff must "
                    "count contiguously)"
                )
            retry_attempt[key] = attempt
            continue
        m = _MIGRATE_CUTOVER.match(line)
        if m is not None:
            counts["cutover"] += 1
            key = (m.group("gid"), m.group("src"), m.group("dst"))
            entity = in_flight.pop(key, None)
            retry_attempt.pop((m.group("gid"), m.group("dst")), None)
            if entity is None:
                violations.append(
                    f"cutover record for {m.group('gid')} without an "
                    "in-flight migration"
                )
                continue
            walk(migration_walker(), entity, "cut_over")
            walk(migration_walker(), entity, "complete")
            for query in _listed(m.group("names")):
                walk(status, query, "resume_after_migration")
            continue
        m = _MIGRATE_ABORT.match(line)
        if m is not None:
            counts["migrate_abort"] += 1
            key = (m.group("gid"), m.group("src"), m.group("dst"))
            entity = in_flight.pop(key, None)
            retry_attempt.pop((m.group("gid"), m.group("dst")), None)
            if entity is None:
                violations.append(
                    f"abort record for {m.group('gid')} without an "
                    "in-flight migration"
                )
                continue
            walk(migration_walker(), entity, "abort")
            for query in _listed(m.group("names")):
                walk(status, query, "resume_after_migration")
            continue
        violations.append(f"unrecognized trace record: {line!r}")

    if recovery and reliability is not None:
        checks = [
            # (counter, observed, exact?) — inequalities only where the
            # code has a silent path (see module docstring).
            ("duplicates_suppressed", counts["suppressed"], True),
            ("retransmits", counts["retransmit"], True),
            ("nacks_sent", counts["nack"], False),
            ("gaps_abandoned", counts["abandon"], False),
            ("nodes_suspected", counts["suspect"], True),
            ("repairs_applied", counts["repair_applied"], True),
            ("queries_quarantined", counts["quarantined"], True),
        ]
        for name, observed, exact in checks:
            recorded = reliability.get(name)
            if recorded is None:
                continue
            ok = recorded == observed if exact else recorded >= observed
            if not ok:
                op = "==" if exact else ">="
                violations.append(
                    f"counter {name}={recorded} disagrees with trace "
                    f"({name} {op} {observed} expected from "
                    f"{observed} matching record(s))"
                )

    for (gid, src, dst), entity in sorted(in_flight.items()):
        violations.append(
            f"migration {gid} n{src}->n{dst} ({entity}) still in flight "
            "at trace end — neither cutover nor abort was recorded"
        )
    if load is not None:
        load_checks = [
            ("migrations_started", counts["migrate_start"]),
            ("migrations_completed", counts["cutover"]),
            ("migrations_aborted", counts["migrate_abort"]),
            ("migrations_retried", counts["migrate_retry"]),
            ("hotspots_detected", counts["hotspots"]),
            ("state_chunks_sent", counts["chunks"]),
        ]
        for name, observed in load_checks:
            recorded = load.get(name)
            if recorded is None or recorded == observed:
                continue
            violations.append(
                f"counter {name}={recorded} disagrees with trace "
                f"({observed} matching record(s))"
            )
    return violations
