"""COS4xx: overlay and routing-state checks.

These checks inspect a :class:`ContentBasedNetwork` (or a raw
node/edge list) without publishing a single datagram:

* ``COS402`` — the overlay graph is not a tree (cycle, disconnection,
  self-loop, dangling edge).  Routing in COSMOS assumes a
  dissemination tree; a cycle would duplicate datagrams, a
  disconnection silently partitions publishers from subscribers.
* ``COS401`` — a subscriber cannot be reached from some advertised
  publisher of a stream it requests: a broker on the path lacks a
  routing entry (or, under covering aggregation, any subsuming entry)
  pointing back toward the subscriber.
* ``COS403`` — a routing entry that can never fire: its subscription
  no longer exists, or it sits behind an interface that is not a tree
  neighbour of its broker.
* ``COS404`` — a subscribed stream has no advertised publisher, so
  under advertisement-scoped propagation the subscription never
  receives data.

The reachability check re-walks the tree path independently of the
propagation code in :meth:`ContentBasedNetwork._propagate_toward`, so
regressions in either show up as a disagreement here.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.satisfiability import check_dead_profiles
from repro.cbn.network import ContentBasedNetwork
from repro.cbn.routing import RoutingTable
from repro.overlay.tree import DisseminationTree, TreeError


def check_overlay_graph(
    nodes: Iterable[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
    source: str = "<overlay>",
) -> Report:
    """COS402 on a raw node/edge list: is this a tree?

    Independent of :class:`DisseminationTree`'s own constructor check
    (union-find here, BFS there) so the checker also validates overlay
    descriptions that never make it into a tree object.
    """
    report = Report()
    node_list = list(nodes)
    node_set = set(node_list)
    if len(node_list) != len(node_set):
        report.add("COS402", "duplicate node ids in overlay", source)
    parent: Dict[Hashable, Hashable] = {node: node for node in node_set}

    def find(item: Hashable) -> Hashable:
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    edge_count = 0
    seen_edges: Set[Tuple[Hashable, Hashable]] = set()
    for u, v in edges:
        edge_count += 1
        if u == v:
            report.add("COS402", f"self-loop on node {u!r}", source)
            continue
        if u not in node_set or v not in node_set:
            report.add(
                "COS402",
                f"edge ({u!r}, {v!r}) references a node outside the overlay",
                source,
            )
            continue
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in seen_edges:
            report.add("COS402", f"duplicate edge ({u!r}, {v!r})", source)
            continue
        seen_edges.add(key)
        ru, rv = find(u), find(v)
        if ru == rv:
            report.add(
                "COS402",
                f"edge ({u!r}, {v!r}) closes a cycle: datagrams would be "
                "duplicated",
                source,
            )
            continue
        parent[ru] = rv
    components = {find(node) for node in node_set}
    if len(components) > 1:
        report.add(
            "COS402",
            f"overlay is disconnected: {len(components)} components; "
            "publishers and subscribers in different components can "
            "never exchange data",
            source,
        )
    return report


def _covering_entry(
    table: RoutingTable,
    interface: Hashable,
    entry_id: str,
    profile,
    allow_subsumption: bool,
) -> bool:
    """Is the routing entry (or one covering it) behind ``interface``?"""
    entries = table.entries(interface)
    if entry_id in entries:
        return True
    if allow_subsumption:
        return any(existing.subsumes(profile) for existing in entries.values())
    return False


def check_reachability(network: ContentBasedNetwork) -> Report:
    """COS401/404: can every subscriber be fed from every publisher?"""
    report = Report()
    for sid, (node, profile) in network.subscriptions().items():
        source = f"subscription:{sid}"
        if sid not in network.table(node).local_profiles():
            report.add(
                "COS401",
                f"subscriber {sid!r} has no local delivery entry at its "
                f"own broker {node!r}",
                source,
            )
        for stream in sorted(profile.streams):
            publishers = network.publishers_of(stream)
            if not publishers:
                if network.scope_to_advertisements:
                    report.add(
                        "COS404",
                        f"subscription {sid!r} requests stream {stream!r} "
                        "which no node advertises; it will never receive "
                        "data",
                        source,
                    )
                continue
            restricted = profile.restricted_to(stream)
            entry_id = f"{sid}#{stream}"
            tree = network.tree_for(stream)
            for publisher in publishers:
                if publisher == node:
                    continue  # local publications deliver directly
                try:
                    path = tree.path(node, publisher)
                except TreeError as exc:
                    report.add(
                        "COS401",
                        f"no overlay path from subscriber {sid!r} at "
                        f"{node!r} to publisher {publisher!r} of "
                        f"{stream!r}: {exc}",
                        source,
                    )
                    continue
                for toward_sub, here in zip(path, path[1:]):
                    if not _covering_entry(
                        network.table(here),
                        toward_sub,
                        entry_id,
                        restricted,
                        network.use_subsumption,
                    ):
                        report.add(
                            "COS401",
                            f"broker {here!r} has no routing entry for "
                            f"{sid!r}/{stream!r} behind interface "
                            f"{toward_sub!r}: datagrams from publisher "
                            f"{publisher!r} stop there",
                            source,
                        )
                        break
    return report


def check_routing_entries(network: ContentBasedNetwork) -> Report:
    """COS403: routing entries that can never fire."""
    report = Report()
    live = set(network.subscriptions())
    for node in network.tree.nodes:
        table = network.table(node)
        source = f"broker:{node}"
        neighbors: Set[Hashable] = set(network.tree.neighbors(node))
        for stream_tree in (
            network.tree_for(stream) for stream in network.advertised_streams()
        ):
            if node in stream_tree:
                neighbors |= set(stream_tree.neighbors(node))
        for interface in table.interfaces:
            is_local = interface is RoutingTable.LOCAL
            if not is_local and interface not in neighbors:
                report.add(
                    "COS403",
                    f"routing entries behind {interface!r} which is not a "
                    f"tree neighbour of broker {node!r}; they can never "
                    "match a forwarded datagram",
                    source,
                )
            for entry_id in table.entries(interface):
                subscription_id = entry_id.split("#", 1)[0]
                if subscription_id not in live:
                    report.add(
                        "COS403",
                        f"orphan routing entry {entry_id!r} behind "
                        f"{'local' if is_local else repr(interface)}: "
                        f"subscription {subscription_id!r} no longer "
                        "exists",
                        source,
                    )
    return report


def check_routing_redundancy(network: ContentBasedNetwork) -> Report:
    """COS203/205 across each broker interface's installed profiles.

    Only meaningful without covering aggregation — with
    ``use_subsumption`` enabled the CBN already suppresses subsumed
    entries at install time.
    """
    report = Report()
    if network.use_subsumption:
        return report
    for node in network.tree.nodes:
        table = network.table(node)
        for interface in table.interfaces:
            if interface is RoutingTable.LOCAL:
                continue  # local entries are delivery endpoints, never dead
            entries = list(table.entries(interface).items())
            if len(entries) > 1:
                report.extend(
                    check_dead_profiles(
                        entries, source=f"broker:{node}/if:{interface}"
                    )
                )
    return report


def check_network(network: ContentBasedNetwork) -> Report:
    """All COS4xx checks (plus interface-level COS203) for one CBN."""
    report = check_overlay_graph(
        network.tree.nodes, network.tree.edges, source="<overlay>"
    )
    for stream in network.advertised_streams():
        tree = network.tree_for(stream)
        if tree is not network.tree:
            report.extend(
                check_overlay_graph(
                    tree.nodes, tree.edges, source=f"<overlay:{stream}>"
                )
            )
    if report.errors:
        return report  # path queries on a broken overlay are meaningless
    report.extend(check_reachability(network))
    report.extend(check_routing_entries(network))
    report.extend(check_routing_redundancy(network))
    return report
