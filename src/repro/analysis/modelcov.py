"""COS905: chaos-corpus transition coverage of the protocol model.

:mod:`repro.analysis.model` proves what the composed machines *can*
do; this module measures what the chaos sweeps actually *did*.  Every
``repro chaos --conform --json`` artifact records, per seed, the
machine transitions its conformance NFA walk exercised
(``conformance_transitions``, keyed ``"label src->tgt"``).  Aggregated
over a corpus and mapped onto the product automaton's reachable
machine transitions, the difference is the interesting set: protocol
paths the model proves reachable that no chaos seed has ever taken.

Each such transition is a **COS905** warning — baseline-ledger-able in
``tools/modelcov-baseline.txt``, so known-cold paths (abandonment
needs a NACK-budget exhaustion the sweeps never reach; migration
aborts need a mid-drain target loss) carry reviewed reasons instead of
silently shrinking the gate.

The coverage *denominator* is deliberately narrower than the machine
transition set:

* ε-labels (:data:`repro.analysis.conformance.EPSILON_LABELS`) never
  appear in traces — the NFA closes over them, so their counts are
  witness-heuristic, not observations;
* :data:`SILENT_LABELS` are real protocol steps with no trace record
  at all (detector heartbeats, the operator-driven partition heal);
* transitions the product automaton never drives (``unmodeled``) are
  reported for transparency but not demanded from the corpus.

Exercised counts use witness semantics (see
:class:`repro.analysis.conformance._Walker`): an edge counts when some
model-consistent replay of the trace uses it.  That can only shrink
the COS905 set — a transition with zero witnesses is certainly
unexercised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.conformance import EPSILON_LABELS, transition_key
from repro.analysis.diagnostics import Report
from repro.analysis.model import Exploration, ProductModel

#: Labels that are genuine machine transitions but produce no trace
#: record: the walker can never observe them, so demanding corpus
#: coverage for them would make the gate unsatisfiable.
SILENT_LABELS: Dict[str, Tuple[str, ...]] = {
    # Heartbeats are the detector's steady state; traces record only
    # their *absence* (suspect records).
    "failure-detector": ("heartbeat",),
    # heal_partition is operator-facing: chaos runs end while the
    # partition stands, so no trace line ever witnesses the resume.
    "QueryStatus": ("heal_partition",),
}


@dataclass
class MachineCoverage:
    """Corpus coverage of one machine's model-reachable transitions."""

    machine: str
    origin: Tuple[str, int]
    #: Denominator: model-reachable, non-ε, non-silent transition keys.
    total: List[str]
    #: key -> corpus count, restricted to ``total``.
    exercised: Dict[str, int]
    #: Keys excluded as ε / silent (shown, never demanded).
    epsilon: List[str]
    silent: List[str]
    #: Machine transitions the product automaton never drives.
    unmodeled: List[str]

    @property
    def cold(self) -> List[str]:
        return [key for key in self.total if key not in self.exercised]

    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "origin": {"module": self.origin[0], "line": self.origin[1]},
            "total": list(self.total),
            "exercised": dict(sorted(self.exercised.items())),
            "cold": list(self.cold),
            "epsilon": list(self.epsilon),
            "silent": list(self.silent),
            "unmodeled": list(self.unmodeled),
        }


@dataclass
class CorpusStats:
    """What the corpus loader managed to read."""

    artifacts: int
    seeds: int
    #: Artifacts without per-seed transition counts (pre-COS9xx files
    #: or sweeps run without ``--conform``).
    skipped: int
    counts: Dict[str, Dict[str, int]]


def load_corpus(paths: Sequence[Path]) -> CorpusStats:
    """Aggregate ``conformance_transitions`` over chaos artifacts.

    ``paths`` may mix files and directories (directories contribute
    their ``*.json`` files, sorted).  Records lacking transition
    counts are skipped, not fatal — old artifacts stay readable.
    """
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    counts: Dict[str, Dict[str, int]] = {}
    artifacts = seeds = skipped = 0
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, ValueError):
            skipped += 1
            continue
        records = payload.get("seeds")
        if not isinstance(records, list):
            skipped += 1
            continue
        artifacts += 1
        saw = False
        for record in records:
            transitions = record.get("conformance_transitions")
            if not isinstance(transitions, dict):
                continue
            saw = True
            seeds += 1
            for machine, bucket in transitions.items():
                target = counts.setdefault(machine, {})
                for key, count in bucket.items():
                    target[key] = target.get(key, 0) + int(count)
        if not saw:
            skipped += 1
    return CorpusStats(
        artifacts=artifacts, seeds=seeds, skipped=skipped, counts=counts
    )


def coverage(
    model: ProductModel,
    exploration: Exploration,
    corpus: CorpusStats,
) -> List[MachineCoverage]:
    """Per-machine coverage of the model-reachable transitions."""
    reachable = model.reachable_machine_transitions(exploration)
    results: List[MachineCoverage] = []
    seen_machines: Set[str] = set()
    for component in model.components:
        machine = component.machine
        if machine.name in seen_machines:
            continue
        seen_machines.add(machine.name)
        epsilon_labels = set(EPSILON_LABELS.get(machine.name, ()))
        silent_labels = set(SILENT_LABELS.get(machine.name, ()))
        all_keys = {
            (t.label, t.source, t.target) for t in machine.transitions
        }
        driven = reachable.get(machine.name, set())
        total: List[str] = []
        epsilon: List[str] = []
        silent: List[str] = []
        unmodeled: List[str] = []
        for label, source, target in sorted(all_keys):
            key = transition_key(label, source, target)
            if label in epsilon_labels:
                epsilon.append(key)
            elif label in silent_labels:
                silent.append(key)
            elif (label, source, target) not in driven:
                unmodeled.append(key)
            else:
                total.append(key)
        bucket = corpus.counts.get(machine.name, {})
        exercised = {
            key: bucket[key] for key in total if bucket.get(key, 0) > 0
        }
        results.append(
            MachineCoverage(
                machine=machine.name,
                origin=machine.origin,
                total=total,
                exercised=exercised,
                epsilon=epsilon,
                silent=silent,
                unmodeled=unmodeled,
            )
        )
    return results


def check_coverage(
    results: Sequence[MachineCoverage], corpus: CorpusStats
) -> Report:
    """COS905 for every cold transition, anchored on the machine's
    origin module so the baseline ledger can absorb reviewed ones."""
    report = Report()
    for result in results:
        rel, line = result.origin
        for key in result.cold:
            report.add(
                "COS905",
                f"machine {result.machine}: transition {key!r} is "
                "statically reachable in the product model but never "
                f"exercised by the chaos corpus ({corpus.seeds} "
                "conforming seed(s)) — add a schedule that drives it "
                "or baseline it with a reason",
                rel,
                line,
            )
    return report


def summarize(
    results: Sequence[MachineCoverage],
    corpus: CorpusStats,
    forgiven: int = 0,
) -> dict:
    """The ``coverage`` payload for ``repro model --json`` /
    ``BENCH_modelcov.json``.  ``forgiven`` is how many cold
    transitions the baseline absorbed; the gated ratio treats those as
    reviewed (removed from the denominator)."""
    total = sum(len(r.total) for r in results)
    exercised = sum(len(r.exercised) for r in results)
    cold = total - exercised
    gated_denominator = max(total - forgiven, 1)
    return {
        "artifacts": corpus.artifacts,
        "seeds": corpus.seeds,
        "skipped_artifacts": corpus.skipped,
        "transitions_total": total,
        "transitions_exercised": exercised,
        "transitions_cold": cold,
        "transitions_baselined": forgiven,
        "coverage_raw": exercised / total if total else 1.0,
        "coverage_gated": exercised / gated_denominator,
        "per_machine": [r.to_dict() for r in results],
    }


def default_coverage_baseline() -> Path:
    """``tools/modelcov-baseline.txt`` next to the package's repo root
    (same discovery contract as the self-check baseline)."""
    import repro

    package = Path(repro.__file__).resolve().parent
    return package.parent.parent / "tools" / "modelcov-baseline.txt"
