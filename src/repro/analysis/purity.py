"""COS5xx — determinism hazards in the package's own source.

The reproduction's dynamic guarantees (byte-identical chaos traces,
pinned replay digests, twin-system equivalence) all assume the code
under them is *deterministic*: no entropy, no wall clock, no
iteration order leaking from hash-based containers into ordered
outputs.  This pass walks a module's AST and flags the four hazard
shapes that break those guarantees:

* **COS501** — nondeterministic entropy: module-level ``random.*``
  calls, unseeded ``random.Random()``, ``uuid.uuid1/uuid4``,
  ``os.urandom``, anything from ``secrets``.  Fix: thread a seeded
  ``random.Random(seed)`` through the call path.
* **COS502** — wall-clock reads: ``time.time``/``perf_counter``/
  ``monotonic`` and friends, ``datetime.now``/``utcnow``/``today``.
  Simulated time comes from the :class:`EventSimulator`; a real clock
  read diverges replays across runs.  Fix: take ``now`` as a parameter.
* **COS503** — unordered iteration: a ``set``/``frozenset``-typed
  value iterated into an ordering-sensitive sink (a ``for`` body that
  appends/records/yields, a list/tuple conversion, a ``join``) without
  an explicit ``sorted(...)``.  Set order depends on
  ``PYTHONHASHSEED``; anything it feeds ends up in traces, wire
  encodings or digests in a process-dependent order.
* **COS504** — ``id()``-based identity inside the deterministic
  subsystems (``cbn/``, ``sim/``, ``system/``): object addresses vary
  per process, so comparisons, ordering or hashing built on ``id``
  cannot replay.

Set-typedness is inferred conservatively: set literals and
comprehensions, ``set()``/``frozenset()`` calls, set-algebra binops
over those, names and ``self`` attributes assigned or annotated as
sets in the enclosing scope, and calls to functions whose *return
annotation* is a set (collected package-wide by the driver).  What the
inference cannot see it does not flag — soundness of the "never flag
safe code" direction is what the property suite pins.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.source import SourceModule

#: ``time`` attributes that read a real clock.
_WALLCLOCK_TIME = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "localtime",
    "gmtime",
    "ctime",
}

#: ``datetime.datetime`` / ``datetime.date`` constructors reading a clock.
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}

#: ``uuid`` constructors that draw entropy (uuid3/uuid5 are pure hashes).
_ENTROPY_UUID = {"uuid1", "uuid4", "getnode"}

#: Mutating-sink method names: a loop body calling one of these with
#: the loop variable in scope emits elements in iteration order.
_SINK_METHODS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "record",
    "write",
    "writelines",
    "emit",
    "publish",
    "send",
    "put",
    "update_digest",
}

#: Modules where ``id()`` identity is a replay hazard (COS504).
_ID_SENSITIVE_PARTS = ("cbn/", "sim/", "system/")

_SET_ANNOTATIONS = {"Set", "FrozenSet", "set", "frozenset", "MutableSet", "AbstractSet"}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Imports:
    """Name resolution for the entropy/clock checks.

    Tracks ``import m [as a]`` (alias -> module) and
    ``from m import n [as a]`` (alias -> (module, name)) anywhere in
    the module, including function-local imports.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve_call(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """(module, dotted attr) for a called Name/Attribute, if known."""
        if isinstance(func, ast.Name):
            return self.names.get(func.id)
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            return self.modules[head], rest
        if head in self.names:
            module, name = self.names[head]
            return module, f"{name}.{rest}" if rest else name
        return None


# ---------------------------------------------------------------------------
# COS501 / COS502 / COS504 — entropy, clocks, id()
# ---------------------------------------------------------------------------


def _check_entropy_and_clock(
    module: SourceModule, report: Report
) -> None:
    imports = _Imports(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = imports.resolve_call(node.func)
        if resolved is None:
            continue
        mod, attr = resolved
        leaf = attr.rsplit(".", 1)[-1]
        if mod == "random":
            if attr == "Random" and node.args:
                continue  # seeded constructor: the sanctioned idiom
            if attr in ("Random", "seed") and not node.args:
                report.add(
                    "COS501",
                    f"unseeded random.{attr}() draws OS entropy; pass an "
                    f"explicit seed",
                    module.rel,
                    node.lineno,
                )
            elif attr != "seed":
                report.add(
                    "COS501",
                    f"module-level random.{attr}() uses the shared unseeded "
                    f"RNG; thread a random.Random(seed) instance instead",
                    module.rel,
                    node.lineno,
                )
        elif mod == "secrets":
            report.add(
                "COS501",
                f"secrets.{attr}() is entropy by design; deterministic "
                f"code must not call it",
                module.rel,
                node.lineno,
            )
        elif mod == "uuid" and leaf in _ENTROPY_UUID:
            report.add(
                "COS501",
                f"uuid.{leaf}() draws host entropy; derive ids from "
                f"seeded state or uuid5 over stable names",
                module.rel,
                node.lineno,
            )
        elif mod == "os" and leaf == "urandom":
            report.add(
                "COS501",
                "os.urandom() is raw OS entropy; use a seeded "
                "random.Random instead",
                module.rel,
                node.lineno,
            )
        elif mod == "time" and leaf in _WALLCLOCK_TIME:
            report.add(
                "COS502",
                f"time.{leaf}() reads the host clock; simulated time must "
                f"come from the EventSimulator (take `now` as a parameter)",
                module.rel,
                node.lineno,
            )
        elif mod == "datetime" and leaf in _WALLCLOCK_DATETIME:
            report.add(
                "COS502",
                f"datetime {leaf}() reads the host clock; thread an "
                f"explicit timestamp instead",
                module.rel,
                node.lineno,
            )


def _check_id_calls(module: SourceModule, report: Report) -> None:
    if not any(part in module.rel for part in _ID_SENSITIVE_PARTS):
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            report.add(
                "COS504",
                "id() yields per-process addresses; compare/hash by a "
                "stable key instead",
                module.rel,
                node.lineno,
            )


# ---------------------------------------------------------------------------
# COS503 — unordered set iteration
# ---------------------------------------------------------------------------


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):  # typing.Set[...]
        return annotation.attr in _SET_ANNOTATIONS
    return isinstance(annotation, ast.Name) and annotation.id in _SET_ANNOTATIONS


class _SetEnv:
    """Names and ``self`` attributes known to hold sets in one scope."""

    def __init__(
        self,
        set_returning: Iterable[str] = (),
        inherited: Optional[Set[str]] = None,
    ) -> None:
        self.names: Set[str] = set(inherited or ())
        self.set_returning = set(set_returning)

    def is_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return True
                if node.func.id in self.set_returning:
                    return True
            if isinstance(node.func, ast.Attribute):
                if (
                    node.func.attr in _SET_METHODS
                    and self.is_set(node.func.value)
                ):
                    return True
                if node.func.attr in self.set_returning:
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set(node.left) or self.is_set(node.right)
        dotted = _dotted(node)
        return dotted is not None and dotted in self.names

    def learn(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        dotted = _dotted(target)
        if dotted is None:
            return
        if value is not None and self.is_set(value):
            self.names.add(dotted)

    def learn_annotation(self, target: ast.AST, annotation: ast.AST) -> None:
        dotted = _dotted(target)
        if dotted is not None and _annotation_is_set(annotation):
            self.names.add(dotted)


def _class_set_attrs(klass: ast.ClassDef) -> Set[str]:
    """``self.x`` names a class declares as sets anywhere in its body."""
    attrs: Set[str] = set()
    for node in klass.body:
        # dataclass-style field annotations double as instance attrs
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_set(node.annotation):
                attrs.add(f"self.{node.target.id}")
    for node in ast.walk(klass):
        if isinstance(node, ast.AnnAssign):
            dotted = _dotted(node.target)
            if (
                dotted
                and dotted.startswith("self.")
                and _annotation_is_set(node.annotation)
            ):
                attrs.add(dotted)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                dotted = _dotted(target)
                if dotted and dotted.startswith("self."):
                    env = _SetEnv()
                    if env.is_set(node.value):
                        attrs.add(dotted)
    return attrs


def _loop_body_has_sink(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SINK_METHODS
            ):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                return True
    return False


def _genexp_over_set(node: ast.AST, env: _SetEnv) -> bool:
    return isinstance(node, ast.GeneratorExp) and any(
        env.is_set(gen.iter) for gen in node.generators
    )


def _check_node(
    module: SourceModule, node: ast.AST, env: _SetEnv, report: Report
) -> None:
    """Learn bindings from / flag hazards on one non-function node."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            env.learn(target, node.value)
    elif isinstance(node, ast.AnnAssign):
        env.learn_annotation(node.target, node.annotation)
        if node.value is not None:
            env.learn(node.target, node.value)
    elif isinstance(node, ast.For) and env.is_set(node.iter):
        if _loop_body_has_sink(node.body):
            report.add(
                "COS503",
                "for-loop over a set feeds an ordered sink; iterate "
                "sorted(...) instead",
                module.rel,
                node.lineno,
            )
    elif isinstance(node, ast.ListComp) and any(
        env.is_set(gen.iter) for gen in node.generators
    ):
        report.add(
            "COS503",
            "list built from a set iteration is hash-order dependent; "
            "wrap the iterable in sorted(...)",
            module.rel,
            node.lineno,
        )
    elif isinstance(node, ast.Call):
        order_sink = (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if order_sink and node.args:
            arg = node.args[0]
            if env.is_set(arg) or _genexp_over_set(arg, env):
                report.add(
                    "COS503",
                    "ordered conversion of a set iteration; wrap the "
                    "iterable in sorted(...)",
                    module.rel,
                    node.lineno,
                )


def _visit_scope(
    module: SourceModule,
    body: List[ast.stmt],
    env: _SetEnv,
    report: Report,
) -> None:
    """Document-order walk of one scope, pruned at nested functions.

    Nested functions are recursed into *afterwards* with a copy of the
    scope's final bindings (closures read enclosing names) extended by
    their own set-annotated parameters.
    """
    pending: List[ast.AST] = []

    def walk(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pending.append(node)
            return
        _check_node(module, node, env, report)
        for child in ast.iter_child_nodes(node):
            walk(child)

    for stmt in body:
        walk(stmt)
    for func in pending:
        fenv = _SetEnv(env.set_returning, env.names)
        for arg in ast.walk(func.args):
            if isinstance(arg, ast.arg) and arg.annotation is not None:
                if _annotation_is_set(arg.annotation):
                    fenv.names.add(arg.arg)
        _visit_scope(module, func.body, fenv, report)


def _check_set_iteration(
    module: SourceModule, set_returning: Iterable[str], report: Report
) -> None:
    # Class bodies seed `self.*` set attributes for every method scope;
    # one shared namespace is a sound over-approximation here (a
    # same-named non-set attribute in another class can only cause an
    # extra warning, never mask one).
    class_attrs: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            class_attrs |= _class_set_attrs(node)
    env = _SetEnv(set_returning, class_attrs)
    _visit_scope(module, module.tree.body, env, report)


def check_purity(
    module: SourceModule, set_returning: Iterable[str] = ()
) -> Report:
    """Run every COS5xx check over one module.

    ``set_returning`` names functions (collected package-wide from
    return annotations) whose call results are treated as sets.
    """
    report = Report()
    _check_entropy_and_clock(module, report)
    _check_set_iteration(module, set_returning, report)
    _check_id_calls(module, report)
    return report


def collect_set_returning(modules: Iterable[SourceModule]) -> Set[str]:
    """Function names annotated as returning a set, package-wide."""
    names: Set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None and _annotation_is_set(
                    node.returns
                ):
                    names.add(node.name)
    return names
