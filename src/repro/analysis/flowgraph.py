"""COS80x — static message-flow extraction over the package source.

The chaos harness moves three kinds of messages that never meet a type
checker: *chaos events* (``InjectEvent`` et al.) dispatched by
``isinstance`` chains, *timer callbacks* handed to the event
simulator's ``schedule``/``schedule_in``, and the *protocol surface*
of the reliability/CBN layers (NACK offers, heartbeats, quarantine and
heal signals) invoked dynamically by the supervisor.  This pass
extracts that message-flow graph from source — every produced kind
mapped to its consuming handler — so a refactor that orphans one side
fails ``repro check --self`` instead of a chaos seed:

* **COS801 unconsumed message kind** — a kind with at least one
  producing site and no consuming handler anywhere in the package
  (e.g. the ``isinstance`` branch for an event class was deleted, or a
  timer targets a method that no longer exists).
* **COS802 unreachable handler** — a consuming handler no site ever
  produces for: an ``isinstance`` dispatch on an event class never
  constructed, or a public protocol method with no call site in the
  package.
* **COS803 sequencing bypass** — a ``publish``/``publish_many`` call
  in a send module that neither carries a ``seq=`` keyword nor sits
  behind a ``recovery`` guard: in recovery mode such a tuple skips the
  sequenced uplink entirely, so drops on that path can never heal.

Kinds are named ``event:<Class>``, ``timer:<method>`` and
``proto:<Class>.<method>`` / ``proto:<function>``.  ``repro flow``
dumps the model as JSON/DOT; the extraction itself is pure AST work.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.source import SourceModule

#: (file, line) of one producing or consuming site.
Site = Tuple[str, int]

#: Modules whose ``publish``/``publish_many`` calls must either carry a
#: ``seq=`` keyword or sit behind a ``recovery`` guard (COS803).
DEFAULT_SEND_MODULES = ("sim/network.py",)

#: Protocol classes whose public methods form message/control surface:
#: module suffix -> class names.  Calls are matched package-wide by
#: attribute name, so the producers are an over-approximation — which
#: is the right direction for an *unreachable handler* check.
DEFAULT_PROTOCOL_CLASSES: Dict[str, Tuple[str, ...]] = {
    "system/reliability.py": (
        "SequencedUplink",
        "UplinkReceiver",
        "FailureDetector",
        "ReliabilityState",
    ),
    "cbn/network.py": ("ContentBasedNetwork",),
    "system/events.py": ("EventSimulator",),
    "system/loadmgr.py": (
        "HotspotDetector",
        "GroupMigration",
        "MigrationChannel",
    ),
}

#: Module-level protocol functions (quarantine/heal control signals).
DEFAULT_PROTOCOL_FUNCTIONS: Dict[str, Tuple[str, ...]] = {
    "system/reliability.py": (
        "attach_reliability",
        "quarantine_partitioned",
        "heal_partition",
    ),
    "system/loadmgr.py": (
        "attach_load_manager",
        "placement_cost",
        "choose_target",
        "capture_group_state",
        "quarantine_for_migration",
        "resume_after_migration",
        "cutover_group",
    ),
}

_SCHEDULE_NAMES = {"schedule", "schedule_in"}
_SEND_NAMES = {"publish", "publish_many"}


@dataclass
class MessageKind:
    """One message/control kind with its producing and consuming sites."""

    kind: str
    producers: List[Site] = field(default_factory=list)
    consumers: List[Site] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "producers": [list(site) for site in self.producers],
            "consumers": [list(site) for site in self.consumers],
        }


@dataclass
class FlowGraph:
    """The extracted message-flow model of the package."""

    kinds: Dict[str, MessageKind] = field(default_factory=dict)

    def kind(self, name: str) -> MessageKind:
        if name not in self.kinds:
            self.kinds[name] = MessageKind(name)
        return self.kinds[name]

    @property
    def message_kinds(self) -> List[MessageKind]:
        return [self.kinds[name] for name in sorted(self.kinds)]

    def to_dict(self) -> dict:
        return {"messages": [k.to_dict() for k in self.message_kinds]}


def _is_exception_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def _has_decorator(node: ast.AST, name: str) -> bool:
    for deco in getattr(node, "decorator_list", ()):
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if dotted == name:
            return True
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    """The terminal name a call resolves through (``Foo(...)``,
    ``mod.Foo(...)`` and ``obj.method(...)`` all yield the last part)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ---------------------------------------------------------------------------
# event classes: constructors vs isinstance/match dispatch
# ---------------------------------------------------------------------------


def _event_classes(modules: Sequence[SourceModule]) -> Dict[str, Site]:
    """Chaos/message event classes: ``*Event`` class definitions that
    are not exceptions (``ChaosEvent = object`` aliases are not
    ClassDefs and stay invisible, as they should)."""
    classes: Dict[str, Site] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Event")
                and not _is_exception_class(node)
            ):
                classes[node.name] = (module.rel, node.lineno)
    return classes


def _collect_event_flow(
    modules: Sequence[SourceModule],
    classes: Dict[str, Site],
    graph: FlowGraph,
) -> None:
    for name in classes:
        graph.kind(f"event:{name}")
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in classes:
                    graph.kind(f"event:{name}").producers.append(
                        (module.rel, node.lineno)
                    )
                elif name == "isinstance" and len(node.args) == 2:
                    spec = node.args[1]
                    elements = (
                        spec.elts
                        if isinstance(spec, (ast.Tuple, ast.List))
                        else [spec]
                    )
                    for element in elements:
                        ref = (
                            element.attr
                            if isinstance(element, ast.Attribute)
                            else element.id
                            if isinstance(element, ast.Name)
                            else None
                        )
                        if ref in classes:
                            graph.kind(f"event:{ref}").consumers.append(
                                (module.rel, node.lineno)
                            )
            elif isinstance(node, ast.MatchClass):
                cls = node.cls
                ref = cls.attr if isinstance(cls, ast.Attribute) else (
                    cls.id if isinstance(cls, ast.Name) else None
                )
                if ref in classes:
                    graph.kind(f"event:{ref}").consumers.append(
                        (module.rel, node.lineno)
                    )


# ---------------------------------------------------------------------------
# timers: schedule sites vs target methods
# ---------------------------------------------------------------------------


def _timer_targets(node: ast.Call) -> List[str]:
    """``self``-method names a ``schedule``/``schedule_in`` callback
    references (direct ``self._m`` or inside a lambda body)."""
    targets: List[str] = []
    for arg in list(node.args[1:]) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and not sub.attr.startswith("__")
            ):
                targets.append(sub.attr)
    return targets


def _collect_timer_flow(
    modules: Sequence[SourceModule], graph: FlowGraph
) -> None:
    for module in modules:
        method_defs: Dict[str, int] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_defs.setdefault(node.name, node.lineno)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULE_NAMES
            ):
                continue
            for target in _timer_targets(node):
                kind = graph.kind(f"timer:{target}")
                kind.producers.append((module.rel, node.lineno))
                if target in method_defs:
                    site = (module.rel, method_defs[target])
                    if site not in kind.consumers:
                        kind.consumers.append(site)


# ---------------------------------------------------------------------------
# protocol surface: public methods/functions vs call sites
# ---------------------------------------------------------------------------


def _protocol_surface(
    modules: Sequence[SourceModule],
    protocol_classes: Dict[str, Tuple[str, ...]],
    protocol_functions: Dict[str, Tuple[str, ...]],
) -> Dict[str, Tuple[str, Site]]:
    """kind -> (callable name, defining site) for the curated surface.

    Properties, dunders and underscore-private methods are not message
    surface — only plain public methods carry protocol traffic.
    """
    surface: Dict[str, Tuple[str, Site]] = {}
    for module in modules:
        class_names = next(
            (
                names
                for suffix, names in protocol_classes.items()
                if module.rel.endswith(suffix)
            ),
            (),
        )
        function_names = next(
            (
                names
                for suffix, names in protocol_functions.items()
                if module.rel.endswith(suffix)
            ),
            (),
        )
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in class_names:
                for stmt in node.body:
                    if not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if stmt.name.startswith("_"):
                        continue
                    if _has_decorator(stmt, "property") or _has_decorator(
                        stmt, "cached_property"
                    ):
                        continue
                    kind = f"proto:{node.name}.{stmt.name}"
                    surface[kind] = (
                        stmt.name,
                        (module.rel, stmt.lineno),
                    )
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in function_names
            ):
                surface[f"proto:{node.name}"] = (
                    node.name,
                    (module.rel, node.lineno),
                )
    return surface


def _collect_protocol_flow(
    modules: Sequence[SourceModule],
    surface: Dict[str, Tuple[str, Site]],
    graph: FlowGraph,
) -> None:
    by_name: Dict[str, List[str]] = {}
    for kind, (name, site) in surface.items():
        graph.kind(kind).consumers.append(site)
        by_name.setdefault(name, []).append(kind)
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in by_name:
                continue
            for kind in by_name[name]:
                defining = surface[kind][1]
                # The def line itself is not a call site.
                if (module.rel, node.lineno) == defining:
                    continue
                graph.kind(kind).producers.append((module.rel, node.lineno))


# ---------------------------------------------------------------------------
# COS803 — sends must ride the sequencing layer
# ---------------------------------------------------------------------------


def _test_mentions_recovery(test: ast.AST) -> bool:
    for sub in ast.walk(test):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "recovery" in name.lower():
            return True
    return False


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _guarded_by_recovery(
    func: ast.AST, call: ast.Call, parents: Dict[int, ast.AST]
) -> bool:
    """Whether ``call`` is lexically under a ``recovery`` test, or a
    preceding sibling ``if <recovery...>`` diverts control (its body
    terminates) before the call runs."""
    node: ast.AST = call
    chain: List[ast.AST] = [call]
    while id(node) in parents and node is not func:
        node = parents[id(node)]
        chain.append(node)
    for ancestor in chain:
        if isinstance(ancestor, ast.If) and _test_mentions_recovery(
            ancestor.test
        ):
            return True
    # Preceding diverting guards: scan each ancestor's statement list
    # for an earlier `if ...recovery...` whose body terminates.
    for ancestor in chain:
        body = getattr(ancestor, "body", None)
        if not isinstance(body, list):
            continue
        for stmt in body:
            if any(stmt is link for link in chain):
                break
            if (
                isinstance(stmt, ast.If)
                and _test_mentions_recovery(stmt.test)
                and _terminates(stmt.body)
                and not stmt.orelse
            ):
                return True
    return False


def _check_send_sites(
    module: SourceModule,
    send_modules: Sequence[str],
    report: Report,
) -> None:
    if not any(module.rel.endswith(name) for name in send_modules):
        return
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(module.tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_NAMES
            ):
                continue
            if any(kw.arg == "seq" for kw in node.keywords):
                continue
            if _guarded_by_recovery(func, node, parents):
                continue
            report.add(
                "COS803",
                f"{node.func.attr}() without seq= outside a recovery "
                "guard: in recovery mode this tuple bypasses the "
                "sequenced uplink, so a drop on this path can never "
                "be NACKed or retransmitted",
                module.rel,
                node.lineno,
            )


# ---------------------------------------------------------------------------
# extraction + checks
# ---------------------------------------------------------------------------


def extract_flowgraph(
    modules: Sequence[SourceModule],
    protocol_classes: Optional[Dict[str, Tuple[str, ...]]] = None,
    protocol_functions: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> FlowGraph:
    """The message-flow graph of a module set (pure AST extraction)."""
    graph = FlowGraph()
    classes = _event_classes(modules)
    _collect_event_flow(modules, classes, graph)
    _collect_timer_flow(modules, graph)
    surface = _protocol_surface(
        modules,
        protocol_classes
        if protocol_classes is not None
        else DEFAULT_PROTOCOL_CLASSES,
        protocol_functions
        if protocol_functions is not None
        else DEFAULT_PROTOCOL_FUNCTIONS,
    )
    _collect_protocol_flow(modules, surface, graph)
    return graph


def check_flowgraph(
    modules: Sequence[SourceModule],
    send_modules: Sequence[str] = DEFAULT_SEND_MODULES,
    graph: Optional[FlowGraph] = None,
) -> Report:
    """COS801/802/803 over a module set.

    Diagnostics anchor on the surviving side of the broken edge: an
    unconsumed kind points at its first producer, an unreachable
    handler at its defining line — both pragma-able.
    """
    report = Report()
    if graph is None:
        graph = extract_flowgraph(modules)
    for kind in graph.message_kinds:
        if kind.producers and not kind.consumers:
            rel, line = sorted(kind.producers)[0]
            report.add(
                "COS801",
                f"{kind.kind} is produced here but nothing in the "
                "package consumes it; the handler/dispatch branch is "
                "gone or was never wired",
                rel,
                line,
            )
        elif kind.consumers and not kind.producers:
            rel, line = sorted(kind.consumers)[0]
            report.add(
                "COS802",
                f"{kind.kind} has a handler but no call/construction "
                "site in the package produces it",
                rel,
                line,
            )
    for module in modules:
        _check_send_sites(module, send_modules, report)
    return report
