"""COS1xx: schema checks for queries and profiles.

Everything here resolves names against a :class:`Catalog` and never
executes anything: unknown streams and attributes are errors (the CBN
would reject or, worse, silently never match them), type-incompatible
constraints are errors (a numeric attribute compared against a string
can never hold), unused projections are warnings (they only waste
bandwidth).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Report
from repro.cbn.filters import ALL_ATTRIBUTES, Profile
from repro.cql.ast import Aggregate, ContinuousQuery, Star
from repro.cql.predicates import (
    Atom,
    AttrRef,
    Comparison,
    Conjunction,
    DifferenceConstraint,
    Interval,
    JoinPredicate,
)
from repro.cql.schema import Attribute, Catalog


def source_name(query: ContinuousQuery) -> str:
    """The diagnostic source label for a query."""
    return query.name if query.name else "<query>"


def attribute_domains(
    query: ContinuousQuery, catalog: Catalog
) -> Dict[str, Interval]:
    """Declared value domains of the query's terms, as solver seeds.

    Maps each qualified term (``"O.itemID"``) whose schema attribute
    declares a numeric ``lo``/``hi`` domain to the corresponding
    interval.  Streams or attributes missing from the catalog simply
    contribute nothing (the COS1xx checks report those).
    """
    seeds: Dict[str, Interval] = {}
    for ref in query.streams:
        if ref.stream not in catalog:
            continue
        for attr in catalog.get(ref.stream).attributes:
            if not attr.is_numeric:
                continue
            if attr.lo is None and attr.hi is None:
                continue
            seeds[f"{ref.name}.{attr.name}"] = Interval(attr.lo, attr.hi)
    return seeds


def _resolve(
    query: ContinuousQuery,
    attr: AttrRef,
    catalog: Catalog,
    report: Report,
    source: str,
    seen: Set[Tuple[Optional[str], str]],
) -> Optional[Attribute]:
    """Resolve one attribute reference, reporting at most one diagnostic
    per distinct reference."""
    key = (attr.qualifier, attr.name)
    if attr.qualifier is None:
        if key not in seen:
            seen.add(key)
            report.add(
                "COS105",
                f"attribute {attr.name!r} must be qualified with a stream "
                f"reference ({', '.join(query.reference_names)})",
                source,
                attr.pos,
            )
        return None
    if attr.qualifier not in query.reference_names:
        if key not in seen:
            seen.add(key)
            report.add(
                "COS101",
                f"no stream reference named {attr.qualifier!r} in FROM "
                f"(have: {', '.join(query.reference_names)})",
                source,
                attr.pos,
            )
        return None
    stream = query.stream_ref(attr.qualifier).stream
    if stream not in catalog:
        return None  # the unknown stream is reported once, on the FROM ref
    schema = catalog.get(stream)
    if not schema.has_attribute(attr.name):
        if key not in seen:
            seen.add(key)
            report.add(
                "COS102",
                f"stream {stream!r} has no attribute {attr.name!r} "
                f"(have: {', '.join(schema.attribute_names)})",
                source,
                attr.pos,
            )
        return None
    return schema.attribute(attr.name)


def _raw_atoms(query: ContinuousQuery) -> List[Atom]:
    """WHERE atoms as written when provenance exists, else reconstructed."""
    if query.source is not None and query.source.where_atoms:
        return list(query.source.where_atoms)
    return query.predicate.atoms()


def _ref(term: str, pos: Optional[int]) -> AttrRef:
    """An :class:`AttrRef` for ``term`` carrying the atom's position."""
    parsed = AttrRef.parse(term)
    return AttrRef(parsed.qualifier, parsed.name, pos)


def _check_atom_types(
    query: ContinuousQuery,
    catalog: Catalog,
    report: Report,
    source: str,
    seen: Set[Tuple[Optional[str], str]],
) -> None:
    """COS103: constraints that no value of the attribute's type satisfies."""
    for atom in _raw_atoms(query):
        if isinstance(atom, Comparison):
            attr = _resolve(query, _ref(atom.term, atom.pos), catalog, report, source, seen)
            if attr is None:
                continue
            if attr.is_numeric and isinstance(atom.value, str):
                report.add(
                    "COS103",
                    f"{atom.term} has type {attr.type!r} but is compared "
                    f"against string {atom.value!r}",
                    source,
                    atom.pos,
                )
            elif not attr.is_numeric and not isinstance(atom.value, str):
                report.add(
                    "COS103",
                    f"{atom.term} has type {attr.type!r} but is compared "
                    f"against number {atom.value!r}",
                    source,
                    atom.pos,
                )
        elif isinstance(atom, JoinPredicate):
            left = _resolve(query, _ref(atom.left, atom.pos), catalog, report, source, seen)
            right = _resolve(query, _ref(atom.right, atom.pos), catalog, report, source, seen)
            if left is None or right is None:
                continue
            if left.is_numeric != right.is_numeric:
                report.add(
                    "COS103",
                    f"equijoin {atom.left} = {atom.right} mixes types "
                    f"{left.type!r} and {right.type!r}",
                    source,
                    atom.pos,
                )
        elif isinstance(atom, DifferenceConstraint):
            for term in (atom.left, atom.right):
                attr = _resolve(query, _ref(term, atom.pos), catalog, report, source, seen)
                if attr is not None and not attr.is_numeric:
                    report.add(
                        "COS103",
                        f"difference constraint on non-numeric attribute "
                        f"{term} (type {attr.type!r})",
                        source,
                        atom.pos,
                    )


def _check_unused(
    query: ContinuousQuery,
    report: Report,
    source: str,
) -> None:
    """COS104: select-list duplicates and FROM entries nothing touches."""
    seen_items: Set[str] = set()
    for item in query.select_items:
        if isinstance(item, Star):
            label = f"{item.qualifier}.*"
        elif isinstance(item, AttrRef):
            label = item.key
        else:
            label = item.name
        if label in seen_items:
            report.add(
                "COS104",
                f"duplicate select item {label}: the result stream carries "
                "the attribute once; drop the repeated projection",
                source,
                getattr(item, "pos", None),
            )
        seen_items.add(label)
    if len(query.streams) < 2:
        return
    used: Set[str] = set()
    for item in query.select_items:
        if isinstance(item, Star):
            used.add(item.qualifier)
        elif isinstance(item, AttrRef) and item.qualifier is not None:
            used.add(item.qualifier)
        elif isinstance(item, Aggregate) and item.arg is not None:
            if item.arg.qualifier is not None:
                used.add(item.arg.qualifier)
    for attr in query.group_by:
        if attr.qualifier is not None:
            used.add(attr.qualifier)
    for term in query.predicate.referenced_terms():
        qualifier = AttrRef.parse(term).qualifier
        if qualifier is not None:
            used.add(qualifier)
    for ref in query.streams:
        if ref.name not in used:
            report.add(
                "COS104",
                f"stream reference {ref.name!r} is joined but never "
                "projected or constrained: the join degenerates to a "
                "cartesian product",
                source,
                ref.pos,
            )


def check_query(query: ContinuousQuery, catalog: Catalog) -> Report:
    """All COS1xx checks for one query against ``catalog``."""
    report = Report()
    source = source_name(query)
    for ref in query.streams:
        if ref.stream not in catalog:
            report.add(
                "COS101",
                f"unknown stream {ref.stream!r} "
                f"(catalog has: {', '.join(catalog.stream_names)})",
                source,
                ref.pos,
            )
    seen: Set[Tuple[Optional[str], str]] = set()
    for item in query.select_items:
        if isinstance(item, Star):
            if item.qualifier not in query.reference_names:
                report.add(
                    "COS101",
                    f"no stream reference named {item.qualifier!r} in FROM",
                    source,
                    item.pos,
                )
        elif isinstance(item, AttrRef):
            _resolve(query, item, catalog, report, source, seen)
        elif isinstance(item, Aggregate):
            if item.arg is not None:
                attr = _resolve(query, item.arg, catalog, report, source, seen)
                if attr is not None and item.func in ("sum", "avg") and not attr.is_numeric:
                    report.add(
                        "COS103",
                        f"{item.func.upper()} over non-numeric attribute "
                        f"{item.arg.key} (type {attr.type!r})",
                        source,
                        item.pos,
                    )
    for attr in query.group_by:
        _resolve(query, attr, catalog, report, source, seen)
    # Atoms first: they carry source positions, and the dedup set keeps
    # the first (positioned) diagnostic per distinct reference.
    _check_atom_types(query, catalog, report, source, seen)
    for term in query.predicate.referenced_terms():
        _resolve(query, AttrRef.parse(term), catalog, report, source, seen)
    _check_unused(query, report, source)
    return report


def check_profile(
    profile: Profile, catalog: Catalog, source: str = "<profile>"
) -> Report:
    """COS1xx checks for one CBN data-interest profile."""
    report = Report()
    for stream in sorted(profile.streams):
        if stream not in catalog:
            report.add(
                "COS101",
                f"profile subscribes to unknown stream {stream!r}",
                source,
            )
            continue
        schema = catalog.get(stream)
        projection = profile.projection_for(stream)
        if projection != ALL_ATTRIBUTES:
            for name in sorted(projection):
                if not schema.has_attribute(name):
                    report.add(
                        "COS102",
                        f"profile projects unknown attribute {name!r} "
                        f"of stream {stream!r}",
                        source,
                    )
        for filt in profile.filters_for(stream):
            condition: Conjunction = filt.condition
            for term in sorted(condition.referenced_terms()):
                if not schema.has_attribute(term):
                    report.add(
                        "COS102",
                        f"filter constrains unknown attribute {term!r} "
                        f"of stream {stream!r}",
                        source,
                    )
                    continue
                attr = schema.attribute(term)
                interval = condition.intervals.get(term)
                bounds = [] if interval is None else [interval.lo, interval.hi]
                bounds.extend(condition.excluded.get(term, ()))
                for value in bounds:
                    if value is None:
                        continue
                    if attr.is_numeric and isinstance(value, str):
                        report.add(
                            "COS103",
                            f"filter compares {attr.type!r} attribute "
                            f"{term!r} against string {value!r}",
                            source,
                        )
                        break
                    if not attr.is_numeric and not isinstance(value, str):
                        report.add(
                            "COS103",
                            f"filter compares {attr.type!r} attribute "
                            f"{term!r} against number {value!r}",
                            source,
                        )
                        break
    return report
