"""COS81x — protocol state machines extracted from source.

The reliability layer is held together by implicit lifecycles: a
query's ``ACTIVE``/``DEGRADED`` status, the per-sequence-number
gap/offer protocol of the :class:`UplinkReceiver`, the lease states of
the :class:`FailureDetector`, and the crash→suspect→repair supervision
of a chaos node.  This pass makes them explicit:

* **Enum-backed machines** are extracted generically: any package enum
  that is assigned to an attribute (``handle.status =
  QueryStatus.DEGRADED``) becomes a machine whose states are the enum
  members, whose initial states are class-level defaults, and whose
  transitions are the assignment sites — with the *from*-set narrowed
  by enclosing/preceding enum guards (``if handle.status is not
  QueryStatus.ACTIVE: continue`` narrows the fall-through to
  ``{ACTIVE}``).
* **Spec-backed machines** cover protocols whose state lives in
  containers, not enums (reorder buffers, lease tables).  A
  :class:`MachineSpec` declares the states and transition templates;
  each template is *anchored* to a producing method and a mutation it
  must contain, verified against the AST — the machine is only as real
  as the code behind it.

Checks:

* **COS811** — a state with inbound transitions that is still
  unreachable from the initial states.
* **COS812** — a declared state no code path produces (no inbound
  transition, not initial), or a spec transition whose anchoring
  method/mutation is gone from the source.
* **COS813** — a reachable state with no outbound transition that the
  machine does not allow to be terminal (a query stuck ``DEGRADED``
  with the heal path deleted is exactly this).

The extracted machines double as the dynamic conformance oracle
(:mod:`repro.analysis.conformance`): every transition a chaos trace
exhibits must exist in the model.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.protocol import _dotted, _enum_tests, collect_enums
from repro.analysis.source import SourceModule


@dataclass(frozen=True)
class Transition:
    """One verified edge of a lifecycle machine."""

    label: str
    source: str
    target: str

    def to_dict(self) -> dict:
        return {"label": self.label, "source": self.source, "target": self.target}


@dataclass
class StateMachine:
    """One extracted lifecycle machine."""

    name: str
    states: List[str]
    initial: List[str]
    #: States allowed to have no outbound transition (COS813 exempt).
    terminal: List[str]
    transitions: List[Transition] = field(default_factory=list)
    #: Module the machine anchors on (diagnostic source) and its line.
    origin: Tuple[str, int] = ("<unknown>", 0)

    def targets(self, label: str, source: str) -> List[str]:
        return [
            t.target
            for t in self.transitions
            if t.label == label and t.source == source
        ]

    def labels(self) -> List[str]:
        return sorted({t.label for t in self.transitions})

    def reachable(self) -> Set[str]:
        seen = set(self.initial)
        frontier = list(self.initial)
        while frontier:
            state = frontier.pop()
            for t in self.transitions:
                if t.source == state and t.target not in seen:
                    seen.add(t.target)
                    frontier.append(t.target)
        return seen

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "states": list(self.states),
            "initial": list(self.initial),
            "terminal": list(self.terminal),
            "transitions": [t.to_dict() for t in self.transitions],
        }


# ---------------------------------------------------------------------------
# spec-backed machines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransitionSpec:
    """A transition template anchored to the code that produces it.

    The transition is only admitted into the machine when ``module``
    contains a function/method named ``func`` whose source includes
    ``needle`` (the mutation that actually performs the transition);
    otherwise COS812 reports the dead template.
    """

    label: str
    source: str
    target: str
    module: str
    func: str
    needle: str


@dataclass(frozen=True)
class MachineSpec:
    """Declared shape of a container-backed protocol machine."""

    name: str
    #: Module suffix the machine anchors on (diagnostics, origin).
    module: str
    states: Tuple[str, ...]
    initial: Tuple[str, ...]
    terminal: Tuple[str, ...]
    transitions: Tuple[TransitionSpec, ...]


def _spec(label, source, target, module, func, needle):
    return TransitionSpec(label, source, target, module, func, needle)


_R = "system/reliability.py"
_N = "sim/network.py"

#: The uplink receiver's per-sequence-number slot protocol.  UNSEEN is
#: a slot nothing happened to yet; LOST means the wire ate the send;
#: GAP means the receiver knows the number is missing; BUFFERED holds
#: an out-of-order arrival; RELEASED/ABANDONED are the two outcomes.
#: ``gap_detect`` and ``release`` are internal (epsilon) steps — traces
#: never name them directly.
UPLINK_RECEIVER_SPEC = MachineSpec(
    name="uplink-receiver",
    module=_R,
    states=("UNSEEN", "LOST", "GAP", "BUFFERED", "RELEASED", "ABANDONED"),
    initial=("UNSEEN",),
    terminal=("RELEASED", "ABANDONED"),
    transitions=(
        _spec("arrive", "UNSEEN", "BUFFERED", _R, "offer", "self._buffer[seq]"),
        _spec("arrive", "GAP", "BUFFERED", _R, "offer", "self._buffer[seq]"),
        # A late first copy can overtake its own abandonment.
        _spec("arrive", "ABANDONED", "BUFFERED", _R, "_flush", "self._abandoned.discard"),
        _spec("drop", "UNSEEN", "LOST", _N, "_apply_drop", ".record("),
        _spec("gap_detect", "UNSEEN", "GAP", _R, "offer", "self._known_gaps.update"),
        _spec("gap_detect", "LOST", "GAP", _R, "announce", "self._known_gaps.update"),
        _spec("nack", "GAP", "GAP", _N, "_nack", "nacks_sent"),
        _spec("retransmit", "GAP", "BUFFERED", _N, "_retransmit_arrival", ".offer("),
        _spec("retransmit", "ABANDONED", "BUFFERED", _R, "_flush", "self._abandoned.discard"),
        _spec("duplicate", "BUFFERED", "BUFFERED", _R, "offer", "duplicates_suppressed"),
        _spec("duplicate", "RELEASED", "RELEASED", _R, "offer", "duplicates_suppressed"),
        _spec("abandon", "GAP", "ABANDONED", _R, "abandon", "self._abandoned.add"),
        _spec("abandon", "GAP", "ABANDONED", _R, "_force_flush", "self._abandoned.add"),
        _spec("release", "BUFFERED", "RELEASED", _R, "_flush", "released.append"),
    ),
)

#: The heartbeat failure detector's lease states per node.
FAILURE_DETECTOR_SPEC = MachineSpec(
    name="failure-detector",
    module=_R,
    states=("UNKNOWN", "MONITORED", "SUSPECTED"),
    initial=("UNKNOWN",),
    terminal=("UNKNOWN", "MONITORED"),
    transitions=(
        _spec("register", "UNKNOWN", "MONITORED", _R, "register", "self._deadlines[node]"),
        _spec("register", "SUSPECTED", "MONITORED", _R, "register", "self._suspected.discard"),
        _spec("heartbeat", "MONITORED", "MONITORED", _R, "heartbeat", "self._deadlines[node]"),
        _spec("suspect", "MONITORED", "SUSPECTED", _R, "check", "self._suspected.add"),
        _spec("deregister", "MONITORED", "UNKNOWN", _R, "deregister", "self._deadlines.pop"),
        _spec("deregister", "SUSPECTED", "UNKNOWN", _R, "deregister", "self._suspected.discard"),
    ),
)

#: Supervision of one chaos node: crash, heartbeat-driven suspicion,
#: repair with retry/degrade/give-up, plus the lossy-mode immediate
#: fail-and-repair labels.
NODE_SUPERVISION_SPEC = MachineSpec(
    name="node-supervision",
    module=_N,
    states=("LIVE", "CRASHED", "SUSPECTED", "REMOVED"),
    initial=("LIVE",),
    terminal=("LIVE", "REMOVED"),
    transitions=(
        _spec("crash", "LIVE", "CRASHED", _N, "_apply_fault", "self._crashed[event.node]"),
        _spec("fail_applied", "LIVE", "REMOVED", _N, "_apply_fault", "fail_broker"),
        _spec("fail_refused", "LIVE", "LIVE", _N, "_apply_fault", "refused"),
        _spec("suspect", "CRASHED", "SUSPECTED", _N, "_sweep", "detector.check"),
        _spec("repair_applied", "SUSPECTED", "REMOVED", _N, "_repair", "repairs_applied"),
        _spec("repair_retry", "SUSPECTED", "SUSPECTED", _N, "_repair", "repairs_retried"),
        _spec("degraded", "SUSPECTED", "REMOVED", _N, "_degrade", "quarantine_partitioned"),
        _spec("gave_up", "SUSPECTED", "REMOVED", _N, "_repair", "gave up"),
    ),
)

DEFAULT_MACHINE_SPECS: Tuple[MachineSpec, ...] = (
    UPLINK_RECEIVER_SPEC,
    FAILURE_DETECTOR_SPEC,
    NODE_SUPERVISION_SPEC,
)

#: Enum machines with declared terminal policy.  An enum not listed
#: here gets every state terminal-allowed (no COS813 without a spec).
ENUM_TERMINAL_POLICY: Dict[str, Tuple[str, ...]] = {
    # A DEGRADED query must stay healable; an ACTIVE one quarantinable.
    "QueryStatus": (),
    # A live migration must finish or roll back; the in-flight states
    # (PREPARING/DRAINING/CUTOVER) may never be where a group parks.
    "MigrationState": ("COMPLETED", "ABORTED"),
}


def _func_source(module: SourceModule, name: str) -> Optional[str]:
    """Source text of the (unique) function/method ``name``."""
    for node in ast.walk(module.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            end = getattr(node, "end_lineno", node.lineno)
            return "\n".join(module.lines[node.lineno - 1 : end])
    return None


def _extract_spec_machine(
    spec: MachineSpec,
    modules: Sequence[SourceModule],
    report: Report,
) -> Optional[StateMachine]:
    by_suffix = {
        suffix: module
        for module in modules
        for suffix in {spec.module} | {t.module for t in spec.transitions}
        if module.rel.endswith(suffix)
    }
    home = by_suffix.get(spec.module)
    if home is None:
        # The spec targets a module this package does not contain
        # (e.g. a scratch package under test) — nothing to anchor on.
        return None
    origin = (home.rel, 1)
    machine = StateMachine(
        name=spec.name,
        states=list(spec.states),
        initial=list(spec.initial),
        terminal=list(spec.terminal),
        origin=origin,
    )
    for template in spec.transitions:
        module = by_suffix.get(template.module)
        source = (
            _func_source(module, template.func) if module is not None else None
        )
        if source is None or template.needle not in source:
            where = module.rel if module is not None else template.module
            report.add(
                "COS812",
                f"machine {spec.name}: transition {template.source}->"
                f"{template.target} ({template.label}) has no producing "
                f"code path — {template.func}() no longer contains "
                f"{template.needle!r}",
                where,
                1,
            )
            continue
        transition = Transition(template.label, template.source, template.target)
        if transition not in machine.transitions:
            machine.transitions.append(transition)
    return machine


# ---------------------------------------------------------------------------
# enum-backed machines
# ---------------------------------------------------------------------------


def _enum_assignment_sites(
    modules: Sequence[SourceModule], enums: Dict[str, List[str]]
) -> Dict[str, List[Tuple[SourceModule, ast.Assign, str, str]]]:
    """enum -> [(module, assign node, assigned member, label)] for every
    ``<target>.<attr> = Enum.MEMBER`` site."""
    sites: Dict[str, List[Tuple[SourceModule, ast.Assign, str, str]]] = {}
    for module in modules:
        func_of: Dict[int, str] = {}
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(func):
                    func_of.setdefault(id(sub), func.name)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
            ):
                continue
            enum = node.value.value.id
            member = node.value.attr
            if enum not in enums or member not in enums[enum]:
                continue
            label = func_of.get(id(node), "<module>")
            sites.setdefault(enum, []).append((module, node, member, label))
    return sites


def _enum_defaults(
    modules: Sequence[SourceModule], enums: Dict[str, List[str]]
) -> Dict[str, Tuple[List[str], Tuple[str, int]]]:
    """enum -> (initial members, defining site) from class-level
    ``attr: Enum = Enum.MEMBER`` defaults."""
    defaults: Dict[str, Tuple[List[str], Tuple[str, int]]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and isinstance(stmt.value, ast.Attribute)
                    and isinstance(stmt.value.value, ast.Name)
                ):
                    continue
                enum = stmt.value.value.id
                member = stmt.value.attr
                if enum not in enums or member not in enums[enum]:
                    continue
                initial, site = defaults.get(
                    enum, ([], (module.rel, stmt.lineno))
                )
                if member not in initial:
                    initial.append(member)
                defaults[enum] = (initial, site)
    return defaults


def _narrowed_sources(
    module: SourceModule,
    assign: ast.Assign,
    enum: str,
    members: List[str],
    enums: Dict[str, List[str]],
) -> List[str]:
    """The from-set of one assignment site, narrowed by enum guards.

    Walks the ancestor chain: an enclosing ``if`` whose test compares
    the *same dotted subject* against members narrows the branch taken;
    a preceding sibling guard whose body diverts control (``continue``/
    ``return``/...) narrows the fall-through.
    """
    subject = _dotted(assign.targets[0])
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(module.tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    chain: List[ast.AST] = [assign]
    node: ast.AST = assign
    while id(node) in parents:
        node = parents[id(node)]
        chain.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    allowed = set(members)

    def narrow(test: ast.AST, taken: bool) -> None:
        nonlocal allowed
        decoded = _enum_tests(test, enums)
        if decoded is None:
            return
        sub, en, tested, negative = decoded
        if sub != subject or en != enum:
            return
        in_branch = tested if not negative else set(members) - tested
        allowed &= in_branch if taken else set(members) - in_branch

    for index, ancestor in enumerate(chain[1:], start=1):
        below = chain[index - 1]
        if isinstance(ancestor, ast.If):
            if any(below is stmt for stmt in ancestor.body):
                narrow(ancestor.test, taken=True)
            elif any(below is stmt for stmt in ancestor.orelse):
                narrow(ancestor.test, taken=False)
        body = getattr(ancestor, "body", None)
        if isinstance(body, list):
            for stmt in body:
                if stmt is below:
                    break
                if (
                    isinstance(stmt, ast.If)
                    and _terminating(stmt.body)
                    and not stmt.orelse
                ):
                    # Fall-through == the branch was NOT taken.
                    narrow(stmt.test, taken=False)
    return sorted(allowed, key=members.index)


def _terminating(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _extract_enum_machines(
    modules: Sequence[SourceModule],
    enums: Dict[str, List[str]],
) -> List[StateMachine]:
    machines: List[StateMachine] = []
    sites = _enum_assignment_sites(modules, enums)
    defaults = _enum_defaults(modules, enums)
    enum_origin: Dict[str, Tuple[str, int]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in enums:
                enum_origin.setdefault(node.name, (module.rel, node.lineno))
    for enum in sorted(set(sites) | set(defaults)):
        if enum not in sites and enum not in defaults:
            continue
        members = enums[enum]
        initial, _site = defaults.get(enum, ([], ("", 0)))
        terminal = ENUM_TERMINAL_POLICY.get(enum)
        machine = StateMachine(
            name=enum,
            states=list(members),
            initial=list(initial),
            terminal=list(members) if terminal is None else list(terminal),
            origin=enum_origin.get(enum, ("<unknown>", 0)),
        )
        seen: Set[Transition] = set()
        for module, assign, member, label in sites.get(enum, []):
            for source in _narrowed_sources(
                module, assign, enum, members, enums
            ):
                transition = Transition(label, source, member)
                if transition not in seen:
                    seen.add(transition)
                    machine.transitions.append(transition)
        machines.append(machine)
    return machines


# ---------------------------------------------------------------------------
# extraction + checks
# ---------------------------------------------------------------------------


def extract_lifecycle(
    modules: Sequence[SourceModule],
    specs: Sequence[MachineSpec] = DEFAULT_MACHINE_SPECS,
    report: Optional[Report] = None,
) -> List[StateMachine]:
    """Every lifecycle machine of a module set.

    ``report`` collects COS812 for spec transitions whose anchors are
    gone; pass ``None`` to extract without diagnostics (``repro flow``).
    """
    sink = report if report is not None else Report()
    enums = collect_enums(modules)
    machines = _extract_enum_machines(modules, enums)
    for spec in specs:
        machine = _extract_spec_machine(spec, modules, sink)
        if machine is not None:
            machines.append(machine)
    machines.sort(key=lambda m: m.name)
    return machines


def check_lifecycle(
    modules: Sequence[SourceModule],
    specs: Sequence[MachineSpec] = DEFAULT_MACHINE_SPECS,
) -> Report:
    """COS811/812/813 over a module set."""
    report = Report()
    machines = extract_lifecycle(modules, specs, report)
    for machine in machines:
        rel, line = machine.origin
        produced = set(machine.initial)
        for t in machine.transitions:
            produced.add(t.target)
        reachable = machine.reachable()
        with_exit = {t.source for t in machine.transitions}
        for state in machine.states:
            if state not in produced:
                report.add(
                    "COS812",
                    f"machine {machine.name}: state {state} has no "
                    "producing code path (no transition targets it and "
                    "it is not an initial state)",
                    rel,
                    line,
                )
            elif state not in reachable:
                report.add(
                    "COS811",
                    f"machine {machine.name}: state {state} is "
                    "unreachable from the initial state(s) "
                    f"{', '.join(machine.initial) or '<none>'}",
                    rel,
                    line,
                )
            elif state not in with_exit and state not in machine.terminal:
                report.add(
                    "COS813",
                    f"machine {machine.name}: state {state} has no exit "
                    "but is not an allowed terminal state — once "
                    "entered, nothing can ever leave it",
                    rel,
                    line,
                )
    return report
