"""The unified source-lint driver (``repro check --self``).

Runs the three source families over a package directory — COS5xx
determinism (:mod:`repro.analysis.purity`), COS6xx protocol contracts
(:mod:`repro.analysis.protocol`), COS7xx style
(:mod:`repro.analysis.style`) — through one pipeline:

1. load every module in sorted-path order (deterministic output);
2. collect package-wide facts (enum tables for the dispatch check,
   set-returning function annotations for the iteration check);
3. run the passes per module;
4. honor ``# cos: disable=...`` pragmas;
5. subtract the checked-in baseline (when given);
6. optionally restrict to a ``--code`` selection.

The same per-module entry point (:func:`check_source_module`) backs
single-file uses: mutation canaries, property tests, editor hooks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.protocol import (
    DEFAULT_CALLBACK_MODULES,
    check_protocol,
    collect_enums,
)
from repro.analysis.purity import check_purity, collect_set_returning
from repro.analysis.source import (
    Baseline,
    SourceModule,
    apply_pragmas,
    load_package,
    spec_matches,
)
from repro.analysis.style import check_style


def default_package_dir() -> Path:
    """The installed ``repro`` package directory (the ``--self`` target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(package: Optional[Path] = None) -> Path:
    """``tools/cos-baseline.txt`` next to the package's repo root."""
    package = package or default_package_dir()
    return package.parent.parent / "tools" / "cos-baseline.txt"


def check_source_module(
    module: SourceModule,
    enums: Optional[Dict[str, List[str]]] = None,
    set_returning: Iterable[str] = (),
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
    respect_pragmas: bool = True,
) -> Report:
    """Every source family over one module.

    Package-wide facts (``enums``, ``set_returning``) default to what
    the module itself declares — sufficient for canaries and tests.
    """
    report = Report()
    report.extend(check_purity(module, set_returning))
    report.extend(check_protocol(module, enums, callback_modules))
    report.extend(check_style(module))
    if respect_pragmas:
        report = apply_pragmas(report, module)
    return report


def check_modules(
    modules: Sequence[SourceModule],
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
    respect_pragmas: bool = True,
) -> Report:
    """The package pipeline over an explicit module list."""
    enums = collect_enums(modules)
    set_returning = collect_set_returning(modules)
    combined = Report()
    for module in modules:
        combined.extend(
            check_source_module(
                module,
                enums=enums,
                set_returning=set_returning,
                callback_modules=callback_modules,
                respect_pragmas=respect_pragmas,
            )
        )
    return combined


def check_package(
    package: Path,
    base: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    codes: Optional[Sequence[str]] = None,
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
    respect_pragmas: bool = True,
) -> Tuple[Report, int]:
    """Lint every module under ``package``.

    Returns ``(report, forgiven)`` where ``forgiven`` counts findings
    the ``baseline`` absorbed.  ``codes`` restricts the report to a
    code-spec selection (exact codes or ``COS5xx`` families) *after*
    pragmas and baseline are applied.
    """
    modules = load_package(package, base)
    report = check_modules(
        modules,
        callback_modules=callback_modules,
        respect_pragmas=respect_pragmas,
    )
    forgiven = 0
    if baseline is not None:
        report, forgiven = baseline.filter(report)
    if codes:
        report = Report(
            d for d in report if spec_matches(codes, d.code)
        )
    return report, forgiven
