"""The unified source-lint driver (``repro check --self``).

Runs the source families over a package directory — COS5xx determinism
(:mod:`repro.analysis.purity`), COS6xx protocol contracts
(:mod:`repro.analysis.protocol`), COS7xx style
(:mod:`repro.analysis.style`), the package-level COS8xx protocol
models (:mod:`repro.analysis.flowgraph` message flow,
:mod:`repro.analysis.lifecycle` state machines), and the COS90x
bounded model check of their composition
(:mod:`repro.analysis.model`) — through one pipeline:

1. load every module in sorted-path order (deterministic output);
2. collect package-wide facts (enum tables for the dispatch check,
   set-returning function annotations for the iteration check);
3. run the per-module passes, then the package-level passes;
4. honor ``# cos: disable=...`` pragmas;
5. subtract the checked-in baseline (when given) and flag its stale
   remainder (COS704);
6. optionally restrict to a ``--code`` selection.

The per-module entry point (:func:`check_source_module`) backs
single-file uses — mutation canaries, property tests, editor hooks —
and deliberately excludes the package-level COS8xx passes: a flow
graph of one module in isolation would drown in false positives.

Each driver entry point accepts an optional ``timings`` dict that is
filled with per-pass wall-clock seconds (the ``repro check --self
--json`` analyzer budget that CI gates on).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.flowgraph import check_flowgraph
from repro.analysis.lifecycle import check_lifecycle, extract_lifecycle
from repro.analysis.model import build_product, check_model
from repro.analysis.protocol import (
    DEFAULT_CALLBACK_MODULES,
    check_protocol,
    collect_enums,
)
from repro.analysis.purity import check_purity, collect_set_returning
from repro.analysis.source import (
    Baseline,
    PragmaIndex,
    SourceModule,
    apply_pragmas,
    load_package,
    spec_matches,
)
from repro.analysis.style import check_style

#: Analyzer pass list, in execution order (the ``--json`` contract).
PASSES = ("purity", "protocol", "style", "flowgraph", "lifecycle", "model")


def _clock() -> float:
    # cos: disable=COS502 (analyzer self-timing, not simulated time)
    return time.perf_counter()


def default_package_dir() -> Path:
    """The installed ``repro`` package directory (the ``--self`` target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(package: Optional[Path] = None) -> Path:
    """``tools/cos-baseline.txt`` next to the package's repo root."""
    package = package or default_package_dir()
    return package.parent.parent / "tools" / "cos-baseline.txt"


def check_source_module(
    module: SourceModule,
    enums: Optional[Dict[str, List[str]]] = None,
    set_returning: Iterable[str] = (),
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
    respect_pragmas: bool = True,
) -> Report:
    """Every source family over one module.

    Package-wide facts (``enums``, ``set_returning``) default to what
    the module itself declares — sufficient for canaries and tests.
    """
    report = Report()
    report.extend(check_purity(module, set_returning))
    report.extend(check_protocol(module, enums, callback_modules))
    report.extend(check_style(module))
    if respect_pragmas:
        report = apply_pragmas(report, module)
    return report


def _apply_package_pragmas(
    report: Report, modules: Sequence[SourceModule]
) -> Report:
    """Pragma filtering for package-level passes, whose diagnostics
    span modules: each finding consults the pragmas of the module it
    anchors on."""
    indexes: Dict[str, PragmaIndex] = {}
    by_rel = {module.rel: module for module in modules}
    kept = []
    for diag in report:
        module = by_rel.get(diag.source)
        if module is not None:
            index = indexes.get(diag.source)
            if index is None:
                index = indexes[diag.source] = PragmaIndex(module)
            if index.suppresses(diag.pos, diag.code):
                continue
        kept.append(diag)
    return Report(kept)


def check_modules(
    modules: Sequence[SourceModule],
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
    respect_pragmas: bool = True,
    timings: Optional[Dict[str, float]] = None,
) -> Report:
    """The package pipeline over an explicit module list.

    Per-module families first (pragmas applied per module), then the
    package-level COS8xx passes (pragmas applied per anchored module).
    ``timings`` — when given — accumulates wall-clock seconds per pass
    under the names in :data:`PASSES`.
    """
    enums = collect_enums(modules)
    set_returning = collect_set_returning(modules)
    spent = {name: 0.0 for name in PASSES}
    combined = Report()
    for module in modules:
        per_module = Report()
        mark = _clock()
        per_module.extend(check_purity(module, set_returning))
        spent["purity"] += _clock() - mark
        mark = _clock()
        per_module.extend(check_protocol(module, enums, callback_modules))
        spent["protocol"] += _clock() - mark
        mark = _clock()
        per_module.extend(check_style(module))
        spent["style"] += _clock() - mark
        if respect_pragmas:
            per_module = apply_pragmas(per_module, module)
        combined.extend(per_module)
    mark = _clock()
    flow = check_flowgraph(modules)
    spent["flowgraph"] = _clock() - mark
    mark = _clock()
    lifecycle = check_lifecycle(modules)
    spent["lifecycle"] = _clock() - mark
    mark = _clock()
    # Bounded model check of the composed machines (COS90x).  Spec
    # anchor failures are already COS812 in the lifecycle pass, so the
    # re-extraction here runs without a report.
    machines = extract_lifecycle(modules)
    model_report, _exploration = check_model(
        build_product(machines, modules)
    )
    spent["model"] = _clock() - mark
    for package_report in (flow, lifecycle, model_report):
        if respect_pragmas:
            package_report = _apply_package_pragmas(package_report, modules)
        combined.extend(package_report)
    if timings is not None:
        timings.update(spent)
    return combined


def check_package(
    package: Path,
    base: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    codes: Optional[Sequence[str]] = None,
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
    respect_pragmas: bool = True,
    timings: Optional[Dict[str, float]] = None,
) -> Tuple[Report, int]:
    """Lint every module under ``package``.

    Returns ``(report, forgiven)`` where ``forgiven`` counts findings
    the ``baseline`` absorbed.  Baseline entries whose count exceeds
    the findings actually present are *stale* and reported as COS704 —
    a fixed finding must leave the ledger, not linger as a free pass
    for a future regression.  ``codes`` restricts the report to a
    code-spec selection (exact codes or ``COS5xx`` families) *after*
    pragmas and baseline are applied.
    """
    mark = _clock()
    modules = load_package(package, base)
    if timings is not None:
        timings["load"] = _clock() - mark
    report = check_modules(
        modules,
        callback_modules=callback_modules,
        respect_pragmas=respect_pragmas,
        timings=timings,
    )
    forgiven = 0
    if baseline is not None:
        report, forgiven, stale = baseline.audit(report)
        for rel, code, leftover in stale:
            report.add(
                "COS704",
                f"baseline allows {leftover} more {code} finding(s) in "
                f"{rel} than the source still has — remove the entry "
                "(or lower its count)",
                rel,
                None,
            )
    if codes:
        report = Report(
            d for d in report if spec_matches(codes, d.code)
        )
    return report, forgiven
