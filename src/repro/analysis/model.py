"""COS90x: bounded model checking of the composed protocol machines.

:mod:`repro.analysis.lifecycle` extracts five state machines from the
source (the uplink receiver, the failure detector, node supervision,
``QueryStatus`` and ``MigrationState``); the conformance pass replays
chaos traces against each machine *in isolation*.  Nothing in either
pass proves that the machines **compose** safely — that the migration
protocol cannot cut over past a lossy handoff channel, that a
quarantined query can always be resumed, that the repair loop cannot
spin forever without making progress.

This module closes that gap.  It composes the extracted machines with
an explicit *environment automaton* — the adversarial moves chaos can
make (tuple loss, duplication, reordering, node crash, lease expiry,
partition heal, migration probes) plus small budgets that keep the
state space finite — into a product automaton, and explores it
exhaustively with bounded BFS over canonicalized states:

* **COS901** — a tuple-loss-after-close-barrier state is reachable:
  the migration reaches ``CUTOVER``/``COMPLETED`` while its handoff
  channel still has a lost, open-gap or abandoned chunk.  The guard
  that forbids this (cutover requires the channel fully ``RELEASED``)
  is only admitted when its *source anchors* verify — the code that
  certifies the barrier (``MigrationChannel.close`` returning open
  gaps, ``_cutover_migration`` aborting on ``handoff-gaps``) must
  still exist, or the model drops the guard and the loss state
  becomes reachable.  Deleting the certification in the source is
  therefore caught by the checker, not hidden by the model.
* **COS902** — deadlock: a product state outside the acceptable
  quiescent set with no enabled transition.
* **COS903** — livelock: a reachable cycle with no progress action
  and no exit (under weak fairness a run can stay in it forever
  without resolving a non-quiescent component).
* **COS904** — cross-machine invariant violations (a ``DEGRADED``
  query coexisting with a completed migration, a seq abandoned after
  it was released, a ``SUSPECTED`` detector entry for a live node).

The model is *small-scope*: one data-plane slot, one migration with
its handoff channel, one supervised node, one query group, and 0/1
budgets for duplication, crashes and probes.  That is deliberate —
the protocol bugs these checks target (missing heal path, missing
abort path, uncertified cutover) already manifest at scope 1, and the
bounded product stays a few thousand states, explored in well under a
second inside the ``repro check --self`` budget.

:mod:`repro.analysis.modelcov` maps chaos-conformance walks onto the
same machines for COS905 transition coverage; ``repro model`` is the
CLI surface (``--depth``, ``--json``, ``--dot``, ``--coverage``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.diagnostics import Report
from repro.analysis.lifecycle import StateMachine, _func_source
from repro.analysis.source import SourceModule

State = Tuple[str, ...]

#: Exploration safety valve: far above the real product (~10^3–10^4
#: states) but a hard stop for doctored machine sets.
DEFAULT_MAX_STATES = 200_000


# ---------------------------------------------------------------------------
# model vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Component:
    """One machine instance in the product.

    ``quiescent`` are the states in which the component may rest
    forever without the product being a deadlock/livelock: the
    machine's terminal states plus the never-started ones (an unsent
    seq, an unspawned migration).
    """

    name: str
    machine: StateMachine
    initial: str
    quiescent: FrozenSet[str]
    extra_states: Tuple[str, ...] = ()
    #: ``(variable, values)`` — when that variable currently holds one
    #: of the values, this component is unconditionally quiescent: its
    #: lifetime ended with the owning protocol step (an aborted
    #: migration tears its handoff channel down; the source retains
    #: the authoritative state, so unreleased chunks are moot).
    released_when: Optional[Tuple[str, Tuple[str, ...]]] = None

    @property
    def states(self) -> Tuple[str, ...]:
        return tuple(self.extra_states) + tuple(self.machine.states)


@dataclass(frozen=True)
class EnvVar:
    """One environment variable (budget/flag) of the product."""

    name: str
    values: Tuple[str, ...]
    initial: str


@dataclass(frozen=True)
class Move:
    """One component step inside a rule.

    ``label`` names the machine transition the step must ride on: the
    move is enabled only when the extracted machine actually contains
    an edge ``(label, current -> target)``.  This is what makes
    source-level canaries propagate — deleting the code that produces
    a transition removes the machine edge, which disables every rule
    that needs it.  ``label=None`` is an environment-driven jump
    (spawning a migration), validated against the component's state
    set only.
    """

    component: str
    label: Optional[str]
    target: str


@dataclass(frozen=True)
class Anchor:
    """A source certification: ``needle`` must appear in ``func`` of
    the module whose rel path ends with ``module``."""

    module: str
    func: str
    needle: str


@dataclass(frozen=True)
class Rule:
    """One action of the product automaton.

    ``guards`` constrain current component/env values; ``moves`` are
    the synchronized machine steps; ``sets`` assign env vars.
    ``certified_guards`` are guards that only apply when every anchor
    in ``anchors`` verifies against the source — when an anchor fails
    the guard is dropped (recorded on the model) and the rule fires
    unguarded, exposing whatever the certification was preventing.
    """

    action: str
    progress: bool
    moves: Tuple[Move, ...] = ()
    guards: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    sets: Tuple[Tuple[str, str], ...] = ()
    certified_guards: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    anchors: Tuple[Anchor, ...] = ()


@dataclass(frozen=True)
class Invariant:
    """A cross-machine safety property, violated when ``forbidden``
    (a conjunction of variable -> value-set constraints) is reachable."""

    name: str
    forbidden: Tuple[Tuple[str, Tuple[str, ...]], ...]
    message: str
    anchor_component: str


@dataclass
class ProductModel:
    """The composed automaton: components + env vars + rules."""

    components: List[Component]
    env: List[EnvVar]
    rules: List[Rule]
    invariants: List[Invariant]
    #: (rule action, reason) for rules whose components are missing
    #: from the machine set (the rule is omitted entirely).
    dropped: List[Tuple[str, str]] = field(default_factory=list)
    #: (rule action, anchor, reason) for certified guards that did not
    #: verify against the source and were therefore dropped.
    uncertified: List[Tuple[str, Anchor]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index = {
            var.name: i
            for i, var in enumerate(
                [
                    EnvVar(c.name, c.states, c.initial)
                    for c in self.components
                ]
                + self.env
            )
        }
        self._edge_sets: Dict[str, FrozenSet[Tuple[str, str, str]]] = {
            c.name: frozenset(
                (t.label, t.source, t.target)
                for t in c.machine.transitions
            )
            for c in self.components
        }
        self._quiescent = {c.name: c.quiescent for c in self.components}

    @property
    def variables(self) -> List[str]:
        return [c.name for c in self.components] + [v.name for v in self.env]

    def slot(self, name: str) -> int:
        return self._index[name]

    @property
    def initial_state(self) -> State:
        return tuple(
            [c.initial for c in self.components]
            + [v.initial for v in self.env]
        )

    def component(self, name: str) -> Component:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(name)

    def enabled(self, rule: Rule, state: State) -> Optional[State]:
        """The successor state when ``rule`` fires in ``state``,
        ``None`` when any guard or move is disabled."""
        for name, allowed in rule.guards:
            if state[self._index[name]] not in allowed:
                return None
        for name, allowed in rule.certified_guards:
            if state[self._index[name]] not in allowed:
                return None
        values = list(state)
        for move in rule.moves:
            idx = self._index[move.component]
            current = values[idx]
            if move.label is not None:
                edges = self._edge_sets[move.component]
                if (move.label, current, move.target) not in edges:
                    return None
            values[idx] = move.target
        for name, value in rule.sets:
            values[self._index[name]] = value
        return tuple(values)

    def _released(self, component: Component, state: State) -> bool:
        if component.released_when is None:
            return False
        name, values = component.released_when
        try:
            return state[self._index[name]] in values
        except KeyError:
            return False

    def acceptable(self, state: State) -> bool:
        """Whether every component rests in a quiescent state (env
        vars are unconstrained — a spent budget is not a defect)."""
        for i, component in enumerate(self.components):
            if state[i] not in component.quiescent and not self._released(
                component, state
            ):
                return False
        return True

    def render_state(self, state: State) -> str:
        return " ".join(
            f"{name}={value}"
            for name, value in zip(self.variables, state)
        )

    def reachable_machine_transitions(
        self, exploration: "Exploration"
    ) -> Dict[str, Set[Tuple[str, str, str]]]:
        """Machine transitions actually driven by the explored product
        (machine name -> set of (label, source, target)).  This is the
        COS905 coverage denominator before ε/baseline filtering."""
        used: Dict[str, Set[Tuple[str, str, str]]] = {
            c.machine.name: set() for c in self.components
        }
        by_component = {c.name: c.machine.name for c in self.components}
        for src_idx, rule_idx, _dst_idx in exploration.edges:
            state = exploration.states[src_idx]
            rule = self.rules[rule_idx]
            for move in rule.moves:
                if move.label is None:
                    continue
                current = state[self._index[move.component]]
                used[by_component[move.component]].add(
                    (move.label, current, move.target)
                )
        return used


# ---------------------------------------------------------------------------
# the COSMOS product: five machines + environment
# ---------------------------------------------------------------------------

#: Machine-name -> product component(s) it instantiates.  The uplink
#: receiver appears twice: once as the data-plane slot, once as the
#: migration handoff channel (same protocol, different role).
_COMPONENT_PLAN: Tuple[
    Tuple[
        str,
        str,
        Tuple[str, ...],
        Tuple[str, ...],
        Optional[Tuple[str, Tuple[str, ...]]],
    ],
    ...,
] = (
    # (component, machine, extra quiescent beyond machine.terminal,
    #  extra states, released_when)
    ("slot", "uplink-receiver", ("UNSEEN",), (), None),
    # An aborted (or never-started) migration tears its channel down:
    # the source keeps the authoritative state, so unreleased chunks
    # stop mattering.  CUTOVER/COMPLETED are deliberately absent —
    # unreleased chunks past the barrier are the COS901 loss state.
    ("channel", "uplink-receiver", ("UNSEEN",), (), ("migration", ("-", "ABORTED"))),
    ("detector", "failure-detector", (), (), None),
    ("node", "node-supervision", (), (), None),
    ("query", "QueryStatus", ("ACTIVE",), (), None),
    ("migration", "MigrationState", ("-",), ("-",), None),
)

_ENV_PLAN: Tuple[EnvVar, ...] = (
    EnvVar("link", ("calm", "partitioned"), "calm"),
    EnvVar("copies", ("0", "1"), "0"),
    EnvVar("crashes", ("0", "1"), "0"),
    EnvVar("probes", ("0", "1"), "0"),
    EnvVar("delivered", ("no", "yes"), "no"),
    EnvVar("owner", ("none", "partition", "migration"), "none"),
)

#: The cutover barrier certification: cutover may assume the channel
#: is fully RELEASED only while the source still (a) reports open gaps
#: from ``MigrationChannel.close`` and (b) aborts the migration on
#: them in ``_cutover_migration``.
_CUTOVER_ANCHORS = (
    Anchor("system/loadmgr.py", "close", "open_gaps"),
    Anchor("sim/network.py", "_cutover_migration", "handoff-gaps"),
)


def _product_rules() -> Tuple[Rule, ...]:
    """The environment automaton, one rule per adversarial or protocol
    move.  Guards name current values; moves ride machine edges."""
    return (
        # -- data plane: loss, reordering, duplication ------------------
        Rule(
            "send_ok",
            progress=True,
            guards=(("slot", ("UNSEEN",)),),
            moves=(Move("slot", "arrive", "BUFFERED"),),
        ),
        Rule(
            "send_lost",
            progress=False,
            guards=(("slot", ("UNSEEN",)),),
            moves=(Move("slot", "drop", "LOST"),),
        ),
        Rule(
            # A later seq arrives first: the receiver sees the hole.
            "expose_reorder",
            progress=False,
            guards=(("slot", ("UNSEEN",)),),
            moves=(Move("slot", "gap_detect", "GAP"),),
        ),
        Rule(
            # Punctuation announces the watermark past a lost seq.
            "expose_punctuation",
            progress=False,
            guards=(("slot", ("LOST",)),),
            moves=(Move("slot", "gap_detect", "GAP"),),
        ),
        Rule(
            "nack",
            progress=False,
            guards=(("slot", ("GAP",)),),
            moves=(Move("slot", "nack", "GAP"),),
        ),
        Rule(
            "retransmit_ok",
            progress=True,
            guards=(("slot", ("GAP",)),),
            moves=(Move("slot", "retransmit", "BUFFERED"),),
        ),
        Rule(
            "abandon",
            progress=True,
            guards=(("slot", ("GAP",)),),
            moves=(Move("slot", "abandon", "ABANDONED"),),
        ),
        Rule(
            # A late original for a known gap / an abandoned seq.
            "late_arrival",
            progress=True,
            guards=(("slot", ("GAP", "ABANDONED")), ("copies", ("0",))),
            moves=(Move("slot", "arrive", "BUFFERED"),),
            sets=(("copies", "1"),),
        ),
        Rule(
            "late_retransmit",
            progress=True,
            guards=(("slot", ("ABANDONED",)), ("copies", ("0",))),
            moves=(Move("slot", "retransmit", "BUFFERED"),),
            sets=(("copies", "1"),),
        ),
        Rule(
            "duplicate_buffered",
            progress=False,
            guards=(("slot", ("BUFFERED",)), ("copies", ("0",))),
            moves=(Move("slot", "duplicate", "BUFFERED"),),
            sets=(("copies", "1"),),
        ),
        Rule(
            "duplicate_released",
            progress=False,
            guards=(("slot", ("RELEASED",)), ("copies", ("0",))),
            moves=(Move("slot", "duplicate", "RELEASED"),),
            sets=(("copies", "1"),),
        ),
        Rule(
            "release",
            progress=True,
            guards=(("slot", ("BUFFERED",)),),
            moves=(Move("slot", "release", "RELEASED"),),
            sets=(("delivered", "yes"),),
        ),
        # -- node supervision: crash, lease expiry, repair --------------
        Rule(
            "register",
            progress=True,
            guards=(("detector", ("UNKNOWN",)),),
            moves=(Move("detector", "register", "MONITORED"),),
        ),
        Rule(
            "heartbeat",
            progress=False,
            guards=(("detector", ("MONITORED",)), ("node", ("LIVE",))),
            moves=(Move("detector", "heartbeat", "MONITORED"),),
        ),
        Rule(
            "crash",
            progress=False,
            guards=(("node", ("LIVE",)), ("crashes", ("0",))),
            moves=(Move("node", "crash", "CRASHED"),),
            sets=(("crashes", "1"),),
        ),
        Rule(
            # Direct fail_broker injection (lossy mode).
            "fail_applied",
            progress=False,
            guards=(("node", ("LIVE",)), ("crashes", ("0",))),
            moves=(Move("node", "fail_applied", "REMOVED"),),
            sets=(("crashes", "1"),),
        ),
        Rule(
            # The injector refuses a fault that would disconnect the tree.
            "fail_refused",
            progress=False,
            guards=(("node", ("LIVE",)), ("crashes", ("0",))),
            moves=(Move("node", "fail_refused", "LIVE"),),
            sets=(("crashes", "1"),),
        ),
        Rule(
            # The heartbeat lease expires on the crashed node: the
            # detector and the supervisor suspect it together.
            "lease_expiry",
            progress=True,
            guards=(("node", ("CRASHED",)), ("detector", ("MONITORED",))),
            moves=(
                Move("detector", "suspect", "SUSPECTED"),
                Move("node", "suspect", "SUSPECTED"),
            ),
        ),
        Rule(
            "repair_retry",
            progress=False,
            guards=(("node", ("SUSPECTED",)),),
            moves=(Move("node", "repair_retry", "SUSPECTED"),),
        ),
        Rule(
            "repair_ok",
            progress=True,
            guards=(("node", ("SUSPECTED",)),),
            moves=(
                Move("node", "repair_applied", "REMOVED"),
                Move("detector", "deregister", "UNKNOWN"),
            ),
        ),
        Rule(
            "gave_up",
            progress=True,
            guards=(("node", ("SUSPECTED",)),),
            moves=(
                Move("node", "gave_up", "REMOVED"),
                Move("detector", "deregister", "UNKNOWN"),
            ),
        ),
        Rule(
            # Repair degrades to a partition: the stranded query is
            # quarantined until the partition heals.
            "degrade_quarantine",
            progress=True,
            guards=(("node", ("SUSPECTED",)), ("owner", ("none",))),
            moves=(
                Move("node", "degraded", "REMOVED"),
                Move("detector", "deregister", "UNKNOWN"),
                Move("query", "quarantine_partitioned", "DEGRADED"),
            ),
            sets=(("link", "partitioned"), ("owner", "partition")),
        ),
        Rule(
            # Same degrade, but no query was stranded on the far side
            # (or the group is already quarantined by a migration).
            "degrade_empty",
            progress=True,
            guards=(("node", ("SUSPECTED",)),),
            moves=(
                Move("node", "degraded", "REMOVED"),
                Move("detector", "deregister", "UNKNOWN"),
            ),
            sets=(("link", "partitioned"),),
        ),
        Rule(
            # The operator restores connectivity; heal_partition
            # resumes the partition-quarantined query.
            "heal",
            progress=True,
            guards=(
                ("link", ("partitioned",)),
                ("owner", ("partition",)),
            ),
            moves=(Move("query", "heal_partition", "ACTIVE"),),
            sets=(("link", "calm"), ("owner", "none")),
        ),
        # -- live migration: probe, drain, cutover ----------------------
        Rule(
            # A load probe picks the group: spawn the migration and
            # quarantine the group's queries.
            "probe",
            progress=True,
            guards=(
                ("migration", ("-",)),
                ("probes", ("0",)),
                ("owner", ("none",)),
            ),
            moves=(
                Move("migration", None, "PREPARING"),
                Move("query", "quarantine_for_migration", "DEGRADED"),
            ),
            sets=(("probes", "1"), ("owner", "migration")),
        ),
        Rule(
            "drain_ok",
            progress=True,
            guards=(("channel", ("UNSEEN",)),),
            moves=(
                Move("migration", "start_drain", "DRAINING"),
                Move("channel", "arrive", "BUFFERED"),
            ),
        ),
        Rule(
            # The drained state chunk is lost in flight.
            "drain_lost",
            progress=True,
            guards=(("channel", ("UNSEEN",)),),
            moves=(
                Move("migration", "start_drain", "DRAINING"),
                Move("channel", "drop", "LOST"),
            ),
        ),
        Rule(
            # close() punctuates the channel: the lost chunk becomes a
            # known gap.
            "channel_expose",
            progress=False,
            guards=(("channel", ("LOST",)), ("migration", ("DRAINING",))),
            moves=(Move("channel", "gap_detect", "GAP"),),
        ),
        Rule(
            "channel_nack",
            progress=False,
            guards=(("channel", ("GAP",)), ("migration", ("DRAINING",))),
            moves=(Move("channel", "nack", "GAP"),),
        ),
        Rule(
            "channel_retransmit",
            progress=True,
            guards=(("channel", ("GAP",)), ("migration", ("DRAINING",))),
            moves=(Move("channel", "retransmit", "BUFFERED"),),
        ),
        Rule(
            "channel_abandon",
            progress=True,
            guards=(("channel", ("GAP",)), ("migration", ("DRAINING",))),
            moves=(Move("channel", "abandon", "ABANDONED"),),
        ),
        Rule(
            "channel_release",
            progress=True,
            guards=(("channel", ("BUFFERED",)),),
            moves=(Move("channel", "release", "RELEASED"),),
        ),
        Rule(
            # Cutover retry while the target is unreachable: capped
            # backoff, no state change — pure (lack of) progress.
            "migrate_retry",
            progress=False,
            guards=(("migration", ("DRAINING",)),),
        ),
        Rule(
            "cutover",
            progress=True,
            moves=(Move("migration", "cut_over", "CUTOVER"),),
            certified_guards=(("channel", ("RELEASED",)),),
            anchors=_CUTOVER_ANCHORS,
        ),
        Rule(
            "complete",
            progress=True,
            guards=(("owner", ("migration",)),),
            moves=(
                Move("migration", "complete", "COMPLETED"),
                Move("query", "resume_after_migration", "ACTIVE"),
            ),
            sets=(("owner", "none"),),
        ),
        Rule(
            # Any in-flight abort (source lost, target lost, handoff
            # gaps, superseded): the quarantined group is resumed.
            "abort",
            progress=True,
            guards=(("owner", ("migration",)),),
            moves=(
                Move("migration", "abort", "ABORTED"),
                Move("query", "resume_after_migration", "ACTIVE"),
            ),
            sets=(("owner", "none"),),
        ),
    )


_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        "quarantine-ownership",
        forbidden=(
            ("owner", ("migration",)),
            ("migration", ("-", "COMPLETED", "ABORTED")),
        ),
        message=(
            "a migration-quarantined (DEGRADED) query coexists with a "
            "migration that is not in flight — cutover/abort must "
            "resume the group it quarantined"
        ),
        anchor_component="migration",
    ),
    Invariant(
        "degraded-unowned",
        forbidden=(("query", ("DEGRADED",)), ("owner", ("none",))),
        message=(
            "a DEGRADED query with no quarantine owner — nothing is "
            "responsible for ever resuming it"
        ),
        anchor_component="query",
    ),
    Invariant(
        "abandoned-after-release",
        forbidden=(("slot", ("ABANDONED",)), ("delivered", ("yes",))),
        message=(
            "a seq was abandoned after it was released downstream — "
            "exactly-once delivery is broken"
        ),
        anchor_component="slot",
    ),
    Invariant(
        "suspected-live",
        forbidden=(("detector", ("SUSPECTED",)), ("node", ("LIVE",))),
        message=(
            "the failure detector suspects a node that is still live — "
            "lease expiry must only fire on crashed nodes"
        ),
        anchor_component="node",
    ),
)


def build_product(
    machines: Sequence[StateMachine],
    modules: Optional[Sequence[SourceModule]] = None,
) -> ProductModel:
    """The COSMOS product automaton over the extracted ``machines``.

    ``modules`` — when given — is used to verify certification
    anchors; certified guards whose anchors no longer match the source
    are dropped (and recorded in ``model.uncertified``).  Without
    modules the anchors are assumed intact (pure-machine composition,
    used by unit tests that doctor the machines directly).

    Rules touching a machine absent from ``machines`` are dropped and
    recorded in ``model.dropped`` so partial machine sets (scratch
    packages under test) still compose.
    """
    by_name = {machine.name: machine for machine in machines}
    components: List[Component] = []
    for comp_name, machine_name, extra_quiescent, extra_states, released in (
        _COMPONENT_PLAN
    ):
        machine = by_name.get(machine_name)
        if machine is None:
            continue
        initial = (
            extra_states[0]
            if extra_states
            else (machine.initial[0] if machine.initial else machine.states[0])
        )
        components.append(
            Component(
                name=comp_name,
                machine=machine,
                initial=initial,
                quiescent=frozenset(machine.terminal) | set(extra_quiescent),
                extra_states=extra_states,
                released_when=released,
            )
        )
    present = {c.name for c in components}
    components = [
        c
        if c.released_when is None or c.released_when[0] in present
        else Component(
            c.name, c.machine, c.initial, c.quiescent, c.extra_states
        )
        for c in components
    ]
    env = [var for var in _ENV_PLAN]
    known = present | {var.name for var in env}

    dropped: List[Tuple[str, str]] = []
    uncertified: List[Tuple[str, Anchor]] = []
    rules: List[Rule] = []
    for rule in _product_rules():
        touched = {move.component for move in rule.moves}
        touched |= {name for name, _ in rule.guards}
        touched |= {name for name, _ in rule.certified_guards}
        missing = sorted(name for name in touched if name not in known)
        if missing:
            dropped.append(
                (rule.action, f"missing component(s): {', '.join(missing)}")
            )
            continue
        if rule.certified_guards and rule.anchors:
            holds = modules is None or all(
                _anchor_holds(anchor, modules) for anchor in rule.anchors
            )
            if not holds:
                for anchor in rule.anchors:
                    if modules is not None and not _anchor_holds(
                        anchor, modules
                    ):
                        uncertified.append((rule.action, anchor))
                rule = Rule(
                    rule.action,
                    rule.progress,
                    moves=rule.moves,
                    guards=rule.guards,
                    sets=rule.sets,
                )
        rules.append(rule)

    invariants = [
        inv
        for inv in _INVARIANTS
        if all(
            name in known
            for name, _ in inv.forbidden
        )
        and inv.anchor_component in present
    ]
    return ProductModel(
        components=components,
        env=env,
        rules=rules,
        invariants=invariants,
        dropped=dropped,
        uncertified=uncertified,
    )


def _anchor_holds(
    anchor: Anchor, modules: Sequence[SourceModule]
) -> bool:
    for module in modules:
        if module.rel.endswith(anchor.module):
            source = _func_source(module, anchor.func)
            if source is not None and anchor.needle in source:
                return True
    return False


# ---------------------------------------------------------------------------
# exploration
# ---------------------------------------------------------------------------


@dataclass
class Exploration:
    """Bounded BFS over the product's canonicalized states."""

    model: ProductModel
    states: List[State]
    depth: List[int]
    #: (source state idx, rule idx, target state idx), BFS order.
    edges: List[Tuple[int, int, int]]
    #: Outgoing edge indexes per state.
    out: List[List[int]]
    exhausted: bool
    max_depth: int

    @property
    def index(self) -> Dict[State, int]:
        return {state: i for i, state in enumerate(self.states)}


def explore(
    model: ProductModel,
    depth: Optional[int] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> Exploration:
    """BFS from the initial state; ``depth`` bounds the exploration
    radius (``None`` = exhaust), ``max_states`` is a hard safety cap.
    ``exhausted`` is False when either bound truncated the frontier —
    liveness checks (COS902/903) are only sound on exhausted runs."""
    initial = model.initial_state
    index: Dict[State, int] = {initial: 0}
    states: List[State] = [initial]
    depths: List[int] = [0]
    edges: List[Tuple[int, int, int]] = []
    out: List[List[int]] = [[]]
    queue = deque([0])
    exhausted = True
    max_seen = 0
    while queue:
        src = queue.popleft()
        level = depths[src]
        max_seen = max(max_seen, level)
        if depth is not None and level >= depth:
            exhausted = False
            continue
        state = states[src]
        for rule_idx, rule in enumerate(model.rules):
            nxt = model.enabled(rule, state)
            if nxt is None:
                continue
            dst = index.get(nxt)
            if dst is None:
                if len(states) >= max_states:
                    exhausted = False
                    continue
                dst = len(states)
                index[nxt] = dst
                states.append(nxt)
                depths.append(level + 1)
                out.append([])
                queue.append(dst)
            out[src].append(len(edges))
            edges.append((src, rule_idx, dst))
        max_seen = max(max_seen, level)
    return Exploration(
        model=model,
        states=states,
        depth=depths,
        edges=edges,
        out=out,
        exhausted=exhausted,
        max_depth=max_seen,
    )


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------

#: Cap on exemplar states per diagnostic code (the rest are counted).
_EXEMPLARS = 3


def _loss_after_barrier(model: ProductModel, state: State) -> bool:
    try:
        migration = state[model.slot("migration")]
        channel = state[model.slot("channel")]
    except KeyError:
        return False
    return migration in ("CUTOVER", "COMPLETED") and channel in (
        "LOST",
        "GAP",
        "ABANDONED",
    )


def _origin_of(model: ProductModel, component: str) -> Tuple[str, int]:
    try:
        return model.component(component).machine.origin
    except KeyError:
        return ("<model>", 0)


def _blocking_origin(
    model: ProductModel, state: State
) -> Tuple[str, int]:
    """Anchor a deadlock/livelock on the first non-quiescent component
    (the machine whose missing exit is the defect)."""
    for i, component in enumerate(model.components):
        if state[i] not in component.quiescent and not model._released(
            component, state
        ):
            return component.machine.origin
    return ("<model>", 0)


def _sccs(exploration: Exploration) -> List[List[int]]:
    """Tarjan strongly-connected components, iterative."""
    n = len(exploration.states)
    index_of = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    result: List[List[int]] = []
    counter = [1]
    for root in range(n):
        if visited[root]:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_pos = work.pop()
            if edge_pos == 0:
                visited[node] = True
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            outs = exploration.out[node]
            while edge_pos < len(outs):
                succ = exploration.edges[outs[edge_pos]][2]
                edge_pos += 1
                if not visited[succ]:
                    work.append((node, edge_pos))
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return result


def check_model(
    model: ProductModel,
    exploration: Optional[Exploration] = None,
    depth: Optional[int] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> Tuple[Report, Exploration]:
    """Explore (unless given) and run the COS901–904 checks."""
    if exploration is None:
        exploration = explore(model, depth=depth, max_states=max_states)
    report = Report()
    states = exploration.states

    # COS901 — loss past the close barrier.
    loss = [s for s in states if _loss_after_barrier(model, s)]
    if loss:
        rel, line = _origin_of(model, "migration")
        detail = "; ".join(
            model.render_state(s) for s in loss[:_EXEMPLARS]
        )
        cause = ""
        if model.uncertified:
            missing = ", ".join(
                f"{anchor.func}() lost {anchor.needle!r}"
                for _action, anchor in model.uncertified
            )
            cause = f" (certification anchor missing: {missing})"
        report.add(
            "COS901",
            f"{len(loss)} reachable state(s) lose tuples past the "
            f"close barrier — the migration cuts over while the "
            f"handoff channel still has unreleased chunks{cause}; "
            f"e.g. {detail}",
            rel,
            line,
        )

    # COS902/COS903 are liveness claims: only sound when the frontier
    # was not truncated.
    if exploration.exhausted:
        deadlocks = [
            i
            for i, state in enumerate(states)
            if not exploration.out[i] and not model.acceptable(state)
        ]
        for i in deadlocks[:_EXEMPLARS]:
            rel, line = _blocking_origin(model, states[i])
            extra = (
                f" (+{len(deadlocks) - _EXEMPLARS} more)"
                if len(deadlocks) > _EXEMPLARS
                and i == deadlocks[_EXEMPLARS - 1]
                else ""
            )
            report.add(
                "COS902",
                "deadlock: no rule is enabled in non-quiescent state "
                f"[{model.render_state(states[i])}]{extra}",
                rel,
                line,
            )

        flagged = 0
        for scc in _sccs(exploration):
            members = set(scc)
            internal = [
                e
                for i in scc
                for e in exploration.out[i]
                if exploration.edges[e][2] in members
            ]
            if not internal:
                continue
            if any(
                model.rules[exploration.edges[e][1]].progress
                for e in internal
            ):
                continue
            exits = any(
                exploration.edges[e][2] not in members
                for i in scc
                for e in exploration.out[i]
            )
            if exits:
                continue
            stuck = [
                i for i in scc if not model.acceptable(states[i])
            ]
            if not stuck:
                continue
            if flagged < _EXEMPLARS:
                actions = sorted(
                    {
                        model.rules[exploration.edges[e][1]].action
                        for e in internal
                    }
                )
                rel, line = _blocking_origin(model, states[stuck[0]])
                report.add(
                    "COS903",
                    f"livelock: a {len(scc)}-state cycle of "
                    f"non-progress action(s) {', '.join(actions)} has "
                    "no exit; e.g. "
                    f"[{model.render_state(states[stuck[0]])}]",
                    rel,
                    line,
                )
            flagged += 1

    # COS904 — cross-machine invariants.
    for invariant in model.invariants:
        bad = []
        for state in states:
            if all(
                state[model.slot(name)] in values
                for name, values in invariant.forbidden
            ):
                bad.append(state)
        if bad:
            rel, line = _origin_of(model, invariant.anchor_component)
            detail = "; ".join(
                model.render_state(s) for s in bad[:_EXEMPLARS]
            )
            report.add(
                "COS904",
                f"invariant {invariant.name} violated in {len(bad)} "
                f"reachable state(s): {invariant.message}; e.g. "
                f"{detail}",
                rel,
                line,
            )
    return report, exploration


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def product_dot(
    model: ProductModel,
    exploration: Exploration,
    max_states: Optional[int] = None,
) -> str:
    """GraphViz DOT of the reachable product subgraph (BFS order).

    ``max_states`` keeps committed renderings readable: only the first
    N BFS states (and the edges between them) are emitted."""
    limit = (
        len(exploration.states)
        if max_states is None
        else min(max_states, len(exploration.states))
    )
    lines = [
        "digraph product {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="monospace"];',
    ]
    for i in range(limit):
        state = exploration.states[i]
        label = "\\n".join(
            f"{name}={value}"
            for name, value in zip(model.variables, state)
            if value
            != (
                model.initial_state[model.slot(name)]
            )
        ) or "initial"
        attrs = f'label="{label}"'
        if i == 0:
            attrs += ", penwidth=2"
        if not model.acceptable(state):
            attrs += ', style=filled, fillcolor="#f2e8e8"'
        lines.append(f"  s{i} [{attrs}];")
    emitted = set()
    for src, rule_idx, dst in exploration.edges:
        if src >= limit or dst >= limit:
            continue
        action = model.rules[rule_idx].action
        key = (src, dst, action)
        if key in emitted:
            continue
        emitted.add(key)
        lines.append(f'  s{src} -> s{dst} [label="{action}", fontsize=8];')
    if limit < len(exploration.states):
        lines.append(
            f'  more [shape=plaintext, label="… '
            f'{len(exploration.states) - limit} more states"];'
        )
    lines.append("}")
    return "\n".join(lines)


def model_summary(
    model: ProductModel, exploration: Exploration
) -> dict:
    """The JSON payload backbone for ``repro model --json``."""
    return {
        "components": [
            {
                "name": c.name,
                "machine": c.machine.name,
                "initial": c.initial,
                "quiescent": sorted(c.quiescent),
                "states": list(c.states),
            }
            for c in model.components
        ],
        "env": [
            {"name": v.name, "values": list(v.values), "initial": v.initial}
            for v in model.env
        ],
        "rules": [
            {
                "action": r.action,
                "progress": r.progress,
                "certified": bool(r.anchors),
            }
            for r in model.rules
        ],
        "dropped_rules": [
            {"action": action, "reason": reason}
            for action, reason in model.dropped
        ],
        "uncertified": [
            {
                "action": action,
                "module": anchor.module,
                "func": anchor.func,
                "needle": anchor.needle,
            }
            for action, anchor in model.uncertified
        ],
        "states": len(exploration.states),
        "edges": len(exploration.edges),
        "exhausted": exploration.exhausted,
        "max_depth": exploration.max_depth,
    }
