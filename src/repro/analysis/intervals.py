"""An independent interval-domain solver for conjunctive constraints.

The predicate algebra in :mod:`repro.cql.predicates` ships its own
*sound but incomplete* satisfiability and implication tests, written as
ad-hoc case analysis.  This module solves the same fragment with a
different algorithm — a difference-bound matrix (DBM) over the
constraint graph, closed with Floyd-Warshall — so the two
implementations can check each other (the analyzer's ``COS205``
diagnostic fires on disagreement).

The translation is the classic one for systems of difference
constraints:

* a value bound ``t <= hi`` becomes the edge ``origin -> t`` of weight
  ``hi`` (``t - origin <= hi`` with a virtual origin pinned at 0);
* ``t >= lo`` becomes ``t -> origin`` of weight ``-lo``;
* a difference constraint ``a - b <= hi`` becomes ``b -> a`` of weight
  ``hi`` and ``a - b >= lo`` becomes ``a -> b`` of weight ``-lo``;
* equality links (equijoins) merge their endpoints into one node.

Edge weights are pairs ``(value, strict)`` ordered lexicographically
(``(5, strict)`` is tighter than ``(5, non-strict)``), the bound
semiring of DBM-based abstract domains.  The conjunction is
unsatisfiable over the reals iff the shortest-path closure puts a
negative entry on the diagonal — a cycle of negative weight, or zero
weight through at least one strict edge (``x < y`` chains summing to
``x < x``).  The closed matrix then gives the *tightest* derivable
interval per term and per difference, which is strictly more complete
than the pairwise checks of :meth:`Conjunction.is_satisfiable` (it
follows chains such as ``a - b <= -1 AND b - c <= -1 AND c - a <= -1``).

Exclusions (``!=``) and string-valued constraints do not enter the
matrix; they are handled by the same point/exclusion case analysis the
CBN uses, applied *after* tightening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cql.predicates import (
    Atom,
    Conjunction,
    Interval,
    PredicateError,
    Value,
)

#: A derived bound: (value, strict).  ``(5.0, True)`` means ``< 5``.
Bound = Tuple[float, bool]

#: Graph edge ``(u, v, weight, strict)`` encoding ``v - u <= weight``
#: (strictly, when ``strict``).
Edge = Tuple[str, str, float, bool]

_ORIGIN = "\x00origin"


def _tighter(current: Optional[Bound], candidate: Bound) -> bool:
    """Is ``candidate`` strictly tighter than ``current`` (None = +inf)?"""
    if current is None:
        return True
    return candidate[0] < current[0] or (
        candidate[0] == current[0] and candidate[1] and not current[1]
    )


def _is_string(value: Optional[Value]) -> bool:
    return isinstance(value, str)


def _string_bounded(interval: Interval) -> bool:
    return _is_string(interval.lo) or _is_string(interval.hi)


@dataclass(frozen=True)
class Solution:
    """Outcome of solving one conjunction.

    ``domains`` maps every referenced term to the tightest interval the
    solver could derive for it (the seed domain intersected with all
    value constraints, equality classes and difference chains).
    """

    satisfiable: bool
    domains: Mapping[str, Interval]
    excluded: Mapping[str, FrozenSet[Value]]
    reason: Optional[str] = None

    def domain(self, term: str) -> Interval:
        return self.domains.get(term, Interval.universal())

    def excluded_values(self, term: str) -> FrozenSet[Value]:
        return self.excluded.get(term, frozenset())


class ConstraintSystem:
    """A difference-bound view of one :class:`Conjunction`.

    ``seed`` optionally supplies a priori value domains per term (the
    analyzer passes declared schema attribute domains, turning "can this
    filter ever match real data?" into the same satisfiability query).
    """

    def __init__(
        self,
        conjunction: Conjunction,
        seed: Optional[Mapping[str, Interval]] = None,
    ) -> None:
        self._conj = conjunction
        self._seed = dict(seed or {})
        self._rep: Dict[str, str] = {}
        self._class_interval: Dict[str, Interval] = {}
        self._class_excluded: Dict[str, Set[Value]] = {}
        self._edges: List[Edge] = []
        self._nodes: Set[str] = {_ORIGIN}
        self._matrix: Dict[str, Dict[str, Bound]] = {}
        self._tightened_cache: Optional[Dict[str, Interval]] = None
        self.unsat_reason: Optional[str] = None
        self._build()
        if self.unsat_reason is None:
            self._close()
        if self.unsat_reason is None:
            self._check_exclusions()

    # -- construction ---------------------------------------------------------

    def _find(self, term: str) -> str:
        root = term
        while self._rep.get(root, root) != root:
            root = self._rep[root]
        while self._rep.get(term, term) != root:
            self._rep[term], term = root, self._rep[term]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._rep[max(ra, rb)] = min(ra, rb)

    def _build(self) -> None:
        conj = self._conj
        for a, b in conj.links:
            self._union(a, b)
        terms = conj.referenced_terms() | set(self._seed)
        for term in terms:
            root = self._find(term)
            interval = self._class_interval.get(root, Interval.universal())
            for candidate in (
                conj.intervals.get(term),
                self._seed.get(term),
            ):
                if candidate is None:
                    continue
                try:
                    interval = interval.intersect(candidate)
                except (PredicateError, TypeError):
                    self.unsat_reason = (
                        f"term {term!r} mixes string and numeric constraints"
                    )
                    return
            self._class_interval[root] = interval
            excluded = conj.excluded.get(term)
            if excluded:
                self._class_excluded.setdefault(root, set()).update(excluded)
        # Value bounds become edges against the origin.
        for root, interval in self._class_interval.items():
            if interval.is_empty:
                self.unsat_reason = f"empty value interval for {root!r}"
                return
            if _string_bounded(interval):
                continue  # string classes stay out of the matrix
            self._nodes.add(root)
            if interval.hi is not None:
                self._edges.append(
                    (_ORIGIN, root, float(interval.hi), interval.hi_strict)
                )
            if interval.lo is not None:
                self._edges.append(
                    (root, _ORIGIN, -float(interval.lo), interval.lo_strict)
                )
        # Difference constraints become cross edges.
        for (a, b), iv in conj.diffs.items():
            if iv.is_empty:
                self.unsat_reason = (
                    f"empty difference interval for {a!r} - {b!r}"
                )
                return
            if _string_bounded(iv):
                # ``a - b`` can only be evaluated on numbers; a string
                # bound admits no binding at all.
                self.unsat_reason = (
                    f"difference {a!r} - {b!r} bounded by a string"
                )
                return
            ra, rb = self._find(a), self._find(b)
            if ra == rb:
                # a = b forces the difference to zero.
                if not iv.contains_value(0):
                    self.unsat_reason = (
                        f"{a!r} = {b!r} but their difference must lie in {iv}"
                    )
                    return
                continue
            for root in (ra, rb):
                if _string_bounded(
                    self._class_interval.get(root, Interval.universal())
                ):
                    self.unsat_reason = (
                        f"difference constraint on string-valued term {root!r}"
                    )
                    return
                self._nodes.add(root)
            if iv.hi is not None:
                self._edges.append((rb, ra, float(iv.hi), iv.hi_strict))
            if iv.lo is not None:
                self._edges.append((ra, rb, -float(iv.lo), iv.lo_strict))

    # -- shortest-path closure ------------------------------------------------

    def _close(self) -> None:
        """Floyd-Warshall closure over the bound semiring.

        ``matrix[u][v]`` is the tightest derivable bound on ``v - u``.
        A diagonal entry below ``(0, non-strict)`` witnesses an
        infeasible cycle.
        """
        nodes = sorted(self._nodes)
        matrix: Dict[str, Dict[str, Bound]] = {u: {u: (0.0, False)} for u in nodes}
        for u, v, weight, strict in self._edges:
            candidate = (weight, strict)
            if _tighter(matrix[u].get(v), candidate):
                matrix[u][v] = candidate
        for k in nodes:
            row_k = matrix[k]
            for i in nodes:
                d_ik = matrix[i].get(k)
                if d_ik is None:
                    continue
                row_i = matrix[i]
                for j, d_kj in list(row_k.items()):
                    candidate = (d_ik[0] + d_kj[0], d_ik[1] or d_kj[1])
                    if _tighter(row_i.get(j), candidate):
                        row_i[j] = candidate
        for node in nodes:
            diag = matrix[node][node]
            if diag[0] < 0 or (diag[0] == 0 and diag[1]):
                self.unsat_reason = (
                    "difference constraints form a contradictory cycle"
                )
                return
        self._matrix = matrix

    def _bound(self, u: str, v: str) -> Optional[Bound]:
        """Tightest derived bound on ``v - u`` (None = unbounded)."""
        row = self._matrix.get(u)
        return None if row is None else row.get(v)

    # -- results ----------------------------------------------------------------

    def _check_exclusions(self) -> None:
        domains = self._tightened()
        for root, values in self._class_excluded.items():
            interval = domains.get(root, Interval.universal())
            if interval.is_point and interval.lo in values:
                self.unsat_reason = (
                    f"{root!r} is pinned to {interval.lo!r} but excludes it"
                )
                return

    def _tightened(self) -> Dict[str, Interval]:
        """Tightest per-class interval derivable from the whole system."""
        if self._tightened_cache is not None:
            return self._tightened_cache
        out: Dict[str, Interval] = {}
        for root, interval in self._class_interval.items():
            if root not in self._nodes:
                out[root] = interval
                continue
            upper = self._bound(_ORIGIN, root)  # root - origin <= w
            lower = self._bound(root, _ORIGIN)  # origin - root <= w
            hi = interval.hi if upper is None else upper[0]
            hi_strict = interval.hi_strict if upper is None else upper[1]
            lo = interval.lo if lower is None else -lower[0]
            lo_strict = interval.lo_strict if lower is None else lower[1]
            out[root] = Interval(lo, hi, lo_strict, hi_strict)
        self._tightened_cache = out
        return out

    @property
    def satisfiable(self) -> bool:
        return self.unsat_reason is None

    def same_class(self, a: str, b: str) -> bool:
        return self._find(a) == self._find(b)

    def domain(self, term: str) -> Interval:
        return self._tightened().get(self._find(term), Interval.universal())

    def excluded_values(self, term: str) -> FrozenSet[Value]:
        return frozenset(self._class_excluded.get(self._find(term), ()))

    def tightest_diff(self, a: str, b: str) -> Interval:
        """The tightest derivable interval for ``a - b``."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return Interval.point(0)
        if ra not in self._nodes or rb not in self._nodes:
            return Interval.universal()
        upper = self._bound(rb, ra)  # a - b <= w
        lower = self._bound(ra, rb)  # b - a <= w, so a - b >= -w
        hi, hi_strict = (upper[0], upper[1]) if upper is not None else (None, False)
        lo, lo_strict = (-lower[0], lower[1]) if lower is not None else (None, False)
        return Interval(lo, hi, lo_strict, hi_strict)

    def solution(self) -> Solution:
        if not self.satisfiable:
            return Solution(False, {}, {}, self.unsat_reason)
        terms = self._conj.referenced_terms() | set(self._seed)
        domains = {term: self.domain(term) for term in terms}
        excluded = {
            term: self.excluded_values(term)
            for term in terms
            if self.excluded_values(term)
        }
        return Solution(True, domains, excluded, None)


# ---------------------------------------------------------------------------
# Module-level API
# ---------------------------------------------------------------------------


def solve(
    conjunction: Conjunction,
    seed: Optional[Mapping[str, Interval]] = None,
) -> Solution:
    """Solve ``conjunction`` (optionally under per-term seed domains)."""
    return ConstraintSystem(conjunction, seed).solution()


def is_unsatisfiable(
    conjunction: Conjunction,
    seed: Optional[Mapping[str, Interval]] = None,
) -> bool:
    return not ConstraintSystem(conjunction, seed).satisfiable


def implies(
    premise: Conjunction,
    conclusion: Conjunction,
    seed: Optional[Mapping[str, Interval]] = None,
) -> bool:
    """Sound implication test built on the difference-bound solver.

    True when every binding satisfying ``premise`` (within ``seed``
    domains) satisfies ``conclusion``.  Mirrors the semantics of
    :meth:`Conjunction.implies` — including the convention that a
    constraint on a term requires the term to be bound — but derives its
    entailments from the shortest-path closure instead of per-case
    rules.
    """
    system = ConstraintSystem(premise, seed)
    if not system.satisfiable:
        return True
    constrained = premise.referenced_terms() | set(seed or {})
    for term, needed in conclusion.intervals.items():
        if term not in constrained:
            return False
        if not needed.contains_interval(system.domain(term)):
            return False
    for term, values in conclusion.excluded.items():
        if term not in constrained:
            return False
        domain = system.domain(term)
        already = system.excluded_values(term)
        for value in values:
            if value in already:
                continue
            if domain.contains_value(value):
                return False
    for a, b in conclusion.links:
        if not system.same_class(a, b):
            return False
    for (a, b), needed in conclusion.diffs.items():
        if a not in constrained or b not in constrained:
            return False
        if system.same_class(a, b):
            if not needed.contains_value(0):
                return False
            continue
        if not needed.contains_interval(system.tightest_diff(a, b)):
            return False
    return True


def vacuous_atoms(
    atoms: Sequence[Atom],
    seed: Optional[Mapping[str, Interval]] = None,
) -> List[Atom]:
    """Atoms implied by the conjunction of their siblings.

    A vacuous conjunct adds nothing to the predicate (``x > 5 AND
    x > 3`` — the second atom).  Callers must establish satisfiability
    first: an unsatisfiable sibling set implies everything.
    """
    out: List[Atom] = []
    for index, atom in enumerate(atoms):
        rest = Conjunction.from_atoms(
            [a for j, a in enumerate(atoms) if j != index]
        )
        if implies(rest, Conjunction.from_atoms([atom]), seed):
            out.append(atom)
    return out
