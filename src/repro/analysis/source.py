"""Shared infrastructure for the source-lint passes (COS5xx-COS7xx).

The workload families (COS1xx-COS4xx) analyze *queries*; the source
families analyze the package's *own Python source*.  This module holds
what those passes share:

* :class:`SourceModule` — one parsed module (path, text, AST, lines).
* :func:`load_package` — every module under a package directory, in a
  deterministic (sorted-path) order.
* **Pragmas** — ``# cos: disable=COS503`` on (or immediately above) a
  flagged line suppresses the finding; ``# cos: disable-file=COS5xx``
  anywhere in a file suppresses a whole family for that file.  Specs
  are exact codes (``COS503``), family wildcards (``COS5xx``), comma
  lists, or ``all``.  A reason after the spec is encouraged::

      for node in self._dirty:  # cos: disable=COS503 (commutative fold)

* **Baseline** — a checked-in debt ledger: ``<file> <code> <count>``
  per line.  Matching findings are suppressed up to ``count`` times per
  (file, code), so existing debt gates nothing while any *new* finding
  still fails CI.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import CODES, Diagnostic, Report


class SourceError(Exception):
    """Raised for unparseable modules or malformed baseline files."""


# ---------------------------------------------------------------------------
# modules
# ---------------------------------------------------------------------------


@dataclass
class SourceModule:
    """One Python module as the source-lint passes see it."""

    path: Path
    #: Path rendered in diagnostics (posix, relative to the lint base).
    rel: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()

    def line(self, lineno: int) -> str:
        """The 1-indexed physical line (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def load_source(path: Path, rel: Optional[str] = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`."""
    text = path.read_text()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - package always parses
        raise SourceError(f"cannot parse {path}: {exc}") from exc
    return SourceModule(path, rel or path.name, text, tree)


def module_from_text(text: str, rel: str = "<module>") -> SourceModule:
    """A :class:`SourceModule` from a source string (tests, canaries)."""
    try:
        tree = ast.parse(text, filename=rel)
    except SyntaxError as exc:
        raise SourceError(f"cannot parse {rel}: {exc}") from exc
    return SourceModule(Path(rel), rel, text, tree)


def load_package(
    package: Path, base: Optional[Path] = None
) -> List[SourceModule]:
    """Every ``*.py`` module under ``package``, sorted by path.

    ``base`` anchors the relative paths diagnostics render (defaults to
    the package's parent, so modules read ``repro/sim/trace.py``).
    """
    if not package.is_dir():
        raise SourceError(f"no package directory at {package}")
    anchor = base if base is not None else package.parent
    modules = []
    for path in sorted(package.rglob("*.py")):
        try:
            rel = path.relative_to(anchor).as_posix()
        except ValueError:
            rel = path.as_posix()
        modules.append(load_source(path, rel))
    return modules


# ---------------------------------------------------------------------------
# code specs and pragmas
# ---------------------------------------------------------------------------

#: ``COS503`` exact, ``COS5xx`` family, ``all`` everything.
_SPEC_RE = re.compile(r"^(all|COS\d{3}|COS\d(?:xx|XX))$")
_PRAGMA_RE = re.compile(r"#\s*cos:\s*(disable|disable-file)=([A-Za-z0-9,]+)")


def parse_code_spec(spec: str) -> List[str]:
    """Split and validate a comma list of code specs.

    Raises :class:`SourceError` on anything that is neither a known
    code, a family wildcard (``COS5xx``) nor ``all``.
    """
    out: List[str] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if not _SPEC_RE.match(item):
            raise SourceError(f"bad code spec {item!r}")
        if item.startswith("COS") and item[3:].isdigit() and item not in CODES:
            raise SourceError(f"unknown diagnostic code {item!r}")
        out.append(item)
    if not out:
        raise SourceError(f"empty code spec {spec!r}")
    return out


def spec_matches(specs: Iterable[str], code: str) -> bool:
    """Whether ``code`` is selected by any spec in ``specs``."""
    for spec in specs:
        if spec == "all" or spec == code:
            return True
        if spec.lower().endswith("xx") and code.startswith(spec[:4]):
            return True
    return False


def _pragmas_on(line: str) -> Tuple[List[str], List[str]]:
    """(line-scoped specs, file-scoped specs) declared on one line."""
    line_specs: List[str] = []
    file_specs: List[str] = []
    for kind, spec in _PRAGMA_RE.findall(line):
        specs = parse_code_spec(spec)
        (file_specs if kind == "disable-file" else line_specs).extend(specs)
    return line_specs, file_specs


class PragmaIndex:
    """All ``# cos:`` pragmas of one module, queryable by line."""

    def __init__(self, module: SourceModule) -> None:
        self._by_line: Dict[int, List[str]] = {}
        self._file: List[str] = []
        for lineno, line in enumerate(module.lines, start=1):
            line_specs, file_specs = _pragmas_on(line)
            if line_specs:
                self._by_line[lineno] = line_specs
            self._file.extend(file_specs)

    def suppresses(self, lineno: Optional[int], code: str) -> bool:
        """Line pragma on the flagged line, a standalone pragma comment
        immediately above it, or a file pragma anywhere."""
        if spec_matches(self._file, code):
            return True
        if lineno is None:
            return False
        for where in (lineno, lineno - 1):
            if spec_matches(self._by_line.get(where, ()), code):
                return True
        return False


def apply_pragmas(report: Report, module: SourceModule) -> Report:
    """Drop diagnostics suppressed by the module's pragmas."""
    index = PragmaIndex(module)
    return Report(
        d for d in report if not index.suppresses(d.pos, d.code)
    )


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


class Baseline:
    """A checked-in ledger of accepted findings.

    One entry per line: ``<file> <code> <count>`` (count defaults to 1).
    Line numbers are deliberately absent — baselines must survive
    unrelated edits — so an entry forgives up to ``count`` findings of
    ``code`` in ``file``, whatever their position.
    """

    def __init__(self, allowances: Optional[Dict[Tuple[str, str], int]] = None):
        self._allow: Dict[Tuple[str, str], int] = dict(allowances or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        allow: Dict[Tuple[str, str], int] = {}
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3) or parts[1] not in CODES:
                raise SourceError(f"{path}:{lineno}: bad baseline entry {raw!r}")
            count = int(parts[2]) if len(parts) == 3 else 1
            if count < 1:
                raise SourceError(f"{path}:{lineno}: bad count in {raw!r}")
            key = (parts[0], parts[1])
            allow[key] = allow.get(key, 0) + count
        return cls(allow)

    @classmethod
    def from_report(cls, report: Report) -> "Baseline":
        allow: Dict[Tuple[str, str], int] = {}
        for diag in report:
            key = (diag.source, diag.code)
            allow[key] = allow.get(key, 0) + 1
        return cls(allow)

    def dump(self) -> str:
        lines = ["# cos baseline: <file> <code> <count>"]
        for (rel, code), count in sorted(self._allow.items()):
            lines.append(f"{rel} {code} {count}")
        return "\n".join(lines) + "\n"

    def filter(self, report: Report) -> Tuple[Report, int]:
        """(report minus baselined findings, how many were forgiven)."""
        filtered, forgiven, _stale = self.audit(report)
        return filtered, forgiven

    def audit(
        self, report: Report
    ) -> Tuple[Report, int, List[Tuple[str, str, int]]]:
        """Like :meth:`filter`, plus the ledger's stale remainder.

        ``stale`` lists ``(file, code, leftover)`` entries whose
        recorded count exceeds the findings actually present — fixed
        findings lingering in the ledger (COS704 in the driver).
        """
        budget = dict(self._allow)
        kept: List[Diagnostic] = []
        forgiven = 0
        for diag in report:
            key = (diag.source, diag.code)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                forgiven += 1
            else:
                kept.append(diag)
        stale = [
            (rel, code, leftover)
            for (rel, code), leftover in sorted(budget.items())
            if leftover > 0
        ]
        return Report(kept), forgiven, stale

    def __len__(self) -> int:
        return sum(self._allow.values())
