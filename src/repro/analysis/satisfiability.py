"""COS2xx: satisfiability checks for predicates, filters and profiles.

Built on the independent interval-domain solver of
:mod:`repro.analysis.intervals`, and deliberately cross-validated
against the production implementations in
:mod:`repro.cql.predicates` (``Conjunction.is_satisfiable`` /
``implies``) and :mod:`repro.cbn.filters` (``Profile.subsumes``):

* Both satisfiability tests are *sound* — they only ever report
  "unsatisfiable" for genuinely empty predicates — and the solver is
  strictly more complete (it follows difference-constraint chains the
  pairwise legacy check cannot).  So the legacy check reporting
  unsatisfiable while the solver finds a model is an internal
  inconsistency: ``COS205``.
* The same relationship holds for implication/subsumption: legacy
  ``True`` with solver ``False`` is ``COS205``; the converse is merely
  the solver being smarter, which is expected and silent.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.intervals import ConstraintSystem, implies, vacuous_atoms
from repro.analysis.schema import attribute_domains, source_name
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.ast import ContinuousQuery
from repro.cql.predicates import Atom, Comparison, Interval, atom_terms
from repro.cql.schema import Catalog, StreamSchema


def schema_seed(schema: StreamSchema) -> Dict[str, Interval]:
    """Declared domains of one stream's attributes, keyed by flat name."""
    seeds: Dict[str, Interval] = {}
    for attr in schema.attributes:
        if attr.is_numeric and (attr.lo is not None or attr.hi is not None):
            seeds[attr.name] = Interval(attr.lo, attr.hi)
    return seeds


def _raw_atoms(query: ContinuousQuery) -> List[Atom]:
    if query.source is not None and query.source.where_atoms:
        return list(query.source.where_atoms)
    return query.predicate.atoms()


def _term_pos(atoms: Sequence[Atom], term: str) -> Optional[int]:
    """Source offset of the first atom mentioning ``term``."""
    for atom in atoms:
        if term in atom_terms(atom):
            return getattr(atom, "pos", None)
    return None


def check_predicate(query: ContinuousQuery, catalog: Catalog) -> Report:
    """COS201/202/204/205 for one query's WHERE clause."""
    report = Report()
    source = source_name(query)
    conj = query.predicate
    if conj.is_true:
        return report
    atoms = _raw_atoms(query)
    first_pos = next(
        (p for p in (getattr(a, "pos", None) for a in atoms) if p is not None),
        None,
    )
    system = ConstraintSystem(conj)
    legacy_satisfiable = conj.is_satisfiable()
    if not system.satisfiable:
        report.add(
            "COS201",
            f"WHERE clause can never be satisfied: {system.unsat_reason}",
            source,
            first_pos,
        )
        return report
    if not legacy_satisfiable:
        report.add(
            "COS205",
            "Conjunction.is_satisfiable() reports unsatisfiable but the "
            "interval solver finds the predicate satisfiable; the two "
            "implementations disagree",
            source,
            first_pos,
        )
        return report
    seeds = attribute_domains(query, catalog)
    domain_clean = True
    if seeds:
        for term, interval in conj.intervals.items():
            domain = seeds.get(term)
            if domain is not None and interval.intersect(domain).is_empty:
                domain_clean = False
                report.add(
                    "COS204",
                    f"constraint {term} in {interval} lies outside the "
                    f"declared domain {domain}; no datagram can match",
                    source,
                    _term_pos(atoms, term),
                )
        if domain_clean and not ConstraintSystem(conj, seeds).satisfiable:
            domain_clean = False
            report.add(
                "COS204",
                "WHERE clause is unsatisfiable within the declared "
                "attribute domains; no datagram can match",
                source,
                first_pos,
            )
    if domain_clean and len(atoms) >= 2:
        for atom in vacuous_atoms(atoms, seeds):
            report.add(
                "COS202",
                f"conjunct {atom} is implied by the rest of the WHERE "
                "clause (and the declared domains); it never filters "
                "anything",
                source,
                getattr(atom, "pos", None),
            )
    return report


def check_filter(
    filt: Filter, catalog: Catalog, source: str = "<filter>"
) -> Report:
    """COS201/204/205 for one CBN filter against its stream's schema."""
    report = Report()
    if filt.condition.is_true:
        return report
    system = ConstraintSystem(filt.condition)
    legacy_satisfiable = filt.condition.is_satisfiable()
    if not system.satisfiable:
        report.add(
            "COS201",
            f"filter on stream {filt.stream!r} can never match: "
            f"{system.unsat_reason}",
            source,
        )
        return report
    if not legacy_satisfiable:
        report.add(
            "COS205",
            f"filter on stream {filt.stream!r}: "
            "Conjunction.is_satisfiable() reports unsatisfiable but the "
            "interval solver finds the condition satisfiable",
            source,
        )
        return report
    if filt.stream in catalog:
        seeds = schema_seed(catalog.get(filt.stream))
        if seeds and not ConstraintSystem(filt.condition, seeds).satisfiable:
            report.add(
                "COS204",
                f"filter on stream {filt.stream!r} is unsatisfiable "
                "within the declared attribute domains; no datagram can "
                "match",
                source,
            )
    return report


def check_profile_filters(
    profile: Profile, catalog: Catalog, source: str = "<profile>"
) -> Report:
    """COS2xx checks over every filter of one profile."""
    report = Report()
    for filt in profile.filters:
        report.extend(check_filter(filt, catalog, source))
    return report


# ---------------------------------------------------------------------------
# Profile subsumption, solver-side
# ---------------------------------------------------------------------------


def _carried(profile: Profile, stream: str) -> FrozenSet[str]:
    """Attributes forwarded when the profile matches (projection plus
    the attributes its own filters evaluate) — re-derived here rather
    than borrowed from :class:`Profile` so the checker stays an
    independent implementation."""
    projection = profile.projection_for(stream)
    if projection == ALL_ATTRIBUTES:
        return ALL_ATTRIBUTES
    carried: Set[str] = set(projection)
    for flt in profile.filters_for(stream):
        carried |= flt.condition.referenced_terms()
    return frozenset(carried)


def solver_subsumes(mine: Profile, theirs: Profile) -> bool:
    """Solver-side mirror of :meth:`Profile.subsumes`.

    Same stream/projection structure, but filter implication goes
    through the interval solver instead of ``Conjunction.implies``.
    """
    for stream in theirs.streams:
        if stream not in mine.streams:
            return False
        carried_mine = _carried(mine, stream)
        carried_theirs = _carried(theirs, stream)
        if carried_mine != ALL_ATTRIBUTES:
            if carried_theirs == ALL_ATTRIBUTES:
                return False
            if not carried_theirs <= carried_mine:
                return False
        my_filters = mine.filters_for(stream)
        their_filters = theirs.filters_for(stream)
        if my_filters:
            if not their_filters:
                return False
            for their_filter in their_filters:
                if not any(
                    their_filter.stream == mf.stream
                    and implies(their_filter.condition, mf.condition)
                    for mf in my_filters
                ):
                    return False
    return True


def check_dead_profiles(
    entries: Sequence[Tuple[str, Profile]], source: str = "<interface>"
) -> Report:
    """COS203/205 across the profiles installed on one interface.

    ``entries`` lists ``(entry_id, profile)`` in installation order.  A
    later profile subsumed by an earlier one contributes no routing
    decisions — every datagram it would forward is already forwarded —
    so it is dead weight in the routing table.
    """
    report = Report()
    for j in range(1, len(entries)):
        later_id, later = entries[j]
        for i in range(j):
            earlier_id, earlier = entries[i]
            legacy = earlier.subsumes(later)
            solver = solver_subsumes(earlier, later)
            if legacy and not solver:
                report.add(
                    "COS205",
                    f"Profile.subsumes says {earlier_id!r} subsumes "
                    f"{later_id!r} but the interval solver cannot confirm "
                    "the implication; the two implementations disagree",
                    source,
                )
            if legacy or solver:
                report.add(
                    "COS203",
                    f"profile {later_id!r} is subsumed by the "
                    f"already-installed {earlier_id!r}; it adds no "
                    "routing decisions on this interface",
                    source,
                )
                break
    return report
