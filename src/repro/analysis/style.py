"""COS7xx — source style rules migrated from ``tools/lint_repro.py``.

The standalone lint's three rules (L001-L003) now live here under
stable COS codes, emitted through the same diagnostics machinery as
every other family; the tool is a thin wrapper over this pass, so
there is exactly one lint implementation:

* **COS701** (was L001) — mutable default argument: a ``def f(x=[])``
  default is created once and shared across calls; routing tables and
  profile lists silently accumulate state.
* **COS702** (was L002) — bare ``except:`` catches
  ``KeyboardInterrupt`` and ``SystemExit`` too, hanging long-running
  broker loops.
* **COS703** (was L003) — every module in the package imports
  ``from __future__ import annotations`` so forward references in the
  layered API stay cheap and consistent.
"""

from __future__ import annotations

import ast
from typing import Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.source import SourceModule

_MUTABLE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _check_mutable_defaults(module: SourceModule, report: Report) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_NODES) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                report.add(
                    "COS701",
                    f"mutable default argument in {node.name}(); default "
                    f"to None and construct inside",
                    module.rel,
                    default.lineno,
                )


def _check_bare_excepts(module: SourceModule, report: Report) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            report.add(
                "COS702",
                "bare except: catches SystemExit/KeyboardInterrupt; name "
                "the exception class",
                module.rel,
                node.lineno,
            )


def _check_future_annotations(module: SourceModule, report: Report) -> None:
    if not module.text.strip():
        return
    for node in module.tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            if any(alias.name == "annotations" for alias in node.names):
                return
    report.add(
        "COS703",
        "missing 'from __future__ import annotations'",
        module.rel,
        1,
    )


def check_style(module: SourceModule) -> Report:
    """Run every COS7xx check over one module."""
    report = Report()
    _check_mutable_defaults(module, report)
    _check_bare_excepts(module, report)
    _check_future_annotations(module, report)
    return report
